"""Unit tests for the v4 segmented container and the segment cursor.

Covers the pieces the streaming equivalence properties treat as a black
box: the deterministic window-sealing rule, races whose regions straddle
a segment boundary, the cursor's ordering/consistency errors (with the
offending segment ordinal and step in the message), the streaming
recorder, and the version gates on the streaming view.
"""

import pytest

from repro.analysis.pipeline import detect_only, detection_report, render_report
from repro.isa import assemble
from repro.record import load_log, record_run, record_run_segmented
from repro.record.binary_format import (
    SEGMENTED_FORMAT_VERSION,
    SegmentedLogWriter,
    encode_log,
    encode_log_segmented,
    is_segmented_log,
    iter_segments,
    read_segment_index,
    read_segmented_header,
    segment_views_of_log,
)
from repro.replay.errors import ReplayDivergence, stream_context
from repro.replay.log_view import (
    LogViewUnavailable,
    SegmentCursor,
    StreamingLogView,
)
from repro.vm import RandomScheduler

RACY_COUNTER = """
.data
counter: .word 0
m: .word 0
.thread racer_a
    load r1, [counter]
    addi r1, r1, 1
    store r1, [counter]
    lock [m]
    load r2, [counter]
    unlock [m]
    load r1, [counter]
    addi r1, r1, 1
    store r1, [counter]
    halt
.thread racer_b
    load r1, [counter]
    addi r1, r1, 2
    store r1, [counter]
    lock [m]
    load r2, [counter]
    unlock [m]
    load r1, [counter]
    addi r1, r1, 2
    store r1, [counter]
    halt
"""


def _recorded(seed=9, switch_probability=0.4):
    program = assemble(RACY_COUNTER, name="seg_unit")
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=switch_probability),
        seed=seed,
    )
    return program, log


class TestWindowSealing:
    def test_small_budget_seals_many_segments_deterministically(self):
        _, log = _recorded()
        small = segment_views_of_log(log, segment_bytes=64)
        again = segment_views_of_log(log, segment_bytes=64)
        large = segment_views_of_log(log, segment_bytes=1 << 20)
        assert len(small) > 1
        assert len(large) == 1
        assert [view.ordinal for view in small] == list(range(len(small)))
        # Same log, same budget — same cuts, every time.
        assert [
            (view.first_ts, view.last_ts) for view in small
        ] == [(view.first_ts, view.last_ts) for view in again]

    def test_segments_are_globally_timestamp_ordered(self):
        _, log = _recorded()
        views = segment_views_of_log(log, segment_bytes=64)
        previous_last = -1
        for view in views:
            assert view.first_ts <= view.last_ts
            assert view.first_ts > previous_last
            previous_last = view.last_ts

    def test_file_cuts_match_in_memory_cuts(self):
        _, log = _recorded()
        data = encode_log_segmented(log, segment_bytes=64)
        assert is_segmented_log(data)
        assert read_segmented_header(data).version == SEGMENTED_FORMAT_VERSION
        from_bytes = list(iter_segments(data))
        in_memory = segment_views_of_log(log, segment_bytes=64)
        assert [view.ordinal for view in from_bytes] == [
            view.ordinal for view in in_memory
        ]
        assert [entry.offset for entry in read_segment_index(data)] == sorted(
            entry.offset for entry in read_segment_index(data)
        )

    def test_non_positive_budget_is_rejected(self):
        _, log = _recorded()
        with pytest.raises(ValueError):
            segment_views_of_log(log, segment_bytes=0)

    def test_writer_refuses_double_finish(self):
        import io

        writer = SegmentedLogWriter(
            io.BytesIO(),
            program_name="p",
            program_source="",
            seed=0,
            scheduler="",
            has_captured=False,
        )
        writer.finish(threads={})
        with pytest.raises(ValueError, match="finished"):
            writer.finish(threads={})


class TestSegmentBoundaryRaces:
    def test_races_straddling_boundaries_survive_streaming(self):
        _, log = _recorded()
        v3 = encode_log(log, version=3)
        expected = render_report(
            detection_report(detect_only(v3, mode="from-log"))
        )
        v4 = encode_log_segmented(log, segment_bytes=64)
        assert len(list(iter_segments(v4))) > 1
        streamed = detect_only(v4, mode="stream")
        assert render_report(detection_report(streamed)) == expected
        assert streamed.instance_count > 0
        assert streamed.path == "stream"

    def test_streaming_detector_rejects_unsorted_regions(self):
        from repro.race.happens_before import StreamingHappensBeforeDetector

        _, log = _recorded()
        cursor = SegmentCursor()
        regions = []
        for segment in segment_views_of_log(log, segment_bytes=1 << 20):
            regions.extend(cursor.feed(segment))
        regions.extend(cursor.finish())
        assert len(regions) >= 2
        detector = StreamingHappensBeforeDetector()
        detector.add_region(*regions[1])
        with pytest.raises(ValueError, match="fed out of order"):
            detector.add_region(*regions[0])


class TestCursorErrors:
    def test_out_of_order_segments_name_segment_and_step(self):
        _, log = _recorded()
        views = segment_views_of_log(log, segment_bytes=64)
        assert len(views) > 1
        cursor = SegmentCursor()
        cursor.feed(views[-1])
        with pytest.raises(LogViewUnavailable) as excinfo:
            for view in views[:-1]:
                cursor.feed(view)
        message = str(excinfo.value)
        assert "at segment" in message
        assert "step" in message

    def test_replay_divergence_carries_stream_context(self):
        error = ReplayDivergence("value mismatch", thread_step=7, segment=3)
        assert error.thread_step == 7
        assert error.segment == 3
        assert "(at segment 3, step 7)" in str(error)
        assert stream_context(segment=2) == " (at segment 2)"
        assert stream_context(thread_step=5) == " (at step 5)"
        assert stream_context() == ""
        # Existing single-argument raises are unaffected.
        assert str(ReplayDivergence("plain")) == "plain"


class TestStreamingViewGates:
    @pytest.mark.parametrize("version", (1, 2))
    def test_v1_v2_containers_are_refused(self, version):
        _, log = _recorded()
        data = encode_log(log, version=version)
        with pytest.raises(LogViewUnavailable):
            StreamingLogView.from_bytes(data)

    def test_captureless_v3_is_refused(self):
        _, log = _recorded()
        data = encode_log(log, version=3, include_captured=False)
        with pytest.raises(LogViewUnavailable):
            StreamingLogView.from_bytes(data)

    def test_captureless_v4_is_refused(self):
        _, log = _recorded()
        data = encode_log_segmented(log, include_captured=False)
        with pytest.raises(LogViewUnavailable):
            StreamingLogView.from_bytes(data)

    def test_non_binary_bytes_are_refused(self):
        with pytest.raises(LogViewUnavailable):
            StreamingLogView.from_bytes(b'{"not": "a container"}')


class TestStreamingRecorder:
    def test_segmented_recording_round_trips(self, tmp_path):
        program, batch_log = _recorded(seed=11)
        destination = tmp_path / "run.rprb"
        _, stream_log = record_run_segmented(
            program,
            destination,
            scheduler=RandomScheduler(seed=11, switch_probability=0.4),
            seed=11,
            segment_bytes=128,
        )
        # The streaming log keeps captured columns in the file only.
        assert stream_log.captured is None
        decoded = load_log(destination)
        assert decoded == batch_log
        assert decoded.captured is not None
        for name, columns in batch_log.captured.threads.items():
            assert decoded.captured.threads[name] == columns

    def test_segmented_recording_streams_detection(self, tmp_path):
        program, batch_log = _recorded(seed=11)
        destination = tmp_path / "run.rprb"
        record_run_segmented(
            program,
            destination,
            scheduler=RandomScheduler(seed=11, switch_probability=0.4),
            seed=11,
            segment_bytes=128,
        )
        data = destination.read_bytes()
        assert is_segmented_log(data)
        expected = render_report(
            detection_report(
                detect_only(encode_log(batch_log, version=3), mode="from-log")
            )
        )
        assert render_report(
            detection_report(detect_only(data, mode="stream"))
        ) == expected

    def test_save_log_rejects_json_with_segments(self, tmp_path):
        from repro.record.serialization import save_log

        _, log = _recorded()
        with pytest.raises(ValueError):
            save_log(log, tmp_path / "log.json", segment_bytes=64)
