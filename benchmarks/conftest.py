"""Shared fixtures for the paper-reproduction benchmarks.

The full suite analysis is expensive relative to the assembly of any one
table, so it is computed once per benchmark session and shared.  Every
benchmark writes its rendered artifact to ``benchmarks/results/`` so the
numbers behind EXPERIMENTS.md are regenerable with one command:

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_suite
from repro.workloads import paper_suite

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite_analysis():
    """The analysed paper suite (the input to most benchmarks)."""
    return analyze_suite(paper_suite())


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: Path, name: str, text: str) -> None:
    """Persist one experiment's rendered output."""
    (results_dir / name).write_text(text + "\n")
