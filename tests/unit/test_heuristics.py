"""Unit tests for the benign-reason categorizer (Table 2 taxonomy)."""

from repro.analysis.pipeline import analyze_execution
from repro.race.aggregate import aggregate_instances
from repro.race.heuristics import BenignCategory, categorize
from repro.workloads.benign_approximate import stats_counter
from repro.workloads.benign_double_check import double_check_warm
from repro.workloads.benign_disjoint_bits import disjoint_bits
from repro.workloads.benign_redundant import redundant_pid
from repro.workloads.benign_sync import flag_publish
from repro.workloads.benign_both_values import fn_selector
from repro.workloads.harmful_lost_update import lost_update
from repro.workloads.suite import Execution


def categorized(workload, seed):
    analysis = analyze_execution(Execution("t", workload, seed))
    results = aggregate_instances(analysis.classified)
    program = workload.program()
    return {
        "%s|%s" % key: categorize(result, program)
        for key, result in results.items()
    }, results, program


class TestCategories:
    def test_spin_flag_is_user_sync(self):
        categories, _, _ = categorized(flag_publish(7), seed=3)
        flag_races = {k: v for k, v in categories.items() if "sub_fp7:0" in k}
        assert flag_races
        assert all(v is BenignCategory.USER_CONSTRUCTED_SYNC for v in flag_races.values())

    def test_double_check_detected(self):
        categories, _, _ = categorized(double_check_warm(7), seed=2)
        assert BenignCategory.DOUBLE_CHECK in categories.values()

    def test_redundant_write_detected(self):
        categories, _, _ = categorized(redundant_pid(7), seed=7)
        assert BenignCategory.REDUNDANT_WRITE in categories.values()

    def test_disjoint_bits_detected(self):
        categories, _, _ = categorized(disjoint_bits(7), seed=9)
        assert BenignCategory.DISJOINT_BITS in categories.values()

    def test_intent_annotation_wins(self):
        categories, _, _ = categorized(stats_counter(7), seed=10)
        assert BenignCategory.APPROXIMATE in categories.values()

    def test_both_values_fallback(self):
        categories, _, _ = categorized(fn_selector(7), seed=17)
        assert BenignCategory.BOTH_VALUES_VALID in categories.values()

    def test_harmful_race_gets_no_category(self):
        categories, _, _ = categorized(lost_update(7), seed=15)
        assert all(v is None for v in categories.values())
