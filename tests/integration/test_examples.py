"""Integration tests: every example script runs green.

The examples are the library's front door; they must keep working as the
implementation evolves.  Each is imported and its ``main()`` executed with
stdout captured (no subprocesses — failures give real tracebacks).
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"


def run_example(name, argv=()):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    captured = io.StringIO()
    old_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        with redirect_stdout(captured):
            module.main()
    finally:
        sys.argv = old_argv
    return captured.getvalue()


class TestExamples:
    def test_quickstart(self):
        text = run_example("quickstart.py")
        assert "potentially harmful (triage these)" in text
        assert "jobs=10" in text

    def test_refcount_bug(self):
        text = run_example("refcount_bug.py")
        assert "potentially-harmful" in text
        assert "double-free" in text or "use-after-free" in text

    def test_triage_workflow(self):
        text = run_example("triage_workflow.py")
        assert "NIGHT 1" in text and "NIGHT 2" in text
        assert "suppressed" in text

    def test_detector_comparison(self):
        text = run_example("detector_comparison.py")
        assert "region-HB" in text
        # The lockset column shows the false positive on the handoff row.
        handoff_row = next(
            line for line in text.splitlines() if "atomic-flag handoff" in line
        )
        columns = handoff_row.split()
        assert columns[-1] == "1" and columns[-2] == "0" and columns[-3] == "0"

    def test_time_travel(self):
        text = run_example("time_travel.py")
        assert "investigating" in text
        assert ">>" in text  # the focused racing step marker
        assert "full recorded history" in text

    def test_coverage_study(self):
        text = run_example("coverage_study.py")
        assert "how many recordings" in text
        assert "Triage priority" in text

    def test_paper_tables_single_artifact(self):
        text = run_example("paper_tables.py", argv=["table1"])
        assert "TABLE 1" in text
        assert "harmful races" in text
