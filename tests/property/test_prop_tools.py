"""Property-based tests for the tooling layer: validator and inspector."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.isa import assemble
from repro.record import record_run, validate_log
from repro.replay import OrderedReplay
from repro.replay.inspector import TimeTravelInspector
from repro.vm import RandomScheduler, TraceObserver

from strategies import programs, seeds

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(source=programs(), seed=seeds)
@_SETTINGS
def test_recorded_logs_always_validate(source, seed):
    """Every log the recorder produces satisfies every invariant the
    validator checks — on arbitrary programs and schedules."""
    program = assemble(source, name="val")
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    assert validate_log(log) == []


@given(source=programs(), seed=seeds)
@_SETTINGS
def test_serialized_logs_still_validate(source, seed):
    from repro.record import log_from_json, log_to_json

    program = assemble(source, name="val")
    _, log = record_run(program, scheduler=RandomScheduler(seed=seed), seed=seed)
    assert validate_log(log_from_json(log_to_json(log))) == []


@given(source=programs(max_threads=2), seed=seeds)
@_SETTINGS
def test_inspector_matches_machine_trace(source, seed):
    """The time-travel register reconstruction agrees with the live
    machine at *every* step, not just at thread end."""
    program = assemble(source, name="tt")

    from repro.vm import Machine

    recorder_machine = Machine(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )

    # Wrap retire to snapshot registers after each step.
    original_retire = recorder_machine.retire
    after_step = {}

    def snapshotting_retire(thread, static_id):
        original_retire(thread, static_id)
        # thread.steps has not been incremented yet inside retire(), so
        # this key is the index of the step that just retired.
        after_step[(thread.tid, thread.steps)] = thread.registers.snapshot()

    recorder_machine.retire = snapshotting_retire
    recorder_machine.run()

    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    ordered = OrderedReplay(log, program)
    inspector = TimeTravelInspector(ordered)
    for name, thread_log in log.threads.items():
        tid = thread_log.tid
        for step in range(thread_log.steps):
            expected = after_step.get((tid, step))
            if expected is None:
                continue
            assert inspector.registers_at(name, step + 1) == expected, (
                "inspector diverged at %s step %d" % (name, step)
            )


@given(source=programs(max_threads=2), seed=seeds)
@_SETTINGS
def test_inspector_step_views_consistent(source, seed):
    """Each step view's after-registers equal the next view's before."""
    program = assemble(source, name="tt")
    _, log = record_run(program, scheduler=RandomScheduler(seed=seed), seed=seed)
    ordered = OrderedReplay(log, program)
    inspector = TimeTravelInspector(ordered)
    for name, replay in ordered.thread_replays.items():
        window = inspector.walk(name, start=0, count=min(replay.steps, 8))
        for earlier, later in zip(window, window[1:]):
            assert earlier.registers_after == later.registers_before
