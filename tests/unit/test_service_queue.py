"""Unit tests for the bounded sharded priority queue."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.queue import BoundedJobQueue, QueueClosed, QueueFull


class TestBounds:
    def test_rejects_beyond_capacity(self):
        queue = BoundedJobQueue(capacity=2)
        queue.put("a", 0)
        queue.put("b", 0)
        with pytest.raises(QueueFull):
            queue.put("c", 0)
        assert queue.rejections == 1
        assert queue.depth() == 2

    def test_force_bypasses_capacity(self):
        queue = BoundedJobQueue(capacity=1)
        queue.put("a", 0)
        queue.put("recovered", 0, force=True)
        assert queue.depth() == 2

    def test_pop_frees_capacity(self):
        queue = BoundedJobQueue(capacity=1)
        queue.put("a", 0)
        assert queue.get(0, timeout=0.1) == "a"
        queue.put("b", 0)  # no QueueFull

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BoundedJobQueue(capacity=0)
        with pytest.raises(ValueError):
            BoundedJobQueue(capacity=1, shards=0)


class TestOrdering:
    def test_priority_then_fifo(self):
        queue = BoundedJobQueue(capacity=8)
        queue.put("low-1", 0, priority=0)
        queue.put("high", 0, priority=5)
        queue.put("low-2", 0, priority=0)
        order = [queue.get(0, timeout=0.1) for _ in range(3)]
        assert order == ["high", "low-1", "low-2"]

    def test_shards_are_isolated(self):
        queue = BoundedJobQueue(capacity=8, shards=2)
        queue.put("zero", 0)
        queue.put("one", 1)
        assert queue.get(1, timeout=0.1) == "one"
        assert queue.get(0, timeout=0.1) == "zero"
        assert queue.get(1, timeout=0.05) is None


class TestDelayed:
    def test_not_before_hides_entry_until_deadline(self):
        queue = BoundedJobQueue(capacity=8)
        queue.put("later", 0, not_before=time.monotonic() + 0.15)
        assert queue.depth() == 1  # still occupies its slot
        assert queue.get(0, timeout=0.01) is None
        assert queue.get(0, timeout=2.0) == "later"

    def test_delayed_respects_priority_on_maturity(self):
        queue = BoundedJobQueue(capacity=8)
        queue.put("delayed-high", 0, priority=9, not_before=time.monotonic() + 0.05)
        time.sleep(0.08)
        queue.put("fresh-low", 0, priority=0)
        assert queue.get(0, timeout=0.5) == "delayed-high"


class TestLifecycle:
    def test_get_timeout_returns_none(self):
        queue = BoundedJobQueue(capacity=2)
        started = time.monotonic()
        assert queue.get(0, timeout=0.05) is None
        assert time.monotonic() - started < 1.0

    def test_close_drains_then_raises(self):
        queue = BoundedJobQueue(capacity=4)
        queue.put("a", 0)
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("b", 0)
        # Entries queued before close are still served...
        assert queue.get(0, timeout=0.1) == "a"
        # ...then the consumer learns the queue is finished.
        with pytest.raises(QueueClosed):
            queue.get(0, timeout=0.1)

    def test_close_wakes_blocked_consumer(self):
        queue = BoundedJobQueue(capacity=2)
        outcome = {}

        def consume():
            try:
                queue.get(0, timeout=5.0)
            except QueueClosed:
                outcome["closed"] = True

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=2.0)
        assert outcome.get("closed") is True

    def test_close_waits_for_delayed_entries(self):
        queue = BoundedJobQueue(capacity=4)
        queue.put("retry", 0, not_before=time.monotonic() + 0.1)
        queue.close()
        # A delayed retry queued before close must still be delivered.
        assert queue.get(0, timeout=2.0) == "retry"
        with pytest.raises(QueueClosed):
            queue.get(0, timeout=0.1)
