"""Streaming analysis cost: eager per-window classification vs batch.

Both paths produce byte-identical execution reports; what differs is
*when* verdicts land and how much detector/classifier state is resident
at once:

* **batch** — decode the container, build the monolithic ``LogView`` and
  ``AccessIndex``, sweep every region, then classify the full instance
  list in one go.  The first verdict is available only when the whole
  run finishes, and the index plus every open candidate pair stays
  resident until the end.
* **stream** — ``analyze_log_stream``: decode v4 segments one at a time
  through the ``SegmentCursor``, retire expired window state as the
  sweep advances, and classify each sealed window's fresh races
  immediately.  The first verdict lands after the first racy window —
  a fraction of the run — and resident detector state is bounded by the
  window, not the log.

The benchmark scales the same racy loop workloads as
``bench_detect_fromlog.py``, times both paths end to end (container
bytes in, rendered report bytes out), records the stream path's
time-to-first-verdict (from ``PerfStats.stream_first_verdict_s``),
tracks peak memory via ``tracemalloc``, and asserts along the way that
the two reports are byte-identical.

Runs both under pytest (``pytest benchmarks/bench_stream.py``) and as a
script::

    PYTHONPATH=src python benchmarks/bench_stream.py --quick

Either way the measured numbers land in
``benchmarks/results/BENCH_stream.json``.  ``--quick`` (used by CI)
keeps the byte-equality assertions but runs single repeats on the
smaller sizes — the equivalence gate, not the timing gate.
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from pathlib import Path

from repro.analysis.perf import PerfStats
from repro.analysis.pipeline import (
    analyze_log,
    analyze_log_stream,
    execution_report,
    render_report,
)
from repro.isa import assemble
from repro.record import record_run
from repro.record.binary_format import encode_log_segmented
from repro.record.serialization import load_log_bytes
from repro.vm import RandomScheduler

RESULTS_DIR = Path(__file__).parent / "results"

#: Same region shape as bench_detect_scaling: every region does one
#: racy read-modify-write plus a register-only compute kernel, so races
#: are spread evenly across the execution and classification (virtual-
#: processor replay per instance) dominates total cost — the regime
#: streaming is for.  The first sealed window already holds races, the
#: honest case for time-to-first-verdict (a front-loaded workload would
#: flatter streaming; a race-free one would starve it).
THREAD_TEMPLATE = """
.thread {t}
    li r1, {{outer}}
{t}o:
    load r2, [{shared}]
    addi r2, r2, 1
    store r2, [{shared}]
    li r4, 12
{t}k:
    addi r5, r5, 3
    subi r4, r4, 1
    bnez r4, {t}k
    sys_rand r3, 3
    subi r1, r1, 1
    bnez r1, {t}o
    halt
"""

SOURCE_TEMPLATE = (
    """
.data
x: .word 0
y: .word 0
"""
    + THREAD_TEMPLATE.format(t="a", shared="x")
    + THREAD_TEMPLATE.format(t="b", shared="x")
    + THREAD_TEMPLATE.format(t="c", shared="y")
    + THREAD_TEMPLATE.format(t="d", shared="y")
)

#: ``iters`` is the racy region count per thread.
SIZES = (20, 60, 200)
QUICK_SIZES = (12, 32)
SEED = 15
#: Small enough that the largest workload spans many segments (so the
#: first window seals early), large enough that per-frame overhead does
#: not dominate the container.
SEGMENT_BYTES = 512


def _container_bytes(iters: int, seed: int = SEED) -> bytes:
    program = assemble(
        SOURCE_TEMPLATE.format(outer=iters), name="stream%d" % iters
    )
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.3),
        seed=seed,
        max_steps=400_000,
    )
    return encode_log_segmented(log, segment_bytes=SEGMENT_BYTES)


def _run_batch(data: bytes):
    analysis = analyze_log(load_log_bytes(data))
    return render_report(execution_report(analysis)), None


def _run_stream(data: bytes):
    stats = PerfStats()
    analysis = analyze_log_stream(data, perf=stats)
    return render_report(execution_report(analysis)), stats


def _time_path(run, data: bytes, repeats: int):
    """Min wall time over ``repeats`` plus peak bytes and the last result.

    Each repeat starts from the raw container bytes, so the measured
    time is the honest end-to-end cost: decode/view build plus detect
    plus classification plus report rendering.  Peak memory is
    tracemalloc's high-water mark over one traced run (tracing slows
    execution, so timing and memory use separate runs).
    """
    best = None
    report = None
    stats = None
    for _ in range(repeats):
        start = time.perf_counter()
        report, stats = run(data)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    tracemalloc.start()
    run(data)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return best, peak, report, stats


def run_benchmark(sizes=SIZES, repeats: int = 3) -> dict:
    """Time batch vs stream per size; assert byte-identical reports."""
    rows = []
    for iters in sizes:
        data = _container_bytes(iters)
        batch_s, batch_peak, batch_report, _ = _time_path(
            _run_batch, data, repeats
        )
        stream_s, stream_peak, stream_report, stats = _time_path(
            _run_stream, data, repeats
        )
        if stream_report != batch_report:
            raise AssertionError(
                "stream report diverges from the batch path at iters=%d"
                % iters
            )
        # Batch cannot emit a verdict before the whole run completes, so
        # its time-to-first-verdict *is* its wall time.
        ttfv_s = stats.stream_first_verdict_s
        rows.append(
            {
                "iters": iters,
                "log_bytes": len(data),
                "segments": stats.stream_segments,
                "windows": stats.stream_windows,
                "batch_s": round(batch_s, 4),
                "stream_s": round(stream_s, 4),
                "ttfv_s": round(ttfv_s, 4),
                "ttfv_speedup": round(batch_s / ttfv_s, 2) if ttfv_s else 0.0,
                "batch_peak_kib": round(batch_peak / 1024, 1),
                "stream_peak_kib": round(stream_peak / 1024, 1),
                "peak_ratio": round(batch_peak / stream_peak, 2)
                if stream_peak
                else 0.0,
                "reports_identical": True,
            }
        )
    largest = rows[-1]
    return {
        "workloads": rows,
        "seed": SEED,
        "segment_bytes": SEGMENT_BYTES,
        "largest_iters": largest["iters"],
        "ttfv_speedup": largest["ttfv_speedup"],
        "peak_ratio": largest["peak_ratio"],
        "reports_identical": all(row["reports_identical"] for row in rows),
    }


def write_result(result: dict, output: Path) -> None:
    output.parent.mkdir(exist_ok=True)
    output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_stream_first_verdict_beats_batch(results_dir):
    result = run_benchmark(sizes=SIZES, repeats=3)
    write_result(result, results_dir / "BENCH_stream.json")
    assert result["reports_identical"]
    assert result["ttfv_speedup"] >= 5.0, (
        "streaming must reach its first verdict >=5x sooner than the batch "
        "path completes on the largest workload (got %.2fx)"
        % result["ttfv_speedup"]
    )
    assert result["peak_ratio"] > 1.0, (
        "streaming peak memory must stay below the batch path on the "
        "largest workload (got ratio %.2fx)" % result["peak_ratio"]
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes, single repeat: equivalence check, not a timing gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_stream.json",
        help="where to write the JSON result",
    )
    args = parser.parse_args()
    result = run_benchmark(
        sizes=QUICK_SIZES if args.quick else SIZES,
        repeats=1 if args.quick else 3,
    )
    if args.quick:
        result["quick"] = True  # mark CI-noise numbers as non-authoritative
    write_result(result, args.output)
    print(json.dumps(result, indent=2, sort_keys=True))
    print(
        "reports identical across %d workloads; largest TTFV speedup %.2fx, "
        "peak memory ratio %.2fx"
        % (len(result["workloads"]), result["ttfv_speedup"], result["peak_ratio"])
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
