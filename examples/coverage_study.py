#!/usr/bin/env python
"""Coverage and prioritization: running the analysis like a test-lab lead.

Two practical questions the paper's deployment raises:

1. *How many recordings are enough?*  A dynamic analysis only sees the
   races its recordings exercise (§2.1).  We sweep seeds over two
   workloads and plot the race-discovery curve — one saturates instantly,
   the schedule-sensitive one needs several recordings.

2. *What should a developer look at first?*  Within the potentially
   harmful bucket we rank races by evidence strength (state-change
   fraction, crash-like replay failures, breadth of sightings).

Run:  python examples/coverage_study.py
"""

from repro.analysis import analyze_execution
from repro.analysis.sweep import seed_coverage
from repro.race import aggregate_instances, render_ranking
from repro.workloads import Execution, stats_counter, toctou_handle
from repro.workloads.composite import combine_workloads
from repro.workloads.harmful_lost_update import lost_update
from repro.workloads.harmful_refcount import refcount_free


def main() -> None:
    print("=" * 72)
    print("PART 1 — how many recordings until the races are found?")
    print("=" * 72)
    for workload in (stats_counter(20, iters=4), toctou_handle(20)):
        sweep = seed_coverage(workload, seeds=range(10))
        print()
        print(sweep.render())

    print()
    print("=" * 72)
    print("PART 2 — what to triage first?")
    print("=" * 72)
    service = combine_workloads(
        "coverage_study_svc",
        "a service with several bugs of differing severity",
        stats_counter(21, iters=4),
        lost_update(21, iters=4),
        refcount_free(21),
    )
    results = {}
    for seed in (1, 23):
        analysis = analyze_execution(Execution("svc#%d" % seed, service, seed))
        aggregate_instances(analysis.classified, into=results)
    print()
    print(render_ranking(results))
    print(
        "\nCrash-prone refcount races and broad multi-execution lost updates"
        "\nrank above the single-sighting statistics noise."
    )


if __name__ == "__main__":
    main()
