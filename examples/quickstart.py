#!/usr/bin/env python
"""Quickstart: find and classify the data races in a small program.

The program below is the paper's everyday situation in miniature: the
"real work" counter is correctly locked, but a statistics counter next to
it is deliberately not.  We record one execution (the iDNA step), replay
it, detect the happens-before races, and let the replay-both-orders
classifier sort them into potentially benign and potentially harmful.

Run:  python examples/quickstart.py
"""

from repro import (
    OrderedReplay,
    RaceClassifier,
    RandomScheduler,
    aggregate_instances,
    assemble,
    build_report,
    find_races,
    record_run,
    render_triage_list,
)

SOURCE = """
.data
jobs:  .word 0
mutex: .word 0
stats: .word 0
.thread worker1 worker2
    li r1, 5                ; five units of work each
loop:
    lock [mutex]
    load r2, [jobs]         ; the real work: correctly locked
    addi r2, r2, 1
    store r2, [jobs]
    unlock [mutex]
    load r4, [stats]        ; the statistics: no lock (racy!)
    addi r4, r4, 1
    store r4, [stats]
    subi r1, r1, 1
    bnez r1, loop
    sys_print r2
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")

    # 1. Record one execution under a seeded preemptive scheduler.
    result, log = record_run(
        program, scheduler=RandomScheduler(seed=7, switch_probability=0.4), seed=7
    )
    print("original run:", result.output)
    print(
        "  jobs=%d (locked: always exact)   stats=%d (racy: may drop ticks)"
        % (
            result.memory[program.data_address("jobs")],
            result.memory[program.data_address("stats")],
        )
    )
    print("  log: %d instructions, %d records" % (log.total_instructions, log.total_records))

    # 2. Replay from the log and detect happens-before races.
    ordered = OrderedReplay(log, program)
    instances = find_races(ordered)
    print("\nhappens-before analysis: %d race instance(s)" % len(instances))

    # 3. Replay each instance both ways and classify.
    classifier = RaceClassifier(ordered, execution_id="quickstart#s7")
    classified = classifier.classify_all(instances)
    results = aggregate_instances(classified)

    # 4. Report, harmful first.
    reports = [build_report(r, program, log) for r in results.values()]
    print()
    print(render_triage_list(reports))


if __name__ == "__main__":
    main()
