"""Integration tests: replay fidelity across the whole corpus.

For every workload in the suite (including the harmful, sometimes-faulting
ones) and several seeds, the isolated per-thread replay must reproduce the
original execution bit-for-bit: final registers, step counts, and program
output.  This is the property load-based checkpointing guarantees and
everything else in the paper rests on.
"""

import pytest

from repro.record import record_run, log_from_json, log_to_json
from repro.replay import OrderedReplay
from repro.vm import RandomScheduler
from repro.workloads import all_workloads, paper_suite


def _fidelity_check(workload, seed):
    program = workload.program()
    result, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.3),
        seed=seed,
    )
    ordered = OrderedReplay(log, program)
    for name, outcome in result.threads.items():
        replay = ordered.thread_replays[name]
        assert replay.final_registers == outcome.registers, (
            "register mismatch for %s in %s seed %d" % (name, workload.name, seed)
        )
        assert replay.steps == outcome.steps
    assert ordered.output() == result.output
    return result, log, ordered


@pytest.mark.parametrize(
    "execution",
    paper_suite(),
    ids=lambda execution: execution.execution_id,
)
def test_suite_execution_replays_exactly(execution):
    _fidelity_check(execution.workload, execution.seed)


@pytest.mark.parametrize("seed", [0, 1, 2, 5, 9])
def test_every_workload_replays_across_seeds(seed):
    for name, workload in all_workloads().items():
        _fidelity_check(workload, seed)


def test_replay_after_serialization_round_trip():
    """A log that went through JSON must replay identically too."""
    execution = paper_suite()[0]
    program = execution.workload.program()
    result, log = record_run(
        program,
        scheduler=RandomScheduler(seed=execution.seed, switch_probability=0.3),
        seed=execution.seed,
    )
    restored = log_from_json(log_to_json(log))
    ordered = OrderedReplay(restored)  # program reassembled from source
    for name, outcome in result.threads.items():
        assert ordered.thread_replays[name].final_registers == outcome.registers


def test_race_free_final_memory_reconstruction():
    """For correctly synchronized programs the region-ordered image equals
    the machine's final memory exactly."""
    from repro.workloads import clean_suite

    for execution in clean_suite():
        program = execution.workload.program()
        result, log = record_run(
            program,
            scheduler=RandomScheduler(seed=execution.seed, switch_probability=0.3),
            seed=execution.seed,
        )
        ordered = OrderedReplay(log, program)
        image = ordered.final_memory()
        for address, value in result.memory.items():
            assert image.get(address, 0) == value
