"""The classification engine: parallel, memoized execution analysis.

This layer sits between :mod:`repro.analysis.pipeline` (one execution →
one :class:`ExecutionAnalysis`) and the suite/experiment drivers.  It adds
two things the per-execution pipeline does not have:

* **fan-out** — executions are independent, so the engine can dispatch
  them across a ``ProcessPoolExecutor`` (``jobs`` workers) and reassemble
  the results in submission order;
* **verdict memoization** — race instances that are structurally identical
  replays (same racing code, same in-region offsets, same recorded
  prefix/suffix content, same live-in values *where the replay actually
  looked*) must produce the same verdict, so the engine caches verdicts
  and serves repeats without touching the virtual processor.

Cache-key soundness (the full argument is in ``docs/performance.md``): a
verdict is a deterministic function of (a) the two racing regions'
recorded content — start pc, live-in registers, executed static ids and
every recorded access with its value, region-end state, (b) the racing
ops' in-region step offsets and owning thread names, (c) which racing op
was originally first, (d) the freed-range set, and (e) the pair-snapshot
live-in values the replay *reads*.  Components (a)–(c) form the structural
key — (a) is interned once per region so per-instance keys are tuples of
small ints; (d)–(e) cannot be known up front, so the first classification
runs with a :class:`TrackingImage` that records every live-in probe
(including misses), and the probe set + values are stored with the
verdict.  A later instance hits only when its own live-in agrees on every
probed address — and since the replay is deterministic in exactly those
inputs, it would have probed the same addresses and produced the same
verdict.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..race.classifier import ClassifierConfig, RaceClassifier
from ..race.model import RaceInstance
from ..race.outcomes import ClassifiedInstance, InstanceOutcome
from ..replay.regions import SequencingRegion
from ..workloads.suite import Execution
from .perf import PerfStats
from .pipeline import ExecutionAnalysis, analyze_execution


class TrackingImage(dict):
    """A live-in image that records every probe, *including misses*.

    The classifier and virtual processor only ever read the live-in image
    (``in``, ``[]``, ``.get``); every such probe lands in :attr:`probes`
    as ``address -> value`` (``None`` for a miss — memory values are
    non-negative ints, so ``None`` is unambiguous).  Misses matter: a
    replay that faulted on an absent address must not hit a cached verdict
    computed when the address was present, and vice versa.
    """

    __slots__ = ("probes",)

    _MISS = object()

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.probes: Dict[int, Optional[int]] = {}

    def _probe(self, key):
        value = super().get(key, self._MISS)
        self.probes[key] = None if value is self._MISS else value
        return value

    def get(self, key, default=None):
        value = self._probe(key)
        return default if value is self._MISS else value

    def __contains__(self, key) -> bool:
        return self._probe(key) is not self._MISS

    def __getitem__(self, key):
        value = self._probe(key)
        if value is self._MISS:
            raise KeyError(key)
        return value


#: What the cache stores per verdict: everything needed to rebuild a
#: ClassifiedInstance around a *different* RaceInstance object.
#: (outcome, original-first-was-side-a, pre_value, failure_kind, detail)
_VerdictTemplate = Tuple[InstanceOutcome, bool, int, object, str]


class VerdictCache:
    """Memoized verdicts keyed by structural key + live-in probe set.

    One structural key maps to a list of candidates because the same
    structural replay can behave differently under different live-in
    images; each candidate carries the probe set its verdict was computed
    under and matches only a live-in that agrees everywhere it looked.
    """

    def __init__(self) -> None:
        self._entries: Dict[
            tuple, List[Tuple[Tuple[Tuple[int, Optional[int]], ...], tuple, _VerdictTemplate]]
        ] = {}
        self._interned: Dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0

    def intern(self, content: tuple) -> int:
        """Map a (possibly large) content tuple to a stable small id.

        Region content is hashed once here, at interning time; the
        per-instance structural keys then carry only the id, so repeated
        lookups never re-hash whole region transcripts.
        """
        interned = self._interned.get(content)
        if interned is None:
            interned = len(self._interned)
            self._interned[content] = interned
        return interned

    def __len__(self) -> int:
        return sum(len(candidates) for candidates in self._entries.values())

    def lookup(
        self, key: tuple, live_in: Dict[int, int], freed: Dict[int, int]
    ) -> Optional[_VerdictTemplate]:
        freed_fp = tuple(sorted(freed.items()))
        for probe_items, candidate_freed, template in self._entries.get(key, ()):
            if candidate_freed != freed_fp:
                continue
            if all(
                live_in.get(address, None) == value
                for address, value in probe_items
            ):
                self.hits += 1
                return template
        self.misses += 1
        return None

    def store(
        self,
        key: tuple,
        probes: Dict[int, Optional[int]],
        freed: Dict[int, int],
        template: _VerdictTemplate,
    ) -> None:
        self._entries.setdefault(key, []).append(
            (
                tuple(sorted(probes.items())),
                tuple(sorted(freed.items())),
                template,
            )
        )


class MemoizingClassifier(RaceClassifier):
    """A :class:`RaceClassifier` that consults a shared verdict cache."""

    def __init__(self, *args, cache: Optional[VerdictCache] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.cache = cache if cache is not None else VerdictCache()
        #: (tid, region index) -> interned region-content id.
        self._region_ids: Dict[Tuple[int, int], int] = {}

    def classify_instance(self, instance: RaceInstance) -> ClassifiedInstance:
        if self.config.store_replay_outcomes:
            # Callers wanting the raw VPOutcomes need the real replay.
            return super().classify_instance(instance)
        instance = self._canonicalize(instance)
        live_in, freed = self.ordered.pair_snapshot(
            instance.region_a, instance.region_b
        )
        key = self._structural_key(instance)
        template = self.cache.lookup(key, live_in, freed)
        if template is not None:
            return self._from_template(instance, template)
        tracking = TrackingImage(live_in)
        result = self._classify_with_state(instance, tracking, freed)
        self.cache.store(
            key,
            tracking.probes,
            freed,
            (
                result.outcome,
                result.original_first == instance.access_a.thread_name,
                result.pre_value,
                result.failure_kind,
                result.failure_detail,
            ),
        )
        return result

    def _from_template(
        self, instance: RaceInstance, template: _VerdictTemplate
    ) -> ClassifiedInstance:
        outcome, first_is_a, pre_value, failure_kind, failure_detail = template
        return ClassifiedInstance(
            instance=instance,
            outcome=outcome,
            original_first=(
                instance.access_a.thread_name
                if first_is_a
                else instance.access_b.thread_name
            ),
            pre_value=pre_value,
            failure_kind=failure_kind,
            failure_detail=failure_detail,
            execution_id=self.execution_id,
        )

    # ------------------------------------------------------------------
    # The structural key.
    # ------------------------------------------------------------------

    def _region_content_id(
        self, thread_name: str, region: SequencingRegion
    ) -> int:
        """Interned id of everything the recording says about ``region``.

        Every input the replay draws from one side — start pc, live-in
        registers, the executed static-id trajectory, every recorded
        access (loads seed values, stores and their values, sync ops) and
        the region-end state — is a function of this tuple, so two regions
        with equal content ids are interchangeable for classification.
        Content is hashed once at interning; instances carry the int.
        """
        region_key = (region.tid, region.index)
        interned = self._region_ids.get(region_key)
        if interned is None:
            replay = self.ordered.thread_replays[thread_name]
            start, end = region.start_step, region.end_step
            if region.end_kind == "thread_end":
                thread_end = self.log.threads[thread_name].end
                end_state = (
                    "thread_end",
                    None if thread_end is None else thread_end.reason,
                    replay.final_registers,
                    replay.final_pc,
                )
            else:
                end_state = (
                    region.end_kind,
                    replay.region_end_registers.get(end),
                    replay.region_end_pcs.get(end),
                )
            content = (
                thread_name,
                # The whole-thread pc footprint gates which control flow
                # an alternative replay may visit (§4.2.1), so it is part
                # of what determines the verdict.
                tuple(sorted(self._pc_footprint(thread_name))),
                self.ordered.region_start_pc(region),
                self.ordered.live_in_registers(region),
                tuple(replay.static_ids[start:end]),
                tuple(
                    (
                        access.thread_step - start,
                        access.address,
                        access.value,
                        access.is_write,
                        access.is_sync,
                    )
                    for access in replay.accesses_in_steps(start, end)
                ),
                end_state,
            )
            interned = self.cache.intern(content)
            self._region_ids[region_key] = interned
        return interned

    def _structural_key(self, instance: RaceInstance) -> tuple:
        access_a, access_b = instance.access_a, instance.access_b
        region_a, region_b = instance.region_a, instance.region_b
        return (
            self.log.program_name,
            access_a.thread_step - region_a.start_step,
            self._region_content_id(access_a.thread_name, region_a),
            access_b.thread_step - region_b.start_step,
            self._region_content_id(access_b.thread_name, region_b),
            self._original_first(instance) == access_a.thread_name,
        )


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------


@dataclass
class EngineConfig:
    """Configuration of a :class:`ClassificationEngine`."""

    #: Worker processes; 1 analyses in-process (no pool).
    jobs: int = 1
    #: Serve structurally identical race instances from the verdict cache.
    memoize: bool = True
    classifier_config: Optional[ClassifierConfig] = None
    max_pairs_per_location: Optional[int] = 256
    max_steps: int = 200_000
    capture_global_order: bool = True
    #: Directory of the content-addressed record cache (None = no cache).
    #: A string (not a Path) so the config pickles cheaply to pool workers.
    cache_dir: Optional[str] = None
    #: Replay threads through the predecoded fast path (False forces the
    #: generic reference replayer; equivalence tests compare both).
    replay_fast_path: bool = True


class ClassificationEngine:
    """Analyses batches of executions, in parallel and with verdict reuse.

    The verdict cache is engine-lifetime: with ``jobs == 1`` every
    execution in every :meth:`analyze_executions` call shares it; with a
    pool each worker process keeps its own engine (and cache) alive across
    the executions it is handed, and the per-worker statistics are merged
    back into the caller's :class:`PerfStats`.
    """

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self.cache = VerdictCache()
        self._record_cache = None
        if self.config.cache_dir is not None:
            from .cache import SuiteCache

            self._record_cache = SuiteCache(self.config.cache_dir)

    # -- classifier construction (pipeline hook) -----------------------

    def _classifier_factory(
        self, ordered, classifier_config, execution_id
    ) -> RaceClassifier:
        if not self.config.memoize:
            return RaceClassifier(
                ordered, config=classifier_config, execution_id=execution_id
            )
        return MemoizingClassifier(
            ordered,
            config=classifier_config,
            execution_id=execution_id,
            cache=self.cache,
        )

    # -- public API ----------------------------------------------------

    def analyze_execution(
        self, execution: Execution, perf: Optional[PerfStats] = None
    ) -> ExecutionAnalysis:
        """Analyse one execution in-process (the pool is for batches)."""
        stats = perf if perf is not None else PerfStats()
        hits_before, misses_before = self.cache.hits, self.cache.misses
        analysis = analyze_execution(
            execution,
            classifier_config=self.config.classifier_config,
            max_pairs_per_location=self.config.max_pairs_per_location,
            max_steps=self.config.max_steps,
            capture_global_order=self.config.capture_global_order,
            classifier_factory=self._classifier_factory,
            perf=stats,
            cache=self._record_cache,
            replay_fast_path=self.config.replay_fast_path,
        )
        stats.cache_hits += self.cache.hits - hits_before
        stats.cache_misses += self.cache.misses - misses_before
        return analysis

    def analyze_executions(
        self, executions: Sequence[Execution], perf: Optional[PerfStats] = None
    ) -> List[ExecutionAnalysis]:
        """Analyse a batch, preserving input order in the result list."""
        stats = perf if perf is not None else PerfStats()
        stats.jobs = max(stats.jobs, self.config.jobs)
        if self.config.jobs <= 1 or len(executions) <= 1:
            return [self.analyze_execution(e, perf=stats) for e in executions]
        return self._analyze_pooled(list(executions), stats)

    def _analyze_pooled(
        self, executions: List[Execution], stats: PerfStats
    ) -> List[ExecutionAnalysis]:
        workers = min(self.config.jobs, len(executions))
        with stats.stage("pool"):
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self.config,),
            ) as pool:
                futures = [pool.submit(_worker_analyze, e) for e in executions]
                outcomes = [future.result() for future in futures]
        analyses: List[ExecutionAnalysis] = []
        for analysis, worker_stats in outcomes:
            analyses.append(analysis)
            stats.merge(worker_stats)
        stats.pool_tasks += len(executions)
        return analyses


# ----------------------------------------------------------------------
# Pool worker plumbing.  The engine (and its verdict cache) lives for the
# whole worker process, so memoization spans every execution a worker is
# handed, not just one task.
# ----------------------------------------------------------------------

_WORKER_ENGINE: Optional[ClassificationEngine] = None


def _init_worker(config: EngineConfig) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = ClassificationEngine(replace(config, jobs=1))


def _worker_analyze(execution: Execution) -> Tuple[ExecutionAnalysis, PerfStats]:
    assert _WORKER_ENGINE is not None, "worker used before initialization"
    worker_stats = PerfStats()
    analysis = _WORKER_ENGINE.analyze_execution(execution, perf=worker_stats)
    worker_stats.pool_workers.add(os.getpid())
    return analysis, worker_stats
