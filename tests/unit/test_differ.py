"""Unit tests for the replay-outcome differ."""

from repro.replay.differ import DiffKind, ReplayDiff, diff_outcomes
from repro.replay.virtual_processor import VPOutcome


def outcome(registers=None, memory=None, end_pcs=None):
    registers = registers or {"a": (0,) * 16}
    return VPOutcome(
        registers=registers,
        dirty_memory=memory or {},
        end_pcs=end_pcs or {name: 5 for name in registers},
        steps={name: 1 for name in registers},
        executed={name: [] for name in registers},
    )


class TestDiffOutcomes:
    def test_identical_outcomes_empty_diff(self):
        one = outcome(memory={100: 7})
        two = outcome(memory={100: 7})
        diff = diff_outcomes(one, two)
        assert diff.is_empty
        assert diff.summary() == "live-outs identical"

    def test_register_difference(self):
        one = outcome(registers={"a": (1,) + (0,) * 15})
        two = outcome(registers={"a": (2,) + (0,) * 15})
        diff = diff_outcomes(one, two)
        entries = diff.by_kind(DiffKind.REGISTER)
        assert len(entries) == 1
        assert entries[0].thread == "a"
        assert entries[0].location == "r0"
        assert "1 (original) vs 2 (alternative)" in entries[0].render()

    def test_memory_difference(self):
        diff = diff_outcomes(outcome(memory={100: 7}), outcome(memory={100: 9}))
        entries = diff.by_kind(DiffKind.MEMORY)
        assert len(entries) == 1
        assert entries[0].location == "[0x64]"

    def test_redundant_write_vs_no_write_is_equal(self):
        """A write of the live-in value equals not writing at all."""
        diff = diff_outcomes(
            outcome(memory={100: 7}), outcome(memory={}), live_in={100: 7}
        )
        assert diff.is_empty

    def test_write_vs_no_write_with_different_live_in(self):
        diff = diff_outcomes(
            outcome(memory={100: 7}), outcome(memory={}), live_in={100: 3}
        )
        assert not diff.is_empty

    def test_control_flow_difference(self):
        diff = diff_outcomes(outcome(end_pcs={"a": 5}), outcome(end_pcs={"a": 9}))
        assert diff.has_control_flow_divergence
        assert diff.by_kind(DiffKind.CONTROL_FLOW)[0].location == "end pc"

    def test_summary_counts(self):
        one = outcome(registers={"a": (1,) + (0,) * 15}, memory={100: 7}, end_pcs={"a": 5})
        two = outcome(registers={"a": (2,) + (0,) * 15}, memory={100: 9}, end_pcs={"a": 6})
        summary = diff_outcomes(one, two).summary()
        assert "register" in summary and "memory" in summary and "control-flow" in summary

    def test_render_lines(self):
        one = outcome(registers={"a": (1,) + (0,) * 15})
        two = outcome(registers={"a": (2,) + (0,) * 15})
        lines = diff_outcomes(one, two).render()
        assert lines == ["a r0: 1 (original) vs 2 (alternative)"]


class TestAgainstClassifier:
    def test_diff_agrees_with_same_state(self):
        """diff_outcomes is empty exactly when same_state holds — on a
        real racing program's replays."""
        from repro.isa import assemble
        from repro.race.classifier import ClassifierConfig, RaceClassifier
        from repro.race.happens_before import find_races
        from repro.record import record_run
        from repro.replay import OrderedReplay, same_state
        from repro.vm import RandomScheduler

        source = (
            ".data\nx: .word 10\n.thread a b\n    load r1, [x]\n"
            "    addi r1, r1, 1\n    store r1, [x]\n    halt\n"
        )
        program = assemble(source, name="dagree")
        _, log = record_run(program, scheduler=RandomScheduler(seed=3), seed=3)
        ordered = OrderedReplay(log, program)
        classifier = RaceClassifier(ordered)
        for instance in find_races(ordered)[:6]:
            live_in, _ = ordered.pair_snapshot(instance.region_a, instance.region_b)
            original, alternative = classifier.replay_pair(instance)
            diff = diff_outcomes(original, alternative, live_in)
            assert diff.is_empty == same_state(original, alternative, live_in)
