"""Structured diffing of two virtual-processor replays.

The paper's report gives the developer "the ability to replay the program
in two different ways ... and understand the effects of different memory
orders".  The raw material is two :class:`VPOutcome` live-outs; this
module turns them into a typed, renderable diff — which registers of
which thread changed, which memory words, whether control flow diverged —
that the race report and the CLI embed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from .virtual_processor import VPOutcome


class DiffKind(Enum):
    REGISTER = "register"
    MEMORY = "memory"
    CONTROL_FLOW = "control-flow"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DiffEntry:
    """One divergence between the original and alternative replays."""

    kind: DiffKind
    thread: Optional[str]
    location: str  # "r3", "[0x1000]", "end pc"
    original: object
    alternative: object

    def render(self) -> str:
        where = "%s %s" % (self.thread, self.location) if self.thread else self.location
        return "%s: %s (original) vs %s (alternative)" % (
            where,
            self.original,
            self.alternative,
        )


@dataclass
class ReplayDiff:
    """The full diff between the two replay orders of one race instance."""

    entries: List[DiffEntry] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.entries

    @property
    def has_control_flow_divergence(self) -> bool:
        return any(entry.kind is DiffKind.CONTROL_FLOW for entry in self.entries)

    def by_kind(self, kind: DiffKind) -> List[DiffEntry]:
        return [entry for entry in self.entries if entry.kind is kind]

    def render(self) -> List[str]:
        return [entry.render() for entry in self.entries]

    def summary(self) -> str:
        if self.is_empty:
            return "live-outs identical"
        counts: Dict[DiffKind, int] = {}
        for entry in self.entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return ", ".join(
            "%d %s difference(s)" % (count, kind)
            for kind, count in sorted(counts.items(), key=lambda item: str(item[0]))
        )


def diff_outcomes(
    original: VPOutcome,
    alternative: VPOutcome,
    live_in: Optional[Dict[int, int]] = None,
) -> ReplayDiff:
    """Compute the structured diff between two replays' live-outs.

    ``live_in`` supplies the fallback value for addresses only one replay
    wrote (a write of the live-in value is not a difference — the
    redundant-write rule the classifier also applies).
    """
    live_in = live_in or {}
    diff = ReplayDiff()

    for thread_name in original.registers:
        alternative_registers = alternative.registers.get(thread_name)
        if alternative_registers is None:
            continue
        for index, (before, after) in enumerate(
            zip(original.registers[thread_name], alternative_registers)
        ):
            if before != after:
                diff.entries.append(
                    DiffEntry(
                        kind=DiffKind.REGISTER,
                        thread=thread_name,
                        location="r%d" % index,
                        original=before,
                        alternative=after,
                    )
                )

    touched = set(original.dirty_memory) | set(alternative.dirty_memory)
    for address in sorted(touched):
        value_original = original.dirty_memory.get(address, live_in.get(address, 0))
        value_alternative = alternative.dirty_memory.get(
            address, live_in.get(address, 0)
        )
        if value_original != value_alternative:
            diff.entries.append(
                DiffEntry(
                    kind=DiffKind.MEMORY,
                    thread=None,
                    location="[%#x]" % address,
                    original=value_original,
                    alternative=value_alternative,
                )
            )

    for thread_name in original.end_pcs:
        pc_original = original.end_pcs[thread_name]
        pc_alternative = alternative.end_pcs.get(thread_name)
        if pc_alternative is not None and pc_original != pc_alternative:
            diff.entries.append(
                DiffEntry(
                    kind=DiffKind.CONTROL_FLOW,
                    thread=thread_name,
                    location="end pc",
                    original=pc_original,
                    alternative=pc_alternative,
                )
            )

    return diff
