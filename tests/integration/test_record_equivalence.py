"""The record-stage fast path and suite cache must not change anything.

The predecoded interpreter, the columnar recorder, and the
content-addressed record cache are pure performance work: a recording
made through any combination of them must be *identical* — same
``ReplayLog``, same machine result, same race instances, same verdicts —
to one made by the retained generic reference interpreter.  These tests
enforce that over the full paper suite.
"""

import pytest

from repro.analysis.cache import SuiteCache, execution_cache_key
from repro.analysis.perf import PerfStats
from repro.analysis.pipeline import analyze_execution, analyze_suite
from repro.record import record_run
from repro.vm import RandomScheduler
from repro.workloads.suite import clean_suite, paper_suite


def _record(execution, fast_path):
    return record_run(
        execution.workload.program(),
        scheduler=RandomScheduler(
            seed=execution.seed, switch_probability=execution.switch_probability
        ),
        seed=execution.seed,
        max_steps=200_000,
        fast_path=fast_path,
    )


def verdicts(suite):
    return [
        (
            entry.instance.static_key,
            entry.execution_id,
            entry.outcome,
            entry.original_first,
            entry.pre_value,
            entry.failure_kind,
            entry.failure_detail,
        )
        for analysis in suite.executions
        for entry in analysis.classified
    ]


def aggregates(suite):
    return {
        key: (result.classification, result.instance_count)
        for key, result in suite.results.items()
    }


def test_fast_path_recordings_byte_identical():
    """Fast vs generic interpreter: same log, same machine result, on
    every execution of the paper suite plus the clean controls."""
    for execution in list(paper_suite()) + list(clean_suite()):
        fast_result, fast_log = _record(execution, fast_path=True)
        slow_result, slow_log = _record(execution, fast_path=False)
        assert fast_log == slow_log, execution.execution_id
        assert fast_result.output == slow_result.output
        assert fast_result.memory == slow_result.memory
        assert fast_result.global_steps == slow_result.global_steps
        assert fast_result.threads == slow_result.threads
        assert fast_result.sequencer_count == slow_result.sequencer_count


def test_verdicts_identical_on_generic_recordings(tmp_path):
    """Verdicts from the default path (fast interpreter + columnar access
    index) equal verdicts computed over generic-reference recordings
    served through the cache (which strips the captured columns, forcing
    the replay-derived access index)."""
    subset = paper_suite()[:8]
    cache = SuiteCache(tmp_path / "slow-recordings")
    for execution in subset:
        slow_result, slow_log = _record(execution, fast_path=False)
        cache.store(execution_cache_key(execution, 200_000, True), slow_result, slow_log)

    for execution in subset:
        default = analyze_execution(execution)
        via_slow = analyze_execution(execution, cache=cache)
        assert via_slow.log == default.log
        assert via_slow.log.captured is None  # decoded from disk: replay-derived index
        def instance_keys(analysis):
            return [
                (
                    i.static_key,
                    i.address,
                    i.access_a.tid,
                    i.access_a.thread_step,
                    i.access_b.tid,
                    i.access_b.thread_step,
                )
                for i in analysis.instances
            ]

        assert instance_keys(via_slow) == instance_keys(default)
        assert [
            (e.outcome, e.original_first, e.pre_value, e.failure_kind)
            for e in via_slow.classified
        ] == [
            (e.outcome, e.original_first, e.pre_value, e.failure_kind)
            for e in default.classified
        ]


def test_suite_cache_second_run_hits_and_matches(tmp_path):
    """Running a suite twice against one cache dir: the second run serves
    every recording from disk and produces identical results."""
    subset = paper_suite()[:8]
    cache_dir = tmp_path / "record-cache"

    baseline = analyze_suite(subset)

    first_stats = PerfStats()
    first = analyze_suite(subset, perf=first_stats, cache_dir=cache_dir)
    assert first_stats.record_cache_misses == len(subset)
    assert first_stats.record_cache_hits == 0

    second_stats = PerfStats()
    second = analyze_suite(subset, perf=second_stats, cache_dir=cache_dir)
    assert second_stats.record_cache_hits == len(subset)
    assert second_stats.record_cache_misses == 0

    assert verdicts(first) == verdicts(baseline)
    assert verdicts(second) == verdicts(baseline)
    assert aggregates(first) == aggregates(baseline)
    assert aggregates(second) == aggregates(baseline)
    for cached, fresh in zip(second.executions, baseline.executions):
        assert cached.log == fresh.log
        assert cached.machine_result == fresh.machine_result


def test_cache_key_sensitivity():
    """The content address must change whenever anything that affects the
    recording changes, and must be stable for an unchanged execution."""
    executions = paper_suite()
    a, b = executions[0], executions[1]
    key = execution_cache_key(a, 200_000, True)
    assert key == execution_cache_key(a, 200_000, True)
    assert key != execution_cache_key(b, 200_000, True)
    assert key != execution_cache_key(a, 100_000, True)
    assert key != execution_cache_key(a, 200_000, False)
    reseeded = type(a)(
        execution_id=a.execution_id,
        workload=a.workload,
        seed=a.seed + 1,
        switch_probability=a.switch_probability,
    )
    assert key != execution_cache_key(reseeded, 200_000, True)


def test_corrupt_cache_entry_degrades_to_miss(tmp_path):
    """A truncated or garbage cache file must silently fall back to
    recording, never crash or serve bad data."""
    execution = paper_suite()[0]
    cache = SuiteCache(tmp_path)
    key = execution_cache_key(execution, 200_000, True)
    result, log = _record(execution, fast_path=True)
    cache.store(key, result, log)

    for path in tmp_path.iterdir():
        path.write_bytes(b"garbage" + path.read_bytes()[:10])
    assert cache.load(key) is None

    fresh = analyze_execution(execution, cache=cache)
    baseline = analyze_execution(execution)
    assert fresh.log == baseline.log
