"""Long-running analysis service: job store, queue, worker pool, HTTP API.

The record → replay → detect → classify pipeline, packaged as a server:
submit replay logs (or suite workloads by name) over HTTP, poll job
status, fetch the canonical race report.  Reports are byte-identical to
the in-process ``analyze_execution`` path — the service is a deployment
shape, not a different analysis.
"""

from .config import RetryPolicy, ServiceConfig
from .client import (
    JobFailedError,
    JobStatus,
    QueueFullError,
    ServiceClient,
    ServiceError,
)
from .http import AnalysisHTTPServer, make_server, serve_forever
from .jobs import Job, JobSpec, JobState, JobStore, content_key_for
from .queue import BoundedJobQueue, QueueClosed, QueueFull
from .service import AnalysisService, BadLogError, UnknownWorkloadError
from .workers import LatencyHistograms, ShardedWorkerPool

__all__ = [
    "AnalysisHTTPServer",
    "AnalysisService",
    "BadLogError",
    "BoundedJobQueue",
    "Job",
    "JobFailedError",
    "JobSpec",
    "JobState",
    "JobStatus",
    "JobStore",
    "LatencyHistograms",
    "QueueClosed",
    "QueueFull",
    "QueueFullError",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ShardedWorkerPool",
    "UnknownWorkloadError",
    "content_key_for",
    "make_server",
    "serve_forever",
]
