"""Unit tests for the shared ALU semantics."""

import pytest

from repro.isa.operands import WORD_MASK
from repro.vm.alu import binary_op, branch_taken, is_binary_op


class TestBinaryOps:
    def test_add_wraps(self):
        assert binary_op("add", WORD_MASK, 1) == 0

    def test_sub_wraps(self):
        assert binary_op("sub", 0, 1) == WORD_MASK

    def test_mul(self):
        assert binary_op("mul", 3, 7) == 21

    def test_divu_by_zero_is_all_ones(self):
        assert binary_op("divu", 42, 0) == WORD_MASK

    def test_remu_by_zero_returns_dividend(self):
        assert binary_op("remu", 42, 0) == 42

    def test_divu_remu(self):
        assert binary_op("divu", 17, 5) == 3
        assert binary_op("remu", 17, 5) == 2

    def test_bitwise(self):
        assert binary_op("and", 0b1100, 0b1010) == 0b1000
        assert binary_op("or", 0b1100, 0b1010) == 0b1110
        assert binary_op("xor", 0b1100, 0b1010) == 0b0110

    def test_shifts_mod_64(self):
        assert binary_op("shl", 1, 64) == 1
        assert binary_op("shl", 1, 3) == 8
        assert binary_op("shr", 8, 3) == 1

    def test_slt_signed(self):
        assert binary_op("slt", WORD_MASK, 0) == 1  # -1 < 0
        assert binary_op("slt", 0, WORD_MASK) == 0

    def test_sltu_unsigned(self):
        assert binary_op("sltu", WORD_MASK, 0) == 0
        assert binary_op("sltu", 0, WORD_MASK) == 1

    def test_immediate_forms_aliased(self):
        assert binary_op("addi", 2, 3) == binary_op("add", 2, 3)
        assert binary_op("slti", WORD_MASK, 0) == 1

    def test_is_binary_op(self):
        assert is_binary_op("add")
        assert is_binary_op("addi")
        assert not is_binary_op("load")
        assert not is_binary_op("jmp")

    def test_negative_inputs_wrapped(self):
        assert binary_op("add", -1, 2) == 1


class TestBranchTaken:
    def test_jmp_always(self):
        assert branch_taken("jmp", 0)

    def test_beq_bne(self):
        assert branch_taken("beq", 5, 5)
        assert not branch_taken("beq", 5, 6)
        assert branch_taken("bne", 5, 6)

    def test_signed_compares(self):
        assert branch_taken("blt", WORD_MASK, 0)  # -1 < 0
        assert not branch_taken("blt", 0, WORD_MASK)
        assert branch_taken("bge", 0, WORD_MASK)

    def test_zero_forms(self):
        assert branch_taken("beqz", 0)
        assert not branch_taken("beqz", 9)
        assert branch_taken("bnez", 9)

    def test_non_branch_raises(self):
        with pytest.raises(ValueError):
            branch_taken("add", 1, 2)
