"""Time-travel inspection of replayed executions.

The paper leans on iDNA's "reverse execution (also called time travel
debugging)" as the developer's follow-up tool: given the replay log a race
report points at, the developer replays and examines *any* past state.
This module is that capability for our logs: a :class:`TimeTravelInspector`
answers state queries at arbitrary points of a recorded execution —

* registers of a thread at any step,
* the value a thread's load/store saw at any step,
* a thread's program counter / source line at any step,
* a best-effort global memory view at a global-order point,

without re-recording anything.  Queries re-execute the per-thread replay
up to the requested step (threads are small; the replays themselves are
already materialised by :class:`OrderedReplay`), with snapshot reuse at
sequencing-region boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.operands import Imm
from ..isa.program import Program, StaticInstructionId
from ..record.log import ReplayLog
from ..vm import alu
from ..vm.registers import RegisterFile
from .errors import ReplayDivergence
from .ordered_replay import OrderedReplay


@dataclass(frozen=True)
class StepView:
    """Everything about one retired step of one thread."""

    thread_name: str
    thread_step: int
    pc: int
    static_id: StaticInstructionId
    instruction_text: str
    registers_before: Tuple[int, ...]
    registers_after: Tuple[int, ...]
    access: Optional[Tuple[str, int, int]] = None  # (kind, address, value)

    def describe(self) -> str:
        text = "%s step %d @ %s: %s" % (
            self.thread_name,
            self.thread_step,
            self.static_id,
            self.instruction_text,
        )
        if self.access is not None:
            kind, address, value = self.access
            text += "   [%s %#x = %d]" % (kind, address, value)
        changed = [
            "r%d: %d -> %d" % (index, before, after)
            for index, (before, after) in enumerate(
                zip(self.registers_before, self.registers_after)
            )
            if before != after
        ]
        if changed:
            text += "   {%s}" % ", ".join(changed)
        return text


class TimeTravelInspector:
    """Query any past state of a recorded execution."""

    def __init__(self, ordered: OrderedReplay):
        self.ordered = ordered
        self.program: Program = ordered.program
        self.log: ReplayLog = ordered.log
        # registers-before-step cache, per thread, filled lazily.
        self._register_cache: Dict[str, List[Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # Register time travel.
    # ------------------------------------------------------------------

    def _registers_timeline(self, thread_name: str) -> List[Tuple[int, ...]]:
        """Registers *before* each step (index i = before step i),
        plus one final entry for the end state."""
        if thread_name in self._register_cache:
            return self._register_cache[thread_name]
        replay = self.ordered.thread_replays[thread_name]
        thread_log = self.log.threads[thread_name]
        block = self.program.blocks[thread_log.block]
        registers = RegisterFile(thread_log.initial_registers)
        timeline: List[Tuple[int, ...]] = []
        loads_by_step = {
            access.thread_step: access.value
            for access in replay.accesses
            if not access.is_write
        }
        for step, pc in enumerate(replay.pcs):
            timeline.append(registers.snapshot())
            instruction = block.instruction_at(pc)
            self._apply_register_effects(
                instruction, registers, loads_by_step.get(step), thread_log, step
            )
        timeline.append(registers.snapshot())
        if timeline[-1] != replay.final_registers:
            raise ReplayDivergence(
                "inspector register reconstruction diverged for %s" % thread_name
            )
        self._register_cache[thread_name] = timeline
        return timeline

    def _apply_register_effects(
        self,
        instruction: Instruction,
        registers: RegisterFile,
        load_value: Optional[int],
        thread_log,
        step: int,
    ) -> None:
        opcode = instruction.opcode
        operands = instruction.operands
        if opcode == "li":
            registers.write(operands[0].index, operands[1].value)
        elif opcode == "mov":
            registers.write(operands[0].index, registers.read(operands[1].index))
        elif alu.is_binary_op(opcode):
            rhs = (
                operands[2].value
                if isinstance(operands[2], Imm)
                else registers.read(operands[2].index)
            )
            registers.write(
                operands[0].index,
                alu.binary_op(opcode, registers.read(operands[1].index), rhs),
            )
        elif opcode == "load":
            registers.write(operands[0].index, load_value or 0)
        elif opcode in ("atom_add", "atom_xchg", "cas"):
            registers.write(operands[0].index, load_value or 0)
        elif instruction.spec.is_syscall:
            record = thread_log.syscall_at(step)
            if record is not None and opcode in (
                "sys_getpid",
                "sys_time",
                "sys_rand",
                "sys_alloc",
            ):
                registers.write(operands[0].index, record.result)
        # branches/stores/nop/halt/fence/lock/unlock: no register effects.

    # ------------------------------------------------------------------
    # Public queries.
    # ------------------------------------------------------------------

    def registers_at(self, thread_name: str, thread_step: int) -> Tuple[int, ...]:
        """Register file of ``thread_name`` just *before* ``thread_step``."""
        timeline = self._registers_timeline(thread_name)
        if not 0 <= thread_step < len(timeline):
            raise IndexError(
                "step %d out of range for %s (0..%d)"
                % (thread_step, thread_name, len(timeline) - 1)
            )
        return timeline[thread_step]

    def register_at(self, thread_name: str, thread_step: int, register: int) -> int:
        return self.registers_at(thread_name, thread_step)[register]

    def pc_at(self, thread_name: str, thread_step: int) -> int:
        replay = self.ordered.thread_replays[thread_name]
        return replay.pcs[thread_step]

    def step_view(self, thread_name: str, thread_step: int) -> StepView:
        """A full picture of one retired step (the debugger's focus line)."""
        replay = self.ordered.thread_replays[thread_name]
        timeline = self._registers_timeline(thread_name)
        pc = replay.pcs[thread_step]
        static_id = replay.static_ids[thread_step]
        instruction = self.program.instruction(static_id)
        access = None
        for entry in replay.accesses:
            if entry.thread_step == thread_step:
                access = (
                    "store" if entry.is_write else "load",
                    entry.address,
                    entry.value,
                )
                break
        return StepView(
            thread_name=thread_name,
            thread_step=thread_step,
            pc=pc,
            static_id=static_id,
            instruction_text=instruction.source_text or str(instruction),
            registers_before=timeline[thread_step],
            registers_after=timeline[thread_step + 1],
            access=access,
        )

    def history_of_address(self, address: int) -> List[Tuple[str, int, str, int]]:
        """All recorded accesses to ``address``: (thread, step, kind, value),
        in per-thread order, threads interleaved by region-replay order."""
        history: List[Tuple[str, int, str, int]] = []
        for name, replay in self.ordered.thread_replays.items():
            for entry in replay.accesses:
                if entry.address == address:
                    history.append(
                        (
                            name,
                            entry.thread_step,
                            "store" if entry.is_write else "load",
                            entry.value,
                        )
                    )
        history.sort(key=lambda item: (item[1], item[0]))
        return history

    def last_write_before(
        self, thread_name: str, thread_step: int, address: int
    ) -> Optional[Tuple[str, int, int]]:
        """Best-effort provenance: who last wrote ``address`` from this
        thread's point of view at ``thread_step`` — its own latest store, or
        the replayed load value's origin."""
        replay = self.ordered.thread_replays[thread_name]
        own_store = None
        for entry in replay.accesses:
            if (
                entry.thread_step < thread_step
                and entry.address == address
                and entry.is_write
            ):
                own_store = (thread_name, entry.thread_step, entry.value)
        if own_store is not None:
            return own_store
        for name, other in self.ordered.thread_replays.items():
            if name == thread_name:
                continue
            for entry in other.accesses:
                if entry.address == address and entry.is_write:
                    return (name, entry.thread_step, entry.value)
        return None

    def walk(self, thread_name: str, start: int = 0, count: int = 10) -> List[StepView]:
        """A window of consecutive step views — 'stepping' through history."""
        replay = self.ordered.thread_replays[thread_name]
        end = min(start + count, replay.steps)
        return [self.step_view(thread_name, step) for step in range(start, end)]
