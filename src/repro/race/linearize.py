"""Linearized event stream for the baseline detectors.

The lockset and vector-clock baselines consume a single totally ordered
event stream.  True instruction-level global order is not recoverable from
iDNA-style logs, so we use the region-ordered replay's linearization:
sequencer-point events in global timestamp order, each followed by its
region's plain accesses in thread order.  Per-thread order is exact and
cross-thread synchronization order is exact — the only approximation is
among mutually racing plain accesses, which is precisely the order both
baseline algorithms are insensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa.program import StaticInstructionId
from ..replay.ordered_replay import OrderedReplay


@dataclass(frozen=True)
class LinearEvent:
    """One event in the linearized stream."""

    thread_name: str
    tid: int
    thread_step: int
    kind: str  # "access" | "lock" | "unlock" | "atomic" | syscall name | "fence"
    static_id: Optional[StaticInstructionId]
    address: Optional[int] = None
    value: int = 0
    is_write: bool = False

    @property
    def is_plain_access(self) -> bool:
        return self.kind == "access"

    @property
    def is_sync(self) -> bool:
        return self.kind in ("lock", "unlock", "atomic", "fence")


_ATOMIC_KINDS = {"atom_add", "atom_xchg", "cas"}


def linearize(ordered: OrderedReplay) -> List[LinearEvent]:
    """Build the linearized event stream from a replayed execution."""
    events: List[LinearEvent] = []
    for sequencer, thread_name, following in ordered.sequencers_with_regions():
        thread_log = ordered.log.threads[thread_name]
        replay = ordered.thread_replays[thread_name]
        if sequencer.kind in ("lock", "unlock") or sequencer.kind in _ATOMIC_KINDS:
            boundary = [
                access
                for access in replay.accesses
                if access.thread_step == sequencer.thread_step
            ]
            address = boundary[0].address if boundary else None
            events.append(
                LinearEvent(
                    thread_name=thread_name,
                    tid=thread_log.tid,
                    thread_step=sequencer.thread_step,
                    kind=(
                        "atomic" if sequencer.kind in _ATOMIC_KINDS else sequencer.kind
                    ),
                    static_id=sequencer.static_id,
                    address=address,
                )
            )
        elif sequencer.kind == "fence":
            events.append(
                LinearEvent(
                    thread_name=thread_name,
                    tid=thread_log.tid,
                    thread_step=sequencer.thread_step,
                    kind="fence",
                    static_id=sequencer.static_id,
                )
            )
        elif sequencer.kind.startswith("sys_"):
            events.append(
                LinearEvent(
                    thread_name=thread_name,
                    tid=thread_log.tid,
                    thread_step=sequencer.thread_step,
                    kind=sequencer.kind,
                    static_id=sequencer.static_id,
                )
            )
        if following is not None and not following.is_empty:
            for access in ordered.region_accesses(following):
                events.append(
                    LinearEvent(
                        thread_name=thread_name,
                        tid=thread_log.tid,
                        thread_step=access.thread_step,
                        kind="access",
                        static_id=access.static_id,
                        address=access.address,
                        value=access.value,
                        is_write=access.is_write,
                    )
                )
    return events
