"""Happens-before data race detection over sequencing regions (Section 3.4).

Two memory operations race when they execute in *overlapping* sequencing
regions of different threads, touch the same address, and at least one is
a write.  Because "overlapping" literally means no sequencer separates the
two operations in the global synchronization order, every reported pair is
a true unordered conflict — **no false positives**, the property the paper
chose the happens-before algorithm for.

Two detectors implement the same definition:

* :class:`HappensBeforeDetector` — the production engine: a **sweep line**
  over region opening/closing sequencer timestamps.  Regions enter an
  active set at their opening timestamp and expire at their closing one,
  so only genuinely overlapping pairs are ever examined; within the
  active set, candidate partners are found through the per-address
  postings of the shared columnar :class:`AccessIndex` instead of
  scanning every active region.  Work is proportional to overlap and
  address sharing, not to the square of the region count.
* :class:`NaiveHappensBeforeDetector` — the seed's quadratic region-pair
  loop with an ``overlaps`` check per pair, retained verbatim as the
  executable reference.  The equivalence tests and
  ``benchmarks/bench_detect_scaling.py`` hold the sweep line to
  byte-identical output (instances, ordering, truncation counters)
  against it.

The sweep-line detector consumes only ``ordered.access_index()``, so its
``ordered`` argument may be a full :class:`OrderedReplay` *or* the
zero-replay :class:`~repro.replay.log_view.LogView` — race sets are
byte-identical either way (the equivalence suite enforces it).  The
naive reference additionally needs ``thread_replays`` and therefore
always takes a real :class:`OrderedReplay`; the test suite
cross-validates both against the full machine trace.
"""

from __future__ import annotations

import os
import time
from collections import defaultdict
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from ..replay.events import ReplayedAccess
from ..replay.log_view import LogView, LogViewUnavailable
from ..replay.ordered_replay import OrderedReplay
from ..replay.regions import SequencingRegion, overlaps
from .model import RaceAccess, RaceInstance


class _DetectorBase:
    """Shared conflict enumeration and canonical output ordering.

    ``max_pairs_per_location`` caps the number of instance pairs reported
    per (region pair, address) so that adversarial loops cannot explode
    the instance count; the cap is reported via ``truncated_locations``.
    Both detectors share this code, so the cap semantics cannot drift
    between the sweep line and the reference.
    """

    def __init__(
        self,
        ordered: "OrderedReplay | LogView",
        max_pairs_per_location: Optional[int] = 256,
    ):
        self.ordered = ordered
        self.max_pairs_per_location = max_pairs_per_location
        self.truncated_locations = 0

    def detect(self) -> List[RaceInstance]:  # pragma: no cover - interface
        raise NotImplementedError

    @staticmethod
    def _sort_canonically(instances: List[RaceInstance]) -> List[RaceInstance]:
        instances.sort(
            key=lambda instance: (
                instance.region_a.start_ts,
                instance.region_b.start_ts,
                instance.access_a.thread_step,
                instance.access_b.thread_step,
                instance.address,
            )
        )
        return instances

    def _conflicts(
        self,
        region_a: SequencingRegion,
        accesses_a: Dict[int, List[ReplayedAccess]],
        region_b: SequencingRegion,
        accesses_b: Dict[int, List[ReplayedAccess]],
    ) -> List[RaceInstance]:
        # Canonical side ordering: earlier-opening region is side A.
        if (region_b.start_ts, region_b.tid) < (region_a.start_ts, region_a.tid):
            region_a, region_b = region_b, region_a
            accesses_a, accesses_b = accesses_b, accesses_a
        instances: List[RaceInstance] = []
        common = set(accesses_a) & set(accesses_b)
        for address in sorted(common):
            emitted = 0
            for access_a in accesses_a[address]:
                for access_b in accesses_b[address]:
                    if not (access_a.is_write or access_b.is_write):
                        continue
                    if (
                        self.max_pairs_per_location is not None
                        and emitted >= self.max_pairs_per_location
                    ):
                        self.truncated_locations += 1
                        break
                    instances.append(
                        RaceInstance(
                            access_a=self._to_race_access(region_a, access_a),
                            access_b=self._to_race_access(region_b, access_b),
                            region_a=region_a,
                            region_b=region_b,
                        )
                    )
                    emitted += 1
                else:
                    continue
                break
        return instances

    def _to_race_access(
        self, region: SequencingRegion, access: ReplayedAccess
    ) -> RaceAccess:
        return RaceAccess(
            thread_name=region.thread_name,
            tid=region.tid,
            thread_step=access.thread_step,
            static_id=access.static_id,
            address=access.address,
            value=access.value,
            is_write=access.is_write,
        )


class HappensBeforeDetector(_DetectorBase):
    """Sweep-line happens-before detector over the columnar access index.

    Regions are visited in opening-timestamp order (the access index's
    ordinal order).  A region expires from the active set once its closing
    timestamp is at or before the sweep position — exactly the negation of
    the strict :func:`overlaps` definition — so the active set holds
    precisely the earlier-opening regions that overlap the entering one.
    Candidate partners are the active regions sharing at least one address
    with the entering region, found by union over the entering region's
    addresses in the active per-address index.

    ``perf`` (a :class:`repro.analysis.perf.PerfStats`) receives the
    detect-stage breakdown: index/sweep wall time, regions swept, pairs
    examined vs. the quadratic pair count the naive loop would have
    visited.
    """

    def __init__(
        self,
        ordered: "OrderedReplay | LogView",
        max_pairs_per_location: Optional[int] = 256,
        perf=None,
    ):
        super().__init__(ordered, max_pairs_per_location)
        self.perf = perf

    def detect(self) -> List[RaceInstance]:
        """All race instances in the replayed execution, canonically ordered."""
        perf = self.perf
        if perf is not None:
            with perf.stage("detect.index"):
                index = self.ordered.access_index()
            with perf.stage("detect.sweep"):
                instances = self._sweep(index)
        else:
            index = self.ordered.access_index()
            instances = self._sweep(index)
        return self._sort_canonically(instances)

    def _sweep(self, index) -> List[RaceInstance]:
        instances: List[RaceInstance] = []
        #: Min-heap of (end_ts, ordinal) over currently active regions.
        expiry: List[Tuple[int, int]] = []
        #: address -> ordinals of active regions touching it.
        active_by_address: Dict[int, Set[int]] = defaultdict(set)
        regions = index.regions
        swept = 0
        examined = 0
        for ordinal, region in enumerate(regions):
            addresses = index.addresses_of(ordinal)
            if not addresses:
                continue
            swept += 1
            start_ts = region.start_ts
            # Expire: closed at or before the sweep position means ordered
            # (happens-before), mirroring the strict overlap definition.
            while expiry and expiry[0][0] <= start_ts:
                _, expired = heappop(expiry)
                for address in index.addresses_of(expired):
                    active_by_address[address].discard(expired)
            candidates: Set[int] = set()
            for address in addresses:
                candidates |= active_by_address[address]
            tid = region.tid
            grouped = None
            for other in sorted(candidates):
                other_region = regions[other]
                if other_region.tid == tid:
                    continue
                examined += 1
                if grouped is None:
                    grouped = index.by_address(ordinal)
                instances.extend(
                    self._conflicts(
                        other_region,
                        index.by_address(other),
                        region,
                        grouped,
                    )
                )
            heappush(expiry, (region.end_ts, ordinal))
            for address in addresses:
                active_by_address[address].add(ordinal)
        if self.perf is not None:
            self.perf.detect_regions += swept
            self.perf.detect_pairs_examined += examined
            self.perf.detect_pairs_pruned += swept * (swept - 1) // 2 - examined
        return instances


class NaiveHappensBeforeDetector(_DetectorBase):
    """The seed's quadratic region-pair detector, kept as the reference.

    Every region pair is tested with :func:`overlaps`; per-region access
    lists are re-materialized from the thread replays on every call,
    exactly as the seed did (it deliberately does not touch the columnar
    index, so benchmarks compare genuine before/after costs).
    """

    def detect(self) -> List[RaceInstance]:
        """All race instances in the replayed execution, canonically ordered."""
        regions = [
            region for region in self.ordered.all_regions() if not region.is_empty
        ]
        indexed = [
            (region, self._index_accesses(region))
            for region in regions
        ]
        instances: List[RaceInstance] = []
        for position_a in range(len(indexed)):
            region_a, accesses_a = indexed[position_a]
            if not accesses_a:
                continue
            for position_b in range(position_a + 1, len(indexed)):
                region_b, accesses_b = indexed[position_b]
                if not accesses_b or not overlaps(region_a, region_b):
                    continue
                instances.extend(
                    self._conflicts(region_a, accesses_a, region_b, accesses_b)
                )
        return self._sort_canonically(instances)

    def _index_accesses(
        self, region: SequencingRegion
    ) -> Dict[int, List[ReplayedAccess]]:
        replay = self.ordered.thread_replays[region.thread_name]
        by_address: Dict[int, List[ReplayedAccess]] = defaultdict(list)
        for access in replay.accesses_in_steps(region.start_step, region.end_step):
            if not access.is_sync:
                by_address[access.address].append(access)
        return dict(by_address)


class StreamingHappensBeforeDetector(_DetectorBase):
    """The sweep line, fed one region at a time in sweep order.

    The incremental twin of :class:`HappensBeforeDetector._sweep`: the
    segment cursor hands regions over in opening-timestamp order (with
    their captured rows), :meth:`add_region` runs exactly one iteration
    of the batch sweep loop — expire, candidate union, conflict
    enumeration, activate — and *returns the instances that iteration
    produced*, so races surface while later segments are still being
    read (or recorded).  Expired regions are immediately retired from
    the :class:`StreamingAccessWindow`, which is what bounds resident
    state by the active overlap window.

    :meth:`finish` returns the complete canonically-ordered race set —
    byte-identical to the batch detector's (the same region order, the
    same candidate sets, the same per-location cap arithmetic, and the
    canonical sort key is total, so enumeration order cannot leak into
    the output).
    """

    def __init__(
        self,
        max_pairs_per_location: Optional[int] = 256,
        perf=None,
    ):
        super().__init__(None, max_pairs_per_location)
        from ..analysis.access_index import StreamingAccessWindow

        self.window = StreamingAccessWindow(perf=perf)
        self.perf = perf
        self._expiry: List[Tuple[int, int]] = []
        self._active_by_address: Dict[int, Set[int]] = defaultdict(set)
        self._instances: List[RaceInstance] = []
        self._swept = 0
        self._examined = 0
        self._last_start_ts: Optional[int] = None
        self._finished = False

    def add_region(self, region: SequencingRegion, rows) -> List[RaceInstance]:
        """Sweep one region; returns the race instances it completed.

        ``rows`` are the region's captured ``(step, flag, address,
        value, static_id)`` tuples (sync rows filtered by the window).
        Regions must arrive in strictly increasing ``start_ts`` order —
        the segment cursor's release order.
        """
        if self._last_start_ts is not None and region.start_ts <= self._last_start_ts:
            raise ValueError(
                "streaming sweep fed out of order: region %s opens at ts %d, "
                "after ts %d was already swept"
                % (region, region.start_ts, self._last_start_ts)
            )
        self._last_start_ts = region.start_ts
        window = self.window
        ordinal = window.admit(region, rows)
        if ordinal is None:
            return []
        self._swept += 1
        start_ts = region.start_ts
        expiry = self._expiry
        active_by_address = self._active_by_address
        while expiry and expiry[0][0] <= start_ts:
            _, expired = heappop(expiry)
            for address in window.addresses_of(expired):
                active_by_address[address].discard(expired)
            window.retire(expired)
        addresses = window.addresses_of(ordinal)
        candidates: Set[int] = set()
        for address in addresses:
            candidates |= active_by_address[address]
        tid = region.tid
        grouped = None
        fresh: List[RaceInstance] = []
        for other in sorted(candidates):
            other_region = window.region(other)
            if other_region.tid == tid:
                continue
            self._examined += 1
            if grouped is None:
                grouped = window.by_address(ordinal)
            fresh.extend(
                self._conflicts(
                    other_region,
                    window.by_address(other),
                    region,
                    grouped,
                )
            )
        heappush(expiry, (region.end_ts, ordinal))
        for address in addresses:
            active_by_address[address].add(ordinal)
        self._instances.extend(fresh)
        return fresh

    def finish(self) -> List[RaceInstance]:
        """Retire the remaining window and return the canonical race set."""
        if not self._finished:
            self._finished = True
            while self._expiry:
                _, expired = heappop(self._expiry)
                self.window.retire(expired)
            self._active_by_address.clear()
            if self.perf is not None:
                self.perf.detect_regions += self._swept
                self.perf.detect_pairs_examined += self._examined
                self.perf.detect_pairs_pruned += (
                    self._swept * (self._swept - 1) // 2 - self._examined
                )
        return self._sort_canonically(self._instances)


def find_races(
    ordered: "OrderedReplay | LogView",
    max_pairs_per_location: Optional[int] = 256,
) -> List[RaceInstance]:
    """Convenience wrapper around :class:`HappensBeforeDetector`."""
    return HappensBeforeDetector(
        ordered, max_pairs_per_location=max_pairs_per_location
    ).detect()


# ----------------------------------------------------------------------
# Parallel segment-fanout detection.
#
# A v4 container's segments are self-contained and indexed by the
# footer, so the sweep partitions cleanly: worker *k* owns the regions
# whose opening sequencer timestamp falls inside its contiguous segment
# range.  Because timestamps are globally unique and a thread has at
# most one region open at any instant, the only regions from earlier
# ranges that can overlap worker *k*'s owned regions are the per-thread
# regions still open at the cut — the *straddlers*.  Each worker
# preloads its straddlers into the sweep's active set without emitting
# for them (their pairs belong to the worker that owns the
# later-opening side), so every overlapping pair is emitted exactly
# once, by exactly one worker, with the same per-(pair, address) cap
# arithmetic as the serial sweep.  Concatenating the workers' instances
# and applying the canonical sort therefore reproduces the serial
# output byte for byte.
# ----------------------------------------------------------------------


class PartitionSweepDetector(_DetectorBase):
    """The batch sweep loop over one worker's segment range.

    Identical to :meth:`HappensBeforeDetector._sweep` except that the
    first ``preloaded`` ordinals — the straddlers — enter the active
    set silently: they expire, share addresses and pair up as usual,
    but never count as swept and never trigger emission themselves.
    """

    def __init__(self, index, max_pairs_per_location: Optional[int] = 256):
        super().__init__(None, max_pairs_per_location)
        self.index = index
        self.swept = 0
        self.examined = 0

    def sweep(self, preloaded: int) -> List[RaceInstance]:
        """Run the sweep; returns instances in enumeration order (the
        parent sorts canonically after concatenating workers)."""
        instances: List[RaceInstance] = []
        expiry: List[Tuple[int, int]] = []
        active_by_address: Dict[int, Set[int]] = defaultdict(set)
        index = self.index
        regions = index.regions
        for ordinal, region in enumerate(regions):
            addresses = index.addresses_of(ordinal)
            if ordinal < preloaded:
                heappush(expiry, (region.end_ts, ordinal))
                for address in addresses:
                    active_by_address[address].add(ordinal)
                continue
            self.swept += 1
            start_ts = region.start_ts
            while expiry and expiry[0][0] <= start_ts:
                _, expired = heappop(expiry)
                for address in index.addresses_of(expired):
                    active_by_address[address].discard(expired)
            candidates: Set[int] = set()
            for address in addresses:
                candidates |= active_by_address[address]
            tid = region.tid
            grouped = None
            for other in sorted(candidates):
                other_region = regions[other]
                if other_region.tid == tid:
                    continue
                self.examined += 1
                if grouped is None:
                    grouped = index.by_address(ordinal)
                instances.extend(
                    self._conflicts(
                        other_region,
                        index.by_address(other),
                        region,
                        grouped,
                    )
                )
            heappush(expiry, (region.end_ts, ordinal))
            for address in addresses:
                active_by_address[address].add(ordinal)
        return instances


class _PartitionThreadCursor:
    """Per-thread region reconstruction state inside one worker."""

    __slots__ = ("name", "tid", "seen", "open_step", "open_ts", "open_kind", "rows", "row_pos")

    def __init__(self, name: str, tid: int) -> None:
        self.name = name
        self.tid = tid
        #: Sequencers of this thread seen so far (prelude included) —
        #: after *k* sequencers, ``k - 1`` consecutive pairs are
        #: complete, so the next completed region has index ``k - 1``
        #: (empty regions consume indices too, exactly as
        #: :func:`~repro.replay.regions.regions_of_thread` numbers them).
        self.seen = 0
        self.open_step = 0
        self.open_ts = 0
        self.open_kind = ""
        #: Buffered ``(step, flag, address, value, static_id)`` rows not
        #: yet claimed by a completed region, in step order.
        self.rows: list = []
        self.row_pos = 0


def _partition_worker(task: tuple) -> dict:
    """One worker: reconstruct and sweep a contiguous segment range.

    ``task`` is ``(path, s_lo, s_hi, max_pairs_per_location)``.  The
    worker mmaps the container itself, regex-skips the access rows of
    every prelude segment (it only needs per-thread sequencer counts and
    each thread's last pre-range sequencer — the opener of its possible
    straddler), lean-decodes its owned range, and keeps reading past the
    range only while a thread still has an open region that started at
    or below the range end.
    """
    path, s_lo, s_hi, max_pairs = task
    started = time.perf_counter()
    cpu_started = time.process_time()
    from ..analysis.access_index import PartitionAccessIndex
    from ..record.binary_format import (
        MappedSegmentedReader,
        read_segment_lean,
        scan_segment_sequencers,
    )

    threads: Dict[str, _PartitionThreadCursor] = {}
    #: ``(region, rows, is_straddler)`` in completion order.
    collected: List[tuple] = []
    with MappedSegmentedReader(path) as reader:
        entries = reader.index
        range_start = entries[s_lo].first_ts
        range_end = entries[s_hi - 1].last_ts
        for entry in entries[:s_lo]:
            payload = reader.segment_payload(entry)
            for name, tid, _block, count, step, ts, kind in scan_segment_sequencers(payload):
                if not count:
                    continue
                cursor = threads.get(name)
                if cursor is None:
                    cursor = threads[name] = _PartitionThreadCursor(name, tid)
                cursor.seen += count
                cursor.open_step = step
                cursor.open_ts = ts
                cursor.open_kind = kind
        kinds: Dict[str, str] = {}
        interned: Dict[Tuple[str, int], object] = {}
        for position in range(s_lo, len(entries)):
            if position >= s_hi and not any(
                cursor.seen
                and cursor.open_kind != "thread_end"
                and cursor.open_ts <= range_end
                for cursor in threads.values()
            ):
                break  # every region we could still own has closed
            payload = reader.segment_payload(entries[position])
            _, _, _, segment_threads = read_segment_lean(payload, kinds, interned)
            for name, tid, _block, sequencers, rows in segment_threads:
                cursor = threads.get(name)
                if cursor is None:
                    cursor = threads[name] = _PartitionThreadCursor(name, tid)
                if rows:
                    cursor.rows.extend(rows)
                for step, ts, kind in sequencers:
                    if cursor.seen:
                        _complete_partition_region(
                            cursor, step, ts, kind, range_start, range_end, collected
                        )
                    cursor.seen += 1
                    cursor.open_step = step
                    cursor.open_ts = ts
                    cursor.open_kind = kind

    collected.sort(key=lambda item: item[0].start_ts)
    index = PartitionAccessIndex()
    preloaded = 0
    for region, rows, is_straddler in collected:
        ordinal = index.add_region(region, rows, owned=not is_straddler)
        if is_straddler and ordinal is not None:
            preloaded += 1
    detector = PartitionSweepDetector(index, max_pairs_per_location=max_pairs)
    instances = detector.sweep(preloaded)
    return {
        "instances": instances,
        "truncated": detector.truncated_locations,
        "swept": detector.swept,
        "examined": detector.examined,
        "stitches": preloaded,
        "segments": s_hi - s_lo,
        "owned": index.owned_stats(),
        "worker_s": time.perf_counter() - started,
        # CPU seconds are the honest per-worker compute measure: when
        # workers outnumber free cores they time-share, which inflates
        # every worker's wall clock but not its CPU time.
        "worker_cpu_s": time.process_time() - cpu_started,
        "pid": os.getpid(),
    }


def _complete_partition_region(
    cursor: _PartitionThreadCursor,
    end_step: int,
    end_ts: int,
    end_kind: str,
    range_start: int,
    range_end: int,
    collected: List[tuple],
) -> None:
    """Close the cursor's open region at a newly-arrived sequencer.

    Buffered rows below ``end_step`` belong to the closing region (the
    v4 writer attaches every row to the first sequencer of its thread
    at or above the row's step, so a region's rows always travel in the
    segment of its *closing* sequencer).  Regions opening after the
    range end are completed — the cursor state must advance — but
    dropped: a later worker owns them.
    """
    start_ts = cursor.open_ts
    region_index = cursor.seen - 1
    rows = cursor.rows
    low = cursor.row_pos
    position = low
    end = len(rows)
    while position < end and rows[position][0] < end_step:
        position += 1
    claimed = rows[low:position]
    cursor.row_pos = position
    if position == end:
        cursor.rows = []
        cursor.row_pos = 0
    if start_ts > range_end or end_step <= cursor.open_step + 1:
        return  # not ours, or step-empty (never indexed by any path)
    start_step = cursor.open_step + 1
    if claimed and claimed[0][0] < start_step:
        kept = []
        for row in claimed:
            if row[0] >= start_step:
                kept.append(row)
            elif not row[1] & 2:
                raise LogViewUnavailable(
                    "segment stream lost a plain access row at step %d of "
                    "thread %r (region starts at step %d)"
                    % (row[0], cursor.name, start_step)
                )
        claimed = kept
    collected.append(
        (
            SequencingRegion(
                thread_name=cursor.name,
                tid=cursor.tid,
                index=region_index,
                start_step=start_step,
                end_step=end_step,
                start_ts=start_ts,
                end_ts=end_ts,
                start_kind=cursor.open_kind,
                end_kind=end_kind,
            ),
            claimed,
            start_ts < range_start,
        )
    )


def partition_segment_ranges(entries, jobs: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` segment ranges, balanced by row counts.

    The footer index records per-segment access- and sequencer-row
    counts, so the partitioner can equalize decode work (the dominant
    cost — both row kinds cost a comparable number of varint reads)
    instead of segment counts.  At most ``min(jobs, len(entries))``
    ranges come back; every segment lands in exactly one.
    """
    count = len(entries)
    jobs = max(1, min(jobs, count))
    weights = [
        entry.access_rows + entry.sequencer_rows + 1 for entry in entries
    ]
    remaining = sum(weights)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for workers_left in range(jobs, 0, -1):
        if lo >= count:
            break
        if workers_left == 1:
            hi = count
        else:
            target = remaining / workers_left
            acc = 0
            hi = lo
            # Leave at least one segment per remaining worker.
            ceiling = count - (workers_left - 1)
            while hi < ceiling:
                if hi > lo and acc + weights[hi] > target:
                    break
                acc += weights[hi]
                hi += 1
        ranges.append((lo, hi))
        remaining -= sum(weights[lo:hi])
        lo = hi
    return ranges


@dataclass
class ParallelDetectOutcome:
    """What the fan-out produced, plus the counters the caller surfaces."""

    instances: List[RaceInstance]
    truncated_locations: int
    stats: Dict[str, int]
    segments: int
    workers: int
    boundary_stitches: int
    #: The container's identity section (a
    #: :class:`~repro.record.binary_format.SegmentedHeader`).
    header: object = None
    #: Per-worker wall clock (inflated by time-sharing when workers
    #: outnumber free cores) and CPU seconds (contention-independent).
    worker_seconds: List[float] = field(default_factory=list)
    worker_cpu_seconds: List[float] = field(default_factory=list)
    worker_pids: List[int] = field(default_factory=list)


def parallel_detect_races(
    path,
    jobs: int,
    max_pairs_per_location: Optional[int] = 256,
    perf=None,
) -> ParallelDetectOutcome:
    """Fan a v4 container's segments across a process pool and merge.

    The parent maps the file, decodes only the header and footer (the
    segment index), and never holds the container bytes; each worker
    decompresses exactly the segments it reads.  The merged instance
    list — canonical order included — and the truncation counter are
    byte-identical to the serial sweep's.
    """
    from contextlib import nullcontext

    from ..record.binary_format import MappedSegmentedReader

    path = os.fspath(path)
    with MappedSegmentedReader(path) as reader:
        entries = reader.index
        header = reader.header
    ranges = partition_segment_ranges(entries, jobs) if entries else []
    tasks = [(path, lo, hi, max_pairs_per_location) for lo, hi in ranges]
    with perf.stage("detect.fanout") if perf is not None else nullcontext():
        if len(tasks) <= 1:
            results = [_partition_worker(task) for task in tasks]
        else:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
                results = list(pool.map(_partition_worker, tasks))
    merge_started = time.perf_counter()
    with perf.stage("detect.merge") if perf is not None else nullcontext():
        instances: List[RaceInstance] = []
        for result in results:
            instances.extend(result["instances"])
        _DetectorBase._sort_canonically(instances)
        swept = sum(result["swept"] for result in results)
        examined = sum(result["examined"] for result in results)
        stitches = sum(result["stitches"] for result in results)
        addresses: Set[int] = set()
        for result in results:
            addresses.update(result["owned"]["addresses"])
        stats = {
            "regions": sum(result["owned"]["regions"] for result in results),
            "accesses": sum(result["owned"]["accesses"] for result in results),
            "addresses": len(addresses),
            "writes": sum(result["owned"]["writes"] for result in results),
        }
    merge_seconds = time.perf_counter() - merge_started
    if perf is not None:
        perf.detect_regions += swept
        perf.detect_pairs_examined += examined
        perf.detect_pairs_pruned += swept * (swept - 1) // 2 - examined
        perf.parallel_segments += len(entries)
        perf.parallel_workers += len(tasks)
        perf.parallel_boundary_stitches += stitches
        perf.parallel_merge_s += merge_seconds
        perf.parallel_worker_sweep_s += sum(
            result["worker_cpu_s"] for result in results
        )
        if len(tasks) > 1:
            perf.pool_tasks += len(tasks)
            perf.pool_workers.update(result["pid"] for result in results)
    return ParallelDetectOutcome(
        instances=instances,
        truncated_locations=sum(result["truncated"] for result in results),
        stats=stats,
        segments=len(entries),
        workers=len(tasks),
        boundary_stitches=stitches,
        header=header,
        worker_seconds=[result["worker_s"] for result in results],
        worker_cpu_seconds=[result["worker_cpu_s"] for result in results],
        worker_pids=[result["pid"] for result in results],
    )


class ParallelFileDetector(_DetectorBase):
    """Detector-shaped adapter over :func:`parallel_detect_races`.

    Lets ``analyze_log``'s ``detector_factory`` hook swap the in-memory
    sweep for the partitioned file sweep: ``detect()`` returns the same
    canonical instance list the serial detector would, so every
    downstream stage (classification, reporting) is oblivious.
    """

    def __init__(
        self,
        path,
        jobs: int,
        max_pairs_per_location: Optional[int] = 256,
        perf=None,
    ):
        super().__init__(None, max_pairs_per_location)
        self.path = path
        self.jobs = jobs
        self.perf = perf

    def detect(self) -> List[RaceInstance]:
        outcome = parallel_detect_races(
            self.path,
            self.jobs,
            max_pairs_per_location=self.max_pairs_per_location,
            perf=self.perf,
        )
        self.truncated_locations = outcome.truncated_locations
        return outcome.instances
