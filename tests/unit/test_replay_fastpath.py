"""Edge cases of the replay-stage fast path.

The predecoded thread replayer, the lazy register snapshots, the bisected
region lookup, the strict ``output()`` check and the v3 captured-columns
section each have corners the suite-wide equivalence tests sweep past:
races in the first or last region, empty regions, thread-end sequencers,
tampered logs, pickling a lazy replay.  Each test pins one such corner.
"""

import dataclasses
import pickle

import pytest

from repro.isa import assemble
from repro.record import record_run
from repro.record.binary_format import decode_log, encode_log
from repro.replay.errors import ReplayDivergence
from repro.replay.events import LazyAccessList, LazyRegisterDict
from repro.replay.ordered_replay import OrderedReplay
from repro.vm import RandomScheduler

RACY = """
.data
x: .word 0
.thread a
    li r1, 3
al:
    load r2, [x]
    addi r2, r2, 1
    store r2, [x]
    sys_rand r3, 2
    subi r1, r1, 1
    bnez r1, al
    sys_print r2
    halt
.thread b
    li r1, 3
bl:
    load r2, [x]
    addi r2, r2, 2
    store r2, [x]
    sys_rand r3, 2
    subi r1, r1, 1
    bnez r1, bl
    sys_print r2
    halt
"""

#: Race candidates in the very first and very last region of each thread:
#: no sequencer before the first access, none after the last.
EDGE_REGION_RACE = """
.data
x: .word 0
.thread a
    load r2, [x]
    addi r2, r2, 1
    store r2, [x]
    fence
    load r2, [x]
    store r2, [x]
    halt
.thread b
    load r2, [x]
    addi r2, r2, 2
    store r2, [x]
    fence
    load r2, [x]
    store r2, [x]
    halt
"""


def _replayed(source, seed=7, fast_path=True, name="fastpath"):
    program = assemble(source, name=name)
    result, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    return program, result, log, OrderedReplay(log, program, fast_path=fast_path)


def _generic(log, program):
    stripped = dataclasses.replace(log)
    stripped.captured = None
    return OrderedReplay(stripped, program, fast_path=False)


class TestRegionForStepBisect:
    def test_bisect_matches_linear_scan_everywhere(self):
        """The bisected ``region_for_step`` equals the reference linear
        scan on every (thread, step) pair, including past-the-end steps."""
        for source in (RACY, EDGE_REGION_RACE):
            _, _, log, ordered = _replayed(source)
            for name, thread_log in log.threads.items():
                for step in range(-1, thread_log.steps + 2):
                    fast = ordered.region_for_step(name, step)
                    slow = ordered._region_for_step_scan(name, step)
                    assert fast is slow, (name, step)


class TestLazySnapshotEdges:
    def test_first_and_last_region_snapshots(self):
        """Races living in a thread's first and last region force lazy
        reconstruction at both extremes of the step range."""
        program, _, log, ordered = _replayed(EDGE_REGION_RACE)
        generic = _generic(log, program)
        for name in log.threads:
            fast = ordered.thread_replays[name]
            slow = generic.thread_replays[name]
            assert fast.region_start_registers.materialize_all() == dict(
                slow.region_start_registers
            )
            assert fast.region_end_registers.materialize_all() == dict(
                slow.region_end_registers
            )
            assert fast.registers_at_step.materialize_all() == dict(
                slow.registers_at_step
            )

    def test_thread_end_sequencer_snapshot(self):
        """The thread-end boundary (step == steps) resolves to the final
        register file without reconstruction."""
        program, _, log, ordered = _replayed(RACY)
        for name, thread_log in log.threads.items():
            replay = ordered.thread_replays[name]
            if any(
                sequencer.thread_step == thread_log.steps
                for sequencer in thread_log.sequencers
            ):
                assert (
                    replay.region_end_registers[thread_log.steps]
                    == replay.final_registers
                )

    def test_empty_region_program(self):
        """Back-to-back fences make step-empty regions; the lazy dicts
        must still agree with the eager ones."""
        source = ".data\nx: .word 1\n.thread t\n    fence\n    fence\n    load r1, [x]\n    fence\n    halt\n"
        program, _, log, ordered = _replayed(source)
        generic = _generic(log, program)
        fast = ordered.thread_replays["t"]
        slow = generic.thread_replays["t"]
        assert fast.materialized() == slow.materialized()

    def test_invalid_step_raises_key_error(self):
        """A step that is neither a region boundary nor a memory access
        raises KeyError exactly like the eager dict."""
        program, _, log, ordered = _replayed(RACY)
        generic = _generic(log, program)
        replay = ordered.thread_replays["a"]
        slow = generic.thread_replays["a"]
        for step in range(log.threads["a"].steps):
            if step not in slow.registers_at_step:
                with pytest.raises(KeyError):
                    replay.registers_at_step[step]
                assert replay.registers_at_step.get(step) is None
                break
        else:  # pragma: no cover - RACY always has non-memory steps
            pytest.fail("no non-memory step found")

    def test_lazy_dict_is_lazy(self):
        """Plain construction plus a targeted query reconstructs only the
        queried snapshot, not every boundary."""
        _, _, _, ordered = _replayed(RACY)
        replay = ordered.thread_replays["a"]
        assert isinstance(replay.region_start_registers, LazyRegisterDict)
        assert isinstance(replay.accesses, LazyAccessList)
        assert not dict.__len__(replay.registers_at_step)
        first_access_step = replay.accesses[0].thread_step
        replay.registers_at_step[first_access_step]
        assert dict.__len__(replay.registers_at_step) == 1


class TestStrictOutput:
    def test_tampered_log_raises_divergence(self):
        """A sys_print sequencer whose syscall record was dropped is a
        divergence, not silently truncated output."""
        program, _, log, _ = _replayed(RACY)
        tampered = dataclasses.replace(log)
        tampered.threads = dict(log.threads)
        for name, thread_log in log.threads.items():
            print_steps = [
                step
                for step, record in thread_log.syscalls.items()
                if record.name == "sys_print"
            ]
            if print_steps:
                syscalls = dict(thread_log.syscalls)
                del syscalls[print_steps[0]]
                tampered.threads[name] = dataclasses.replace(
                    thread_log, syscalls=syscalls
                )
                break
        else:  # pragma: no cover - RACY prints from both threads
            pytest.fail("no sys_print record found")
        with pytest.raises(ReplayDivergence):
            OrderedReplay(tampered, program).output()

    def test_output_served_without_materializing_threads(self):
        """``output()`` reads the logged records directly — no thread
        replay is materialized."""
        program, result, log, ordered = _replayed(RACY)
        assert ordered.output() == result.output
        assert not ordered.thread_replays._replays


class TestCapturedRoundTrip:
    def test_v3_round_trips_captured_columns(self):
        _, _, log, _ = _replayed(RACY)
        assert log.captured is not None
        decoded = decode_log(encode_log(log))
        assert decoded == log
        assert decoded.captured is not None
        assert decoded.captured.predicted_loads == log.captured.predicted_loads
        assert set(decoded.captured.threads) == set(log.captured.threads)
        for name, columns in log.captured.threads.items():
            other = decoded.captured.threads[name]
            assert other.steps == columns.steps
            assert other.addresses == columns.addresses
            assert other.values == columns.values
            assert other.flags == columns.flags
            assert other.static_ids == columns.static_ids
            assert other.heap_steps == columns.heap_steps
            assert other.heap_kinds == columns.heap_kinds
            assert other.heap_bases == columns.heap_bases
            assert other.heap_sizes == columns.heap_sizes

    def test_include_captured_false_omits_section(self):
        _, _, log, _ = _replayed(RACY)
        without = encode_log(log, include_captured=False)
        decoded = decode_log(without)
        assert decoded == log
        assert decoded.captured is None
        assert len(without) < len(encode_log(log))

    def test_heap_columns_round_trip(self):
        source = (
            ".thread t\n    li r1, 4\n    sys_alloc r2, r1\n    li r3, 9\n"
            "    store r3, [r2]\n    sys_free r2\n    halt\n"
        )
        _, _, log, _ = _replayed(source)
        columns = log.captured.threads["t"]
        assert columns.heap_kinds == ["alloc", "free"]
        decoded = decode_log(encode_log(log))
        other = decoded.captured.threads["t"]
        assert other.heap_steps == columns.heap_steps
        assert other.heap_kinds == columns.heap_kinds
        assert other.heap_bases == columns.heap_bases
        assert other.heap_sizes == columns.heap_sizes


class TestPickleSafety:
    def test_lazy_ordered_replay_pickles(self):
        """The engine ships OrderedReplay objects to pool workers; the
        lazy structures must survive the round trip with equal behavior."""
        program, _, log, ordered = _replayed(RACY)
        ordered.thread_replays["a"]  # materialize one lazy replay
        clone = pickle.loads(pickle.dumps(ordered))
        assert clone.output() == ordered.output()
        assert clone.final_memory() == ordered.final_memory()
        for name in log.threads:
            assert (
                clone.thread_replays[name].materialized()
                == ordered.thread_replays[name].materialized()
            )
