"""Integration tests for the CLI's suite-level commands (slower)."""

import io

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestSuiteCommand:
    def test_suite_prints_corpus_and_tables(self):
        code, text = run_cli(["suite"])
        assert code == 0
        assert "Corpus:" in text
        assert "Per-execution breakdown" in text
        assert "Potentially Benign" in text  # Table 1
        assert "Benign reason" in text  # Table 2


class TestExperimentCommand:
    def test_table1(self):
        code, text = run_cli(["experiment", "table1"])
        assert code == 0
        assert "No State Change" in text

    def test_figure3(self):
        code, text = run_cli(["experiment", "figure3"])
        assert code == 0
        assert "Figure 3" in text

    def test_ablation_instances(self):
        code, text = run_cli(["experiment", "ablation_instances"])
        assert code == 0
        assert "recall" in text
        assert "executions analysed" in text


class TestReportCommand:
    def test_report_writes_document(self, tmp_path):
        destination = tmp_path / "RESULTS.md"
        code, text = run_cli(
            ["report", "-o", str(destination), "--skip-overheads"]
        )
        assert code == 0
        document = destination.read_text()
        assert "## Table 1" in document
        assert "## Detector ablation" in document
        assert "Section 5.1" not in document  # skipped
