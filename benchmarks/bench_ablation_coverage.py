"""Ablation A4: dynamic-analysis coverage vs recorded seeds.

Section 2.1's admitted trade-off: a dynamic analysis only sees the races
its recordings exercise — "the coverage will be lower than the static
techniques" — mitigated by recording more scenarios.  This ablation
records representative workloads under a growing set of seeds and
measures the race-discovery curve: monotone, eventually saturating, with
the harmful races found well before saturation.
"""

from repro.analysis.sweep import seed_coverage
from repro.workloads import refcount_free, stats_counter, toctou_handle

from conftest import write_artifact


def test_coverage_curve_monotone_and_saturating(results_dir, benchmark):
    sweep = benchmark.pedantic(
        lambda: seed_coverage(stats_counter(8, iters=4), seeds=range(8)),
        rounds=1,
        iterations=1,
    )
    uniques = [point.unique_races for point in sweep.points]
    assert uniques == sorted(uniques)
    assert sweep.total_unique >= 1
    assert sweep.seeds_to_saturation <= len(sweep.points)
    write_artifact(results_dir, "ablation_coverage.txt", sweep.render())


def test_schedule_sensitive_race_needs_many_seeds(results_dir):
    """The toctou invalidation race is only exposed by a minority of
    schedules — exactly why the paper records many test scenarios."""
    sweep = seed_coverage(toctou_handle(8), seeds=range(10))
    first_discovery = next(
        (point.seeds_used for point in sweep.points if point.unique_races > 0),
        None,
    )
    assert first_discovery is not None, "no seed exposed the race at all"
    assert first_discovery > 1, "expected the race to hide from the first seed"
    write_artifact(
        results_dir,
        "ablation_coverage_toctou.txt",
        sweep.render(),
    )


def test_harmful_races_found_within_budget(results_dir):
    sweep = seed_coverage(refcount_free(8), seeds=range(6))
    assert sweep.points[-1].harmful_races >= 1
