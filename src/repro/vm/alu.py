"""Pure arithmetic/branch semantics shared by the VM, the replayer, and the
virtual processor.

Keeping these as side-effect-free functions guarantees that the recorder's
machine, the per-thread replayer, and the both-orders virtual processor all
compute identically — a prerequisite for the paper's "compare the live-outs
of two replays" classification to be meaningful.

Semantics notes:

* All values are 64-bit unsigned words; arithmetic wraps.
* ``blt``/``bge``/``slt``/``slti`` compare as signed two's complement.
* Division/remainder by zero follow the RISC-V convention (no trap):
  ``divu x, 0 == 2**64 - 1`` and ``remu x, 0 == x``.  This keeps arithmetic
  total, so an alternative-order replay can never trap on arithmetic alone.
* Shift amounts are taken modulo 64.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..isa.operands import WORD_MASK, to_signed, to_unsigned

#: Map an immediate-form mnemonic to its register-form equivalent.
IMMEDIATE_FORMS: Dict[str, str] = {
    "addi": "add",
    "subi": "sub",
    "muli": "mul",
    "andi": "and",
    "ori": "or",
    "xori": "xor",
    "shli": "shl",
    "shri": "shr",
    "slti": "slt",
}


def _divu(a: int, b: int) -> int:
    return WORD_MASK if b == 0 else a // b


def _remu(a: int, b: int) -> int:
    return a if b == 0 else a % b


_BINARY_OPS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "divu": _divu,
    "remu": _remu,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b % 64),
    "shr": lambda a, b: a >> (b % 64),
    "slt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
}


def binary_op(opcode: str, a: int, b: int) -> int:
    """Evaluate a binary ALU operation on two 64-bit words.

    Accepts both register forms (``add``) and immediate forms (``addi``).
    """
    opcode = IMMEDIATE_FORMS.get(opcode, opcode)
    a = to_unsigned(a)
    b = to_unsigned(b)
    return to_unsigned(_BINARY_OPS[opcode](a, b))


def is_binary_op(opcode: str) -> bool:
    """True when ``opcode`` is handled by :func:`binary_op`."""
    return opcode in _BINARY_OPS or opcode in IMMEDIATE_FORMS


def branch_taken(opcode: str, a: int, b: int = 0) -> bool:
    """Decide whether a conditional branch is taken.

    ``beqz``/``bnez`` pass only ``a``; two-register branches pass both.
    """
    a = to_unsigned(a)
    b = to_unsigned(b)
    if opcode == "jmp":
        return True
    if opcode == "beq":
        return a == b
    if opcode == "bne":
        return a != b
    if opcode == "blt":
        return to_signed(a) < to_signed(b)
    if opcode == "bge":
        return to_signed(a) >= to_signed(b)
    if opcode == "beqz":
        return a == 0
    if opcode == "bnez":
        return a != 0
    raise ValueError("not a branch opcode: %r" % opcode)
