"""Stdlib HTTP API over :class:`~repro.service.service.AnalysisService`.

Endpoints::

    POST   /jobs             submit a job
    GET    /jobs/<id>        job status
    GET    /jobs/<id>/report canonical race report (when done)
    DELETE /jobs/<id>        cancel a queued job
    GET    /healthz          liveness
    GET    /metrics          queue depth, throughput, cache hit rates,
                             per-stage latency histograms
    GET    /races            ranked fleet triage report (harmful first;
                             ?include_suppressed=1, ?limit=N)
    GET    /races/<id>       one fleet record with per-job contributions
    GET    /suppressions     live suppression rules
    POST   /suppressions     add a rule: {"race", "digest"?, "reason"?,
                             "by"?, "ttl_s"?}
    DELETE /suppressions/<id> remove a rule

The ``/races`` and ``/suppressions`` family requires the service to be
started with a fleet store (``repro serve --fleet-dir``); without one
they reply 404 with an explanatory error.

``POST /jobs`` accepts three request shapes, selected by Content-Type:

* ``application/json`` — workload-by-name:
  ``{"workload": "svc_flags", "seed": 3, "switch_probability": 0.3,
  "priority": 0}``;
* ``multipart/form-data`` — a replay-log upload in a file part named
  ``log`` (any filename), with optional ``priority`` and ``mode``
  fields;
* ``application/octet-stream`` — raw replay-log bytes (binary container
  or JSON document), priority via the ``X-Repro-Priority`` header and
  mode via ``X-Repro-Mode``.

Every shape accepts ``mode``: ``"full"`` (default) runs the whole
detect-and-classify funnel; ``"detect"`` stops after detection and —
for v3+ logs with captured columns — runs the zero-replay log-native
detect path; ``"stream"`` runs the full funnel with streaming detection
and eager per-window classification (same report bytes as ``"full"``),
and is rejected with a ``400`` for logs without captured columns
(v1/v2, or captureless encodes).  An unknown mode is a ``400``.

Submission replies ``202`` with ``{"job_id", "state", "created", "mode"}``
(``created`` false = idempotent dedup hit), ``429`` when the bounded
queue rejects (backpressure — retry later), ``400`` for undecodable
payloads or unknown workloads.  Built on ``http.server``'s threading
server: no third-party dependencies, one OS thread per in-flight
request, all real work behind the queue.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .config import ServiceConfig
from .jobs import JobState
from .queue import QueueClosed, QueueFull
from .service import AnalysisService, BadLogError, UnknownWorkloadError

#: Upload size cap (64 MiB): a denial-of-service guard, not a format limit.
MAX_BODY_BYTES = 64 * 1024 * 1024


def _parse_multipart(body: bytes, content_type: str) -> Dict[str, Tuple[str, bytes]]:
    """Minimal multipart/form-data parser: ``name -> (filename, data)``.

    Handles what real clients (curl, requests, our own
    :mod:`repro.service.client`) emit: one boundary, CRLF line endings,
    ``Content-Disposition`` with optional filename.  Malformed parts are
    skipped; a missing boundary raises ``ValueError``.
    """
    boundary = None
    for parameter in content_type.split(";")[1:]:
        name, _, value = parameter.strip().partition("=")
        if name.lower() == "boundary":
            boundary = value.strip('"')
    if not boundary:
        raise ValueError("multipart body without a boundary parameter")
    delimiter = b"--" + boundary.encode("latin-1")
    fields: Dict[str, Tuple[str, bytes]] = {}
    for chunk in body.split(delimiter):
        chunk = chunk.strip(b"\r\n")
        if not chunk or chunk == b"--":
            continue
        header_blob, _, data = chunk.partition(b"\r\n\r\n")
        disposition = ""
        for line in header_blob.split(b"\r\n"):
            text = line.decode("latin-1", "replace")
            if text.lower().startswith("content-disposition:"):
                disposition = text
        name = filename = ""
        for parameter in disposition.split(";")[1:]:
            key, _, value = parameter.strip().partition("=")
            value = value.strip('"')
            if key == "name":
                name = value
            elif key == "filename":
                filename = value
        if name:
            fields[name] = (filename, data)
    return fields


class AnalysisRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the attached :class:`AnalysisService`."""

    server_version = "repro-analysis/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------

    def _send_json(self, status: int, document: dict) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self._send_bytes(status, body)

    def _send_bytes(
        self, status: int, body: bytes, content_type: str = "application/json"
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "body too large"})
            return None
        return self.rfile.read(length)

    def _submission_response(self, job, created: bool) -> None:
        self._send_json(
            202,
            {
                "job_id": job.job_id,
                "state": str(job.state),
                "created": created,
                "mode": job.spec.mode,
            },
        )

    # -- routes ---------------------------------------------------------

    def do_POST(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/suppressions":
            self._post_suppression()
            return
        if path != "/jobs":
            self._send_json(404, {"error": "unknown endpoint %s" % self.path})
            return
        body = self._read_body()
        if body is None:
            return
        content_type = (self.headers.get("Content-Type") or "").strip()
        try:
            if content_type.startswith("multipart/form-data"):
                fields = _parse_multipart(body, content_type)
                if "log" not in fields:
                    raise BadLogError("multipart submission without a 'log' part")
                priority = int(fields.get("priority", ("", b"0"))[1] or 0)
                mode = (
                    fields.get("mode", ("", b""))[1].decode("utf-8", "replace")
                    or "full"
                )
                job, created = self.service.submit_log(
                    fields["log"][1], priority=priority, mode=mode
                )
            elif content_type.startswith("application/json") or not content_type:
                document = json.loads(body.decode("utf-8"))
                if "workload" not in document:
                    raise UnknownWorkloadError("submission without a workload name")
                job, created = self.service.submit_workload(
                    document["workload"],
                    seed=int(document.get("seed", 0)),
                    switch_probability=float(
                        document.get("switch_probability", 0.3)
                    ),
                    priority=int(document.get("priority", 0)),
                    mode=str(document.get("mode", "full")),
                )
            else:
                priority = int(self.headers.get("X-Repro-Priority") or 0)
                mode = (self.headers.get("X-Repro-Mode") or "full").strip()
                job, created = self.service.submit_log(
                    body, priority=priority, mode=mode
                )
        except QueueFull as error:
            self._send_json(429, {"error": str(error)})
            return
        except QueueClosed:
            self._send_json(503, {"error": "service shutting down"})
            return
        except (UnknownWorkloadError, BadLogError, ValueError) as error:
            self._send_json(400, {"error": str(error)})
            return
        self._submission_response(job, created)

    def do_GET(self) -> None:
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/healthz":
            self._send_json(200, self.service.health())
            return
        if path == "/metrics":
            self._send_json(200, self.service.metrics())
            return
        if path.startswith("/jobs/"):
            parts = path.split("/")
            # /jobs/<id> or /jobs/<id>/report
            if len(parts) == 3:
                self._get_job(parts[2])
                return
            if len(parts) == 4 and parts[3] == "report":
                self._get_report(parts[2])
                return
        if path == "/races":
            self._get_races(query)
            return
        if path.startswith("/races/"):
            parts = path.split("/")
            if len(parts) == 3:
                self._get_race(parts[2])
                return
        if path == "/suppressions":
            self._get_suppressions()
            return
        self._send_json(404, {"error": "unknown endpoint %s" % self.path})

    def do_DELETE(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path.startswith("/suppressions/"):
            self._delete_suppression(path.split("/")[2])
            return
        if not path.startswith("/jobs/"):
            self._send_json(404, {"error": "unknown endpoint %s" % self.path})
            return
        job_id = path.split("/")[2]
        job = self.service.cancel(job_id)
        if job is None:
            self._send_json(404, {"error": "no such job %s" % job_id})
            return
        status = 200 if job.state is JobState.CANCELLED else 409
        self._send_json(status, job.status_json())

    def _get_job(self, job_id: str) -> None:
        job = self.service.job(job_id)
        if job is None:
            self._send_json(404, {"error": "no such job %s" % job_id})
            return
        self._send_json(200, job.status_json())

    def _get_report(self, job_id: str) -> None:
        job = self.service.job(job_id)
        if job is None:
            self._send_json(404, {"error": "no such job %s" % job_id})
            return
        if job.state is JobState.DONE:
            body = self.service.report_bytes(job_id)
            assert body is not None
            self._send_bytes(200, body)
            return
        if job.state is JobState.FAILED:
            self._send_json(500, {"state": str(job.state), "error": job.error})
            return
        if job.state is JobState.CANCELLED:
            self._send_json(410, {"state": str(job.state)})
            return
        # Queued or running: not ready yet — poll again.
        self._send_json(202, {"state": str(job.state)})

    # -- fleet routes ---------------------------------------------------

    def _fleet_disabled(self, error: ValueError) -> None:
        self._send_json(404, {"error": str(error)})

    def _get_races(self, query: Dict) -> None:
        include_suppressed = (query.get("include_suppressed") or ["0"])[
            0
        ] not in ("0", "", "false")
        limit_text = (query.get("limit") or [""])[0]
        try:
            limit = int(limit_text) if limit_text else None
        except ValueError:
            self._send_json(400, {"error": "limit must be an integer"})
            return
        try:
            body = self.service.fleet_report_bytes(
                include_suppressed=include_suppressed, limit=limit
            )
        except ValueError as error:
            self._fleet_disabled(error)
            return
        self._send_bytes(200, body)

    def _get_race(self, record_id: str) -> None:
        try:
            document = self.service.fleet_record(record_id)
        except ValueError as error:
            self._fleet_disabled(error)
            return
        if document is None:
            self._send_json(404, {"error": "no such race %s" % record_id})
            return
        self._send_json(200, document)

    def _get_suppressions(self) -> None:
        try:
            rules = self.service.fleet_suppressions()
        except ValueError as error:
            self._fleet_disabled(error)
            return
        self._send_json(200, {"suppressions": rules})

    def _post_suppression(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            document = json.loads(body.decode("utf-8"))
            race = document["race"]
        except (ValueError, KeyError, UnicodeDecodeError):
            self._send_json(
                400, {"error": "suppression body needs at least {\"race\": ...}"}
            )
            return
        ttl = document.get("ttl_s")
        try:
            rule_id = self.service.suppress_race(
                str(race),
                digest=str(document.get("digest", "")),
                reason=str(document.get("reason", "")),
                created_by=str(document.get("by", "")),
                ttl_s=float(ttl) if ttl is not None else None,
            )
        except ValueError as error:
            if "fleet store not configured" in str(error):
                self._fleet_disabled(error)
            else:
                self._send_json(400, {"error": str(error)})
            return
        self._send_json(201, {"rule_id": rule_id})

    def _delete_suppression(self, rule_id: str) -> None:
        try:
            removed = self.service.unsuppress_race(rule_id)
        except ValueError as error:
            self._fleet_disabled(error)
            return
        if not removed:
            self._send_json(404, {"error": "no such suppression %s" % rule_id})
            return
        self._send_json(200, {"removed": True, "rule_id": rule_id})


class AnalysisHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisService`."""

    daemon_threads = True

    def __init__(self, service: AnalysisService, host: str, port: int):
        super().__init__((host, port), AnalysisRequestHandler)
        self.service = service
        self.verbose = False

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return "http://%s:%d" % (host, port)


def make_server(
    service: AnalysisService,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> AnalysisHTTPServer:
    """Bind (but do not start) the API server; ``port=0`` picks a free port."""
    config = service.config
    return AnalysisHTTPServer(
        service,
        config.host if host is None else host,
        config.port if port is None else port,
    )


def serve_forever(config: ServiceConfig, out=None) -> int:
    """Run a full service deployment until interrupted (the CLI verb).

    Starts the service (journal recovery + workers), binds the API,
    blocks in ``serve_forever``, and on ``KeyboardInterrupt`` — or
    SIGTERM, the supervisor's stop signal, which is mapped onto the same
    path — performs a graceful drain: no new admissions, queued work
    finishes, then the pool stops.  Returns the process exit code.
    """
    import signal
    import sys

    out = out if out is not None else sys.stdout

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # not the main thread (embedded in a test)
        pass
    service = AnalysisService(config).start()
    server = make_server(service)
    print("repro analysis service listening on %s" % server.url, file=out)
    print(
        "  shards=%d pool=%s queue=%d journal=%s cache=%s fleet=%s"
        % (
            config.effective_shards(),
            config.pool_size or "inline",
            config.queue_capacity,
            config.journal_path or "-",
            config.cache_dir or "-",
            config.fleet_dir or "-",
        ),
        file=out,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        print("shutting down: draining queue...", file=out)
    finally:
        # Stop accepting connections first, then drain the queue so
        # journaled work finishes before the process exits.
        threading.Thread(target=server.shutdown, daemon=True).start()
        service.shutdown(drain=True)
        server.server_close()
    print("shutdown complete", file=out)
    return 0
