"""Benchmark + reproduction of the Section 5.1 measurements.

The paper reports, for an IE browsing session: recording ~6x over native,
replay ~10x, happens-before analysis ~45x, classification ~280x, and logs
of ~0.8 bit/instruction raw (~0.3 zipped).  Absolute multipliers are
hardware- and implementation-bound; what must reproduce is:

* the cost ordering — native < recording < detect < classify — with
  classification clearly the most expensive stage, and
* the log-size methodology landing in the paper's bits-per-instruction
  regime for a realistic (compute-dominated) instruction mix.
"""

from repro.analysis import measure_overheads
from repro.analysis.overheads import measure_log_scaling
from repro.record import compression_stats, record_run
from repro.vm import Machine, RandomScheduler
from repro.workloads import overhead_workload

from conftest import write_artifact


def test_benchmark_native_execution(benchmark):
    workload = overhead_workload()
    program = workload.program()

    def native():
        return Machine(
            program, scheduler=RandomScheduler(seed=44, switch_probability=0.3), seed=44
        ).run()

    result = benchmark(native)
    assert result.global_steps > 10_000


def test_benchmark_recording(benchmark):
    workload = overhead_workload()
    program = workload.program()

    def record():
        return record_run(
            program,
            scheduler=RandomScheduler(seed=44, switch_probability=0.3),
            seed=44,
        )

    _, log = benchmark(record)
    assert log.total_instructions > 10_000


def test_overhead_report(results_dir, benchmark):
    report = benchmark.pedantic(
        lambda: measure_overheads(overhead_workload(), repeats=3),
        rounds=1,
        iterations=1,
    )
    # Cost ordering (the paper's qualitative claim).  detect vs replay can
    # tie within noise at these magnitudes; the load-bearing facts are
    # that recording costs more than native and classification dominates.
    assert report.record_overhead > 1.0
    assert report.classify_overhead > report.record_overhead
    assert report.classify_overhead >= report.detect_overhead
    assert report.classify_overhead > report.replay_overhead

    # Log sizes in the paper's regime for a compute-dominated mix.
    assert 0.1 <= report.log_stats.raw_bits_per_instruction <= 3.0
    assert (
        report.log_stats.compressed_bits_per_instruction
        < report.log_stats.raw_bits_per_instruction
    )

    write_artifact(results_dir, "sec51_overheads.txt", report.render())


def test_log_size_scales_linearly(results_dir, benchmark):
    """The paper's 0.8 bit/instruction is a *rate*: the recorder's cost
    per instruction stays flat as executions grow (their corpus covered
    33 billion instructions at a constant rate)."""
    scaling = benchmark.pedantic(measure_log_scaling, rounds=1, iterations=1)
    # Longest run covers 8x the shortest.
    assert scaling.points[-1].instructions > scaling.points[0].instructions * 6
    # The per-instruction cost band stays tight (within 50%).
    assert scaling.max_rate <= scaling.min_rate * 1.5
    # And in the paper's regime.
    assert 0.2 <= scaling.min_rate <= 2.0
    write_artifact(results_dir, "sec51_log_scaling.txt", scaling.render())
