"""Region-ordered global replay: rebuild shared-memory state from the logs.

iDNA replays one sequencing region at a time, choosing the not-yet-replayed
region with the smallest opening sequencer (Section 3.3).  This module does
the same walk to reconstruct, purely from the logs:

* the global memory image *just before* any given region starts (the
  virtual processor's live-in memory),
* the heap's freed-range set at that point (so an alternative-order replay
  can fault on use-after-free exactly like the paper's Figure 2 example),
* the program output in replay order.

The reconstruction is exact for correctly synchronized programs and a
best-effort linearization where data races exist — which is precisely why
racing operations need the both-orders classification rather than a single
replayed order.

Snapshots are **copy-on-write deltas**: the walk appends every store to a
versioned, writer-tagged history instead of copying the whole memory image
per region (the seed implementation's ``dict(image)`` was O(regions x
image) in both time and space).  A region's live-in is reconstructed
lazily, on first query, by reading the history at the region's opening
version; a *pair* snapshot is the same read with the earlier racing
region's stores filtered out — which also replaces the seed's full
re-walk per racing pair.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Set, Tuple

from ..isa.program import Program
from ..record.log import ReplayLog, SequencerRecord
from .errors import ReplayDivergence
from .events import ReplayedAccess, ThreadReplay
from .regions import SequencingRegion, regions_of_thread
from .thread_replayer import ThreadReplayer

#: Key identifying a region: (tid, region index within its thread).
RegionKey = Tuple[int, int]


def region_key(region: SequencingRegion) -> RegionKey:
    return (region.tid, region.index)


class VersionedImage:
    """Append-only, writer-tagged memory history with point-in-time reads.

    Every store is appended as ``(version, value, writer)`` under its
    address; ``writer`` is the region that performed it (``None`` for
    boundary sync/heap effects, which belong to no region).  Reconstruction
    at a version — optionally excluding some writers — is a bisect per
    address, so snapshots cost O(addresses touched) instead of O(full
    image) per region.
    """

    __slots__ = ("_history", "_version")

    def __init__(self, initial: Dict[int, int]):
        self._history: Dict[int, List[Tuple[int, int, Optional[RegionKey]]]] = {
            address: [(0, value, None)] for address, value in initial.items()
        }
        self._version = 0

    @property
    def version(self) -> int:
        return self._version

    def write(self, address: int, value: int, writer: Optional[RegionKey]) -> None:
        self._version += 1
        self._history.setdefault(address, []).append(
            (self._version, value, writer)
        )

    def reconstruct(
        self, version: int, excluded: Optional[Set[RegionKey]] = None
    ) -> Dict[int, int]:
        """The image at ``version``, skipping writes by ``excluded`` regions."""
        image: Dict[int, int] = {}
        for address, entries in self._history.items():
            # Last entry with entry_version <= version …
            position = bisect_right(entries, (version, float("inf"))) - 1
            # … then skip back over excluded writers.
            while position >= 0 and excluded and entries[position][2] in excluded:
                position -= 1
            if position >= 0:
                image[address] = entries[position][1]
        return image


class OrderedReplay:
    """Replays a whole log in sequencer order, snapshotting region live-ins."""

    def __init__(self, log: ReplayLog, program: Optional[Program] = None):
        self.log = log
        self.program = program if program is not None else log.reassemble_program()
        self.thread_replays: Dict[str, ThreadReplay] = {
            name: ThreadReplayer(self.program, log, name).run() for name in log.threads
        }
        self.regions: Dict[str, List[SequencingRegion]] = {
            name: regions_of_thread(thread_log)
            for name, thread_log in log.threads.items()
        }
        #: Version of the memory/freed history at each region's open (after
        #: the opening sequencer's boundary effects, before the region's
        #: own stores) — the delta-snapshot replacement for eager copies.
        self._region_versions: Dict[RegionKey, int] = {}
        self._snapshot_cache: Dict[RegionKey, Tuple[Dict[int, int], Dict[int, int]]] = {}
        self._pair_snapshots: Dict[
            Tuple[RegionKey, RegionKey], Tuple[Dict[int, int], Dict[int, int]]
        ] = {}
        self._image = VersionedImage(self.program.initial_memory())
        #: Freed-range history: (version, base, size) in walk order.
        self._freed_history: List[Tuple[int, int, int]] = []
        self._final_image: Dict[int, int] = {}
        self._final_freed: Dict[int, int] = {}
        #: Columnar access index, built once on first analysis query.
        self._access_index = None
        self._walk()

    # ------------------------------------------------------------------
    # The region-ordered walk.
    # ------------------------------------------------------------------

    def sequencers_with_regions(
        self,
    ) -> List[Tuple[SequencerRecord, str, Optional[SequencingRegion]]]:
        """Every sequencer in global timestamp order, paired with its thread
        name and the region it opens (``None`` for thread-end sequencers).
        The canonical linearization both the internal walk and the baseline
        detectors iterate."""
        entries: List[Tuple[SequencerRecord, str, Optional[SequencingRegion]]] = []
        for name, thread_log in self.log.threads.items():
            ordered = sorted(thread_log.sequencers, key=lambda s: s.timestamp)
            thread_regions = self.regions[name]
            for index, sequencer in enumerate(ordered):
                following = thread_regions[index] if index < len(thread_regions) else None
                entries.append((sequencer, name, following))
        entries.sort(key=lambda entry: entry[0].timestamp)
        return entries

    def _walk(self) -> None:
        image: Dict[int, int] = dict(self.program.initial_memory())
        freed: Dict[int, int] = {}
        live_allocations: Dict[int, int] = {}
        for sequencer, thread_name, following in self.sequencers_with_regions():
            replay = self.thread_replays[thread_name]
            if sequencer.thread_step >= 0 and sequencer.kind not in (
                "thread_start",
                "thread_end",
            ):
                self._apply_boundary_effects(
                    replay, sequencer.thread_step, image, freed, live_allocations
                )
            if following is not None:
                key = region_key(following)
                self._region_versions[key] = self._image.version
                if not following.is_empty:
                    for access in replay.accesses_in_steps(
                        following.start_step, following.end_step
                    ):
                        if access.is_write:
                            image[access.address] = access.value
                            self._image.write(access.address, access.value, key)
        self._final_image = image
        self._final_freed = freed

    def _apply_boundary_effects(
        self,
        replay: ThreadReplay,
        thread_step: int,
        image: Dict[int, int],
        freed: Dict[int, int],
        live_allocations: Dict[int, int],
    ) -> None:
        """Apply a boundary sync/syscall instruction's memory+heap effects."""
        for access in replay.writes_at_step(thread_step):
            image[access.address] = access.value
            self._image.write(access.address, access.value, None)
        for event in replay.heap_events_at_step(thread_step):
            if event.kind == "alloc":
                live_allocations[event.base] = event.size
                for offset in range(event.size):
                    image[event.base + offset] = 0
                    self._image.write(event.base + offset, 0, None)
            else:
                size = live_allocations.pop(event.base, 0)
                freed[event.base] = size
                self._freed_history.append((self._image.version, event.base, size))

    def _freed_at(self, version: int) -> Dict[int, int]:
        freed: Dict[int, int] = {}
        for freed_version, base, size in self._freed_history:
            if freed_version > version:
                break
            freed[base] = size
        return freed

    # ------------------------------------------------------------------
    # Queries used by the race analyses.
    # ------------------------------------------------------------------

    def all_regions(self) -> List[SequencingRegion]:
        """Every region of every thread, sorted by opening timestamp."""
        collected: List[SequencingRegion] = []
        for thread_regions in self.regions.values():
            collected.extend(thread_regions)
        collected.sort(key=lambda region: region.start_ts)
        return collected

    def region_for_step(
        self, thread_name: str, thread_step: int
    ) -> Optional[SequencingRegion]:
        for region in self.regions[thread_name]:
            if region.contains_step(thread_step):
                return region
        return None

    def region_snapshot(
        self, region: SequencingRegion
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """``(live-in memory image, freed ranges)`` just before ``region``.

        Reconstructed lazily from the write-delta history on first query;
        returned dicts are fresh copies — callers may mutate them.
        """
        key = region_key(region)
        if region.is_empty or key not in self._region_versions:
            raise ReplayDivergence("no snapshot for region %s (empty region?)" % region)
        if key not in self._snapshot_cache:
            version = self._region_versions[key]
            self._snapshot_cache[key] = (
                self._image.reconstruct(version),
                self._freed_at(version),
            )
        image, freed = self._snapshot_cache[key]
        return dict(image), dict(freed)

    def pair_snapshot(
        self, region_a: SequencingRegion, region_b: SequencingRegion
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Live-in state for replaying two racing regions together.

        The image reflects everything the replayed execution committed
        before the *later* of the two regions opened — boundary sync and
        heap effects plus every other region's stores — but **excludes**
        the two racing regions' own stores, since the virtual processor
        re-executes those.  (Stores of third-party regions that opened
        before the cutoff are applied in full; their intra-region timing
        is not recoverable from the logs, and the approximation is
        identical for both replay orders.)

        Built from the walk's write-delta history: one point-in-time read
        at the later region's opening version with the earlier region's
        stores filtered out, instead of the seed's full per-pair re-walk.

        Returned dicts are fresh copies — callers may mutate them.
        """
        key = (region_key(region_a), region_key(region_b))
        if key[0] > key[1]:
            key = (key[1], key[0])
        if key not in self._pair_snapshots:
            later = (
                region_a
                if region_a.start_ts >= region_b.start_ts
                else region_b
            )
            earlier = region_b if later is region_a else region_a
            version = self._region_versions[region_key(later)]
            self._pair_snapshots[key] = (
                self._image.reconstruct(version, excluded={region_key(earlier)}),
                self._freed_at(version),
            )
        image, freed = self._pair_snapshots[key]
        return dict(image), dict(freed)

    def access_index(self):
        """The execution's columnar :class:`AccessIndex`, built on first use.

        Shared by the happens-before detector and the classification
        engine: one pass over the thread replays feeds every later
        per-region or per-address query.
        """
        if self._access_index is None:
            # Local import: the index lives in the analysis layer, which
            # imports replay at module scope.
            from ..analysis.access_index import AccessIndex

            self._access_index = AccessIndex(self)
        return self._access_index

    def invalidate_access_index(self) -> None:
        """Drop the cached index (benchmarks re-time the build with this)."""
        self._access_index = None

    def region_accesses(self, region: SequencingRegion) -> List[ReplayedAccess]:
        """Plain (non-sync) memory accesses inside ``region``.

        Served as an O(1) slice of the columnar access index (the seed
        re-filtered the thread replay's access list on every call).
        """
        return self.access_index().region_accesses(region)

    def live_in_registers(self, region: SequencingRegion) -> Tuple[int, ...]:
        replay = self.thread_replays[region.thread_name]
        try:
            return replay.region_start_registers[region.start_step]
        except KeyError:
            raise ReplayDivergence(
                "no register snapshot at step %d of %s"
                % (region.start_step, region.thread_name)
            )

    def region_start_pc(self, region: SequencingRegion) -> int:
        replay = self.thread_replays[region.thread_name]
        try:
            return replay.region_start_pcs[region.start_step]
        except KeyError:
            raise ReplayDivergence(
                "no pc snapshot at step %d of %s"
                % (region.start_step, region.thread_name)
            )

    def final_memory(self) -> Dict[int, int]:
        """The end-of-replay memory image (exact for race-free executions)."""
        return dict(self._final_image)

    def output(self) -> List[Tuple[str, int]]:
        """Program output merged into global (sequencer) order."""
        entries: List[Tuple[int, str, int]] = []
        for name, thread_log in self.log.threads.items():
            replay = self.thread_replays[name]
            output_cursor = 0
            step_to_ts = {
                sequencer.thread_step: sequencer.timestamp
                for sequencer in thread_log.sequencers
                if sequencer.kind == "sys_print"
            }
            for step in sorted(step_to_ts):
                if output_cursor < len(replay.output):
                    _, value = replay.output[output_cursor]
                    entries.append((step_to_ts[step], name, value))
                    output_cursor += 1
        entries.sort()
        return [(name, value) for _, name, value in entries]
