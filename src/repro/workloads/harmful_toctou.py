"""Harmful time-of-check-to-time-of-use on a shared handle.

The owner publishes a heap handle under a lock (correct), but later frees
the object and only *afterwards* clears the published slot — and without
taking the lock.  The user checks the slot and dereferences the handle;
between its check and its use the owner can free the object, so the
recorded run can fault (use-after-free) and the alternative-order replay
exposes divergent control flow.  Ground truth: harmful.
"""

from __future__ import annotations

from .base import GroundTruth, RaceExpectation, Workload, render_template

_TOCTOU_TEMPLATE = """
.data
hslot_{v}: .word 0
hsink_{v}: .word 0
hmx_{v}:   .word 0
.thread hown_{v}
    li r1, 1
    sys_alloc r2, r1
    li r3, 88
    store r3, [r2]              ; initialise
    lock [hmx_{v}]
    store r2, [hslot_{v}]       ; publish, correctly locked
    unlock [hmx_{v}]
    li r9, {delay}
hdly:
    subi r9, r9, 1
    bnez r9, hdly
    sys_free r2                 ; free FIRST ...
    li r4, 0
    store r4, [hslot_{v}]       ; ... clear the slot second, and unlocked
    halt
.thread huse_{v}
    li r9, {udelay}
udly:
    subi r9, r9, 1
    bnez r9, udly
    lock [hmx_{v}]
    load r1, [hslot_{v}]        ; time-of-check (locked — but the owner's
    unlock [hmx_{v}]            ;  invalidation does not take the lock!)
    beqz r1, hskip
    load r2, [r1]               ; time-of-use — the object may be gone
    store r2, [hsink_{v}]
hskip:
    halt
"""


def toctou_handle(variant: int = 0, delay: int = 40, udelay: int = 40) -> Workload:
    """Check-then-use of a handle the owner frees before clearing."""
    v = "tc%d" % variant
    return Workload(
        name="toctou_handle_%s" % v,
        source=render_template(
            _TOCTOU_TEMPLATE, v=v, delay=str(delay), udelay=str(udelay)
        ),
        description=(
            "User checks a published handle then dereferences it; owner "
            "frees the object and clears the slot unlocked and in the wrong "
            "order."
        ),
        expectations=(
            RaceExpectation(
                truth=GroundTruth.HARMFUL,
                symbol="hslot_%s" % v,
                note="check-then-use races with the unlocked invalidation",
            ),
            RaceExpectation(
                truth=GroundTruth.HARMFUL,
                heap=True,
                note="dereference can land after the free",
            ),
        ),
        recommended_seeds=(18, 34),
        may_fault=True,
    )
