"""Mini instruction-set architecture: the substrate the recorder traces.

Public surface:

* :func:`assemble` — text to :class:`Program`
* :func:`disassemble` — :class:`Program` back to text
* the operand/instruction/program data model
"""

from .assembler import Assembler, assemble
from .disassembler import disassemble, disassemble_block, disassemble_instruction
from .errors import (
    AssemblyError,
    DuplicateSymbolError,
    IsaError,
    OperandError,
    ProgramValidationError,
    UndefinedSymbolError,
    UnknownOpcodeError,
)
from .instructions import OPCODES, Instruction, OpSpec
from .operands import (
    Imm,
    Mem,
    NUM_REGISTERS,
    Operand,
    Reg,
    WORD_MASK,
    to_signed,
    to_unsigned,
)
from .program import (
    DATA_BASE,
    HEAP_BASE,
    CodeBlock,
    DataItem,
    Program,
    StaticInstructionId,
)

__all__ = [
    "Assembler",
    "assemble",
    "disassemble",
    "disassemble_block",
    "disassemble_instruction",
    "AssemblyError",
    "DuplicateSymbolError",
    "IsaError",
    "OperandError",
    "ProgramValidationError",
    "UndefinedSymbolError",
    "UnknownOpcodeError",
    "OPCODES",
    "Instruction",
    "OpSpec",
    "Imm",
    "Mem",
    "NUM_REGISTERS",
    "Operand",
    "Reg",
    "WORD_MASK",
    "to_signed",
    "to_unsigned",
    "DATA_BASE",
    "HEAP_BASE",
    "CodeBlock",
    "DataItem",
    "Program",
    "StaticInstructionId",
]
