"""Unit tests for the race model and per-static-race aggregation."""

from repro.isa.program import StaticInstructionId
from repro.race.aggregate import (
    StaticRaceResult,
    aggregate_instances,
    merge_results,
)
from repro.race.model import RaceAccess, RaceInstance, static_race_key
from repro.race.outcomes import (
    Classification,
    ClassifiedInstance,
    InstanceOutcome,
)
from repro.replay.errors import ReplayFailureKind
from repro.replay.regions import SequencingRegion


def make_access(tid=0, step=0, block="blk", index=0, address=100, is_write=False):
    return RaceAccess(
        thread_name="t%d" % tid,
        tid=tid,
        thread_step=step,
        static_id=StaticInstructionId(block, index),
        address=address,
        value=0,
        is_write=is_write,
    )


def make_region(tid, start_ts=1, end_ts=5):
    return SequencingRegion(
        thread_name="t%d" % tid,
        tid=tid,
        index=0,
        start_step=0,
        end_step=10,
        start_ts=start_ts,
        end_ts=end_ts,
        start_kind="thread_start",
        end_kind="thread_end",
    )


def make_instance(index_a=0, index_b=1, address=100):
    return RaceInstance(
        access_a=make_access(tid=0, index=index_a, address=address, is_write=True),
        access_b=make_access(tid=1, index=index_b, address=address),
        region_a=make_region(0),
        region_b=make_region(1, start_ts=2),
    )


def classified(instance, outcome, execution_id="e1", failure=None):
    return ClassifiedInstance(
        instance=instance,
        outcome=outcome,
        original_first="t0",
        pre_value=0,
        failure_kind=failure,
        execution_id=execution_id,
    )


class TestStaticRaceKey:
    def test_canonical_order(self):
        a = StaticInstructionId("a", 5)
        b = StaticInstructionId("b", 1)
        assert static_race_key(a, b) == static_race_key(b, a) == (a, b)

    def test_same_instruction_pair(self):
        a = StaticInstructionId("a", 5)
        assert static_race_key(a, a) == (a, a)

    def test_instance_key(self):
        instance = make_instance(index_a=3, index_b=1)
        assert instance.static_key[0].index == 1
        assert instance.static_key[1].index == 3


class TestAggregation:
    def test_all_no_change_is_benign(self):
        instance = make_instance()
        results = aggregate_instances(
            [classified(instance, InstanceOutcome.NO_STATE_CHANGE)] * 3
        )
        result = results[instance.static_key]
        assert result.group is InstanceOutcome.NO_STATE_CHANGE
        assert result.classification is Classification.POTENTIALLY_BENIGN
        assert result.instance_count == 3
        assert result.flagged_instance_count == 0

    def test_any_state_change_dominates(self):
        instance = make_instance()
        results = aggregate_instances(
            [
                classified(instance, InstanceOutcome.NO_STATE_CHANGE),
                classified(instance, InstanceOutcome.REPLAY_FAILURE,
                           failure=ReplayFailureKind.STEP_LIMIT),
                classified(instance, InstanceOutcome.STATE_CHANGE),
            ]
        )
        result = results[instance.static_key]
        assert result.group is InstanceOutcome.STATE_CHANGE
        assert result.classification is Classification.POTENTIALLY_HARMFUL
        assert result.flagged_instance_count == 2

    def test_failure_without_state_change(self):
        instance = make_instance()
        results = aggregate_instances(
            [
                classified(instance, InstanceOutcome.NO_STATE_CHANGE),
                classified(
                    instance,
                    InstanceOutcome.REPLAY_FAILURE,
                    failure=ReplayFailureKind.UNKNOWN_ADDRESS,
                ),
            ]
        )
        assert results[instance.static_key].group is InstanceOutcome.REPLAY_FAILURE

    def test_distinct_static_races_kept_apart(self):
        one = make_instance(index_a=0, index_b=1)
        two = make_instance(index_a=0, index_b=2)
        results = aggregate_instances(
            [
                classified(one, InstanceOutcome.NO_STATE_CHANGE),
                classified(two, InstanceOutcome.STATE_CHANGE),
            ]
        )
        assert len(results) == 2

    def test_accumulate_into_existing(self):
        instance = make_instance()
        results = aggregate_instances(
            [classified(instance, InstanceOutcome.NO_STATE_CHANGE, "e1")]
        )
        aggregate_instances(
            [classified(instance, InstanceOutcome.STATE_CHANGE, "e2")], into=results
        )
        result = results[instance.static_key]
        assert result.instance_count == 2
        assert result.executions == {"e1", "e2"}
        assert result.classification is Classification.POTENTIALLY_HARMFUL

    def test_merge_results(self):
        instance = make_instance()
        first = aggregate_instances(
            [classified(instance, InstanceOutcome.NO_STATE_CHANGE, "e1")]
        )
        second = aggregate_instances(
            [classified(instance, InstanceOutcome.NO_STATE_CHANGE, "e2")]
        )
        merged = merge_results(first, second)
        assert merged[instance.static_key].instance_count == 2

    def test_describe_mentions_counts(self):
        instance = make_instance()
        results = aggregate_instances(
            [classified(instance, InstanceOutcome.NO_STATE_CHANGE)]
        )
        text = results[instance.static_key].describe()
        assert "1 instances" in text and "potentially-benign" in text


class TestReclassification:
    def test_later_execution_reclassifies(self):
        """The paper's coverage story: a race seen as benign in one test
        scenario is re-classified when another scenario exposes harm."""
        instance = make_instance()
        results = aggregate_instances(
            [classified(instance, InstanceOutcome.NO_STATE_CHANGE, "scenario1")]
        )
        key = instance.static_key
        assert results[key].classification is Classification.POTENTIALLY_BENIGN
        aggregate_instances(
            [classified(instance, InstanceOutcome.STATE_CHANGE, "scenario2")],
            into=results,
        )
        assert results[key].classification is Classification.POTENTIALLY_HARMFUL
