"""Deterministic multi-threaded virtual machine (the "hardware" iDNA traces).

Public surface: :class:`Machine` / :func:`run_program`, the scheduler
policies, the observer protocol, and the fault model.
"""

from .errors import (
    DeadlockError,
    FaultKind,
    MemoryFault,
    ScheduleError,
    StepLimitError,
    VMError,
)
from .machine import Machine, MachineResult, ThreadOutcome, run_program
from .memory import Memory
from .observers import (
    Observer,
    TraceAccess,
    TraceObserver,
    TraceSequencer,
    TraceStep,
)
from .registers import RegisterFile
from .scheduler import (
    ExplicitScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from .sync import LockTable
from .syscalls import Syscalls
from .thread import StepOutcome, ThreadState, ThreadStatus

__all__ = [
    "DeadlockError",
    "FaultKind",
    "MemoryFault",
    "ScheduleError",
    "StepLimitError",
    "VMError",
    "Machine",
    "MachineResult",
    "ThreadOutcome",
    "run_program",
    "Memory",
    "Observer",
    "TraceAccess",
    "TraceObserver",
    "TraceSequencer",
    "TraceStep",
    "RegisterFile",
    "ExplicitScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "LockTable",
    "Syscalls",
    "StepOutcome",
    "ThreadState",
    "ThreadStatus",
]
