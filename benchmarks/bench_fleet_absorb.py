"""Fleet-store scale: absorb throughput, ``GET /races`` latency, snapshot size.

Three numbers gate the persistent triage store at fleet scale:

* **absorb throughput** — verdicts/sec folding synthetic job reports
  (50 unique races each) into a locked on-disk store through the same
  journal-first path the service's absorb-on-done hook uses;
* **``GET /races`` latency** — a live inline service over the populated
  store, timed on ``GET /races?limit=100`` (ranking still scans every
  record; only the serialized head is bounded), at each store size;
* **snapshot sublinearity** — after compaction, re-submitting every
  execution three more times (the fleet's duplicate traffic) must leave
  the snapshot byte-identical: content-key dedup means the store grows
  with *unique* races, not with submitted executions.

Runs both under pytest (``pytest benchmarks/bench_fleet_absorb.py``)
and as a script::

    PYTHONPATH=src python benchmarks/bench_fleet_absorb.py --quick

Either way the numbers land in ``benchmarks/results/BENCH_fleet.json``
(``BENCH_fleet_quick.json`` under ``--quick``).
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time

from conftest import min_wall, scaling_main, write_result

from repro.fleet import FleetStore
from repro.service import AnalysisService, ServiceClient, ServiceConfig, make_server

#: Ladder of unique-race counts the store is grown to.
SIZES = (10_000, 100_000)
QUICK_SIZES = (1_000, 3_000)
RACES_PER_JOB = 50
#: How many times every execution is re-submitted after the first round.
DUPLICATE_ROUNDS = 3
#: Instance counts per synthetic race (drives the verdict totals).
_INSTANCES = {"no_state_change": 2, "state_change": 1, "replay_failure": 0}


def _report_for(job_index: int) -> dict:
    """One synthetic classification export with RACES_PER_JOB unique races."""
    base = job_index * RACES_PER_JOB
    races = []
    for offset in range(RACES_PER_JOB):
        ordinal = base + offset
        harmful = ordinal % 3 == 0
        races.append(
            {
                "race": "blk%d:1|blk%d:2" % (ordinal, ordinal),
                "classification": (
                    "potentially-harmful" if harmful else "potentially-benign"
                ),
                "instances": dict(_INSTANCES, total=sum(_INSTANCES.values())),
                "executions": ["exec-%d" % job_index],
                "scenarios": (
                    [{"batch_key": {"region_content": ["r%d" % ordinal, "s"]}}]
                    if harmful
                    else []
                ),
            }
        )
    return {"export_version": 1, "program": "fleetbench", "races": races}


def _absorb_round(store: FleetStore, jobs: int) -> None:
    for job_index in range(jobs):
        store.absorb_report(
            _report_for(job_index), "job-%d" % job_index, observed_at=1.0
        )


def _races_latency_s(store_dir: str, repeats: int) -> float:
    """Min wall time of ``GET /races?limit=100`` against a live service."""
    service = AnalysisService(
        ServiceConfig(pool_size=0, port=0, fleet_dir=store_dir)
    ).start(workers=False)
    server = make_server(service)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    client = ServiceClient(server.url, timeout_s=300.0)
    try:
        best = None
        for _ in range(max(repeats, 3)):
            start = time.perf_counter()
            body = client.races_bytes(limit=100)
            elapsed = time.perf_counter() - start
            assert body.startswith(b"{")
            best = elapsed if best is None else min(best, elapsed)
        return best
    finally:
        server.shutdown()
        service.shutdown(drain=False)


def _bench_size(unique_races: int, repeats: int) -> dict:
    jobs = unique_races // RACES_PER_JOB
    state = {}

    def prepare():
        if "dir" in state:
            shutil.rmtree(state["dir"], ignore_errors=True)
        state["dir"] = tempfile.mkdtemp(prefix="repro-fleet-bench-")
        state["store"] = FleetStore.open(state["dir"])

    absorb_s, _ = min_wall(
        repeats, lambda: _absorb_round(state["store"], jobs), prepare=prepare
    )
    store = state["store"]
    snapshot_bytes = store.compact()

    dup_started = time.perf_counter()
    for _ in range(DUPLICATE_ROUNDS):
        _absorb_round(store, jobs)
    duplicate_absorb_s = time.perf_counter() - dup_started
    snapshot_after = store.compact()
    counts = store.counts()

    latency_s = _races_latency_s(state["dir"], repeats)
    shutil.rmtree(state["dir"], ignore_errors=True)

    verdicts = unique_races * sum(_INSTANCES.values())
    submitted = jobs * (1 + DUPLICATE_ROUNDS)
    return {
        "unique_races": counts["unique_races"],
        "jobs": jobs,
        "submitted_executions": submitted,
        "verdicts": verdicts,
        "absorb_s": round(absorb_s, 6),
        "verdicts_per_s": round(verdicts / absorb_s, 1),
        "duplicate_absorb_s": round(duplicate_absorb_s, 6),
        "duplicate_skips_per_s": round(
            jobs * DUPLICATE_ROUNDS / duplicate_absorb_s, 1
        ),
        "races_latency_s": round(latency_s, 6),
        "snapshot_bytes": snapshot_bytes,
        "snapshot_bytes_after_duplicates": snapshot_after,
        "snapshot_bytes_per_unique_race": round(
            snapshot_after / max(counts["unique_races"], 1), 1
        ),
        "snapshot_bytes_per_submitted_execution": round(
            snapshot_after / submitted, 1
        ),
    }


def run_benchmark(sizes=SIZES, repeats: int = 3) -> dict:
    rows = [_bench_size(unique, repeats) for unique in sizes]
    smallest, largest = rows[0], rows[-1]
    return {
        "sizes": rows,
        "races_per_job": RACES_PER_JOB,
        "duplicate_rounds": DUPLICATE_ROUNDS,
        "verdicts_per_s": largest["verdicts_per_s"],
        "races_latency_s": largest["races_latency_s"],
        "snapshot_stable_under_duplicates": all(
            row["snapshot_bytes_after_duplicates"] <= row["snapshot_bytes"]
            for row in rows
        ),
        # Sublinear in submitted executions: (1 + DUPLICATE_ROUNDS)x the
        # submissions left per-unique-race bytes flat (within noise), so
        # the snapshot tracks unique races, never total traffic.
        "snapshot_sublinear": (
            largest["snapshot_bytes_per_unique_race"]
            <= smallest["snapshot_bytes_per_unique_race"] * 1.2
        ),
    }


def test_fleet_store_scales(results_dir):
    result = run_benchmark(sizes=SIZES, repeats=2)
    write_result(result, results_dir / "BENCH_fleet.json")
    assert result["snapshot_stable_under_duplicates"], (
        "duplicate executions grew the snapshot — content-key dedup broke"
    )
    assert result["snapshot_sublinear"]
    assert result["verdicts_per_s"] > 1_000, (
        "absorb throughput collapsed: %.0f verdicts/s"
        % result["verdicts_per_s"]
    )
    assert result["races_latency_s"] < 5.0


def main() -> int:
    return scaling_main(
        "fleet",
        run_benchmark,
        sizes=SIZES,
        quick_sizes=QUICK_SIZES,
        repeats=3,
        description=__doc__.split("\n")[0],
        summary=lambda result: (
            "absorb %.0f verdicts/s at %d unique races; GET /races (top 100) "
            "%.1f ms; snapshot stable under %dx duplicate traffic: %s"
            % (
                result["verdicts_per_s"],
                result["sizes"][-1]["unique_races"],
                1000 * result["races_latency_s"],
                result["duplicate_rounds"] + 1,
                result["snapshot_stable_under_duplicates"],
            )
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
