"""The replay-stage fast path must not change anything.

The predecoded thread replayer, the captured-columns handoff, and the
lazy region materialization are pure performance work: every observable
the analyses read from an :class:`OrderedReplay` — materialized thread
replays, region snapshots, program output, final memory, race instances
and verdicts — must be *identical* whether the replay ran through the
fast path (with or without captured columns) or the retained generic
reference interpreter.  These tests enforce that over the full paper
suite plus the clean controls.
"""

import dataclasses

from repro.analysis.perf import PerfStats
from repro.analysis.pipeline import analyze_execution
from repro.race.happens_before import find_races
from repro.record import record_run
from repro.replay.ordered_replay import OrderedReplay
from repro.vm import RandomScheduler
from repro.workloads.suite import clean_suite, paper_suite


def _record(execution):
    return record_run(
        execution.workload.program(),
        scheduler=RandomScheduler(
            seed=execution.seed, switch_probability=execution.switch_probability
        ),
        seed=execution.seed,
        max_steps=200_000,
    )


def _stripped(log):
    """The same log without its captured columns (the deserialized-JSON /
    suite-cache shape), forcing the replay-derived fallback."""
    clone = dataclasses.replace(log)
    clone.captured = None
    return clone


def _race_keys(ordered):
    return sorted(
        (
            str(instance.static_key[0]),
            str(instance.static_key[1]),
            instance.address,
            instance.access_a.tid,
            instance.access_a.thread_step,
            instance.access_b.tid,
            instance.access_b.thread_step,
        )
        for instance in find_races(ordered)
    )


def _region_observables(ordered):
    """Everything the classifier reads per region, fully materialized."""
    observables = []
    for region in ordered.all_regions():
        if region.is_empty:
            continue
        image, freed = ordered.region_snapshot(region)
        observables.append(
            (
                region.tid,
                region.index,
                ordered.region_start_pc(region),
                ordered.live_in_registers(region),
                sorted(image.items()),
                sorted(freed.items()),
            )
        )
    return observables


class TestFastVsGenericReplay:
    def test_thread_replays_byte_identical(self):
        """Fast vs generic replay of every thread of every suite
        execution: the materialized replays are equal, snapshots and all."""
        for execution in list(paper_suite()) + list(clean_suite()):
            _, log = _record(execution)
            program = execution.workload.program()
            fast = OrderedReplay(log, program, fast_path=True)
            generic = OrderedReplay(_stripped(log), program, fast_path=False)
            for name in log.threads:
                fast_replay = fast.thread_replays[name].materialized()
                generic_replay = generic.thread_replays[name].materialized()
                assert fast_replay == generic_replay, (
                    execution.execution_id,
                    name,
                )

    def test_ordered_observables_identical(self):
        """Output, final memory, region snapshots and race sets agree
        between the fast and generic paths on every suite execution."""
        for execution in list(paper_suite()) + list(clean_suite()):
            _, log = _record(execution)
            program = execution.workload.program()
            fast = OrderedReplay(log, program, fast_path=True)
            generic = OrderedReplay(_stripped(log), program, fast_path=False)
            assert fast.output() == generic.output(), execution.execution_id
            assert fast.final_memory() == generic.final_memory()
            assert _region_observables(fast) == _region_observables(generic)
            assert _race_keys(fast) == _race_keys(generic), execution.execution_id

    def test_verdicts_identical(self):
        """End-to-end analysis with the fast path off reproduces every
        instance and every verdict of the default path."""
        for execution in paper_suite()[:8]:
            default = analyze_execution(execution)
            generic = analyze_execution(execution, replay_fast_path=False)

            def instance_keys(analysis):
                return [
                    (
                        i.static_key,
                        i.address,
                        i.access_a.tid,
                        i.access_a.thread_step,
                        i.access_b.tid,
                        i.access_b.thread_step,
                    )
                    for i in analysis.instances
                ]

            assert instance_keys(generic) == instance_keys(default)
            assert [
                (e.outcome, e.original_first, e.pre_value, e.failure_kind)
                for e in generic.classified
            ] == [
                (e.outcome, e.original_first, e.pre_value, e.failure_kind)
                for e in default.classified
            ]


class TestCapturedHandoff:
    def test_captured_matches_replay_derived_fallback(self):
        """Fast replay fed by captured columns equals fast replay forced
        through its own access columns (captured stripped) — same index,
        same races, same walk results."""
        for execution in paper_suite():
            _, log = _record(execution)
            assert log.captured is not None
            program = execution.workload.program()

            with_capture_perf = PerfStats()
            with_capture = OrderedReplay(
                log, program, fast_path=True, perf=with_capture_perf
            )
            without_capture = OrderedReplay(_stripped(log), program, fast_path=True)

            assert with_capture_perf.replay_captured_handoffs == 1
            # The handoff never interprets a thread for the walk/index.
            assert with_capture_perf.replay_threads_fast == 0

            index_a = with_capture.access_index()
            index_b = without_capture.access_index()
            assert list(index_a.steps) == list(index_b.steps)
            assert list(index_a.addresses) == list(index_b.addresses)
            assert list(index_a.values) == list(index_b.values)
            assert bytes(index_a.write_flags) == bytes(index_b.write_flags)
            assert list(index_a.region_of) == list(index_b.region_of)
            assert index_a.postings == index_b.postings

            assert with_capture.output() == without_capture.output()
            assert with_capture.final_memory() == without_capture.final_memory()
            assert _race_keys(with_capture) == _race_keys(without_capture)

    def test_binary_round_trip_preserves_handoff(self):
        """A log decoded from the v3 binary container still feeds the
        walk from captured columns, with identical analysis results."""
        from repro.record.binary_format import decode_log, encode_log

        execution = paper_suite()[0]
        _, log = _record(execution)
        program = execution.workload.program()
        round_tripped = decode_log(encode_log(log))
        assert round_tripped.captured is not None

        perf = PerfStats()
        from_disk = OrderedReplay(round_tripped, program, fast_path=True, perf=perf)
        fresh = OrderedReplay(log, program, fast_path=True)
        assert perf.replay_captured_handoffs == 1
        assert from_disk.output() == fresh.output()
        assert from_disk.final_memory() == fresh.final_memory()
        assert _race_keys(from_disk) == _race_keys(fresh)
