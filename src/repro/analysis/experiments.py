"""Experiment registry: one entry per paper table/figure plus ablations.

Each experiment is a named callable returning a renderable result; the
benchmark harness and the examples both go through this registry, so
``EXPERIMENTS.md`` and ``pytest benchmarks/`` always agree on what each
experiment id means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..race.classifier import ClassifierConfig
from ..race.lockset import lockset_warnings
from ..race.vector_clock import VectorClockDetector
from ..workloads.suite import clean_suite, overhead_workload, paper_suite
from .figures import FigureSeries, build_figure3, build_figure4, build_figure5
from .overheads import OverheadReport, measure_overheads
from .pipeline import SuiteAnalysis, analyze_suite
from .tables import Table1, Table2, build_table1, build_table2


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata for one experiment."""

    experiment_id: str
    paper_artifact: str
    description: str


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec(
            "table1",
            "Table 1",
            "Classification of unique races: replay outcome × manual triage.",
        ),
        ExperimentSpec(
            "table2",
            "Table 2",
            "Benign races by reason category (ground truth + heuristic).",
        ),
        ExperimentSpec(
            "figure3",
            "Figure 3",
            "Instances per Potentially-Benign race.",
        ),
        ExperimentSpec(
            "figure4",
            "Figure 4",
            "Instances per Real-Harmful race, with flagged counts.",
        ),
        ExperimentSpec(
            "figure5",
            "Figure 5",
            "Instances per misclassified Real-Benign race.",
        ),
        ExperimentSpec(
            "sec51",
            "Section 5.1",
            "Log sizes and record/replay/analysis overheads.",
        ),
        ExperimentSpec(
            "ablation_detectors",
            "Sections 2-3 discussion",
            "Region-HB vs precise vector-clock vs Eraser lockset coverage.",
        ),
        ExperimentSpec(
            "ablation_continue",
            "Section 4.2.1 future work",
            "Effect of continuing through unrecorded control flow.",
        ),
        ExperimentSpec(
            "ablation_instances",
            "Section 4.3 discussion",
            "Classification confidence versus number of instances analysed.",
        ),
    ]
}


def run_suite(
    classifier_config: Optional[ClassifierConfig] = None,
    jobs: int = 1,
    memoize: bool = False,
    cache_dir=None,
) -> SuiteAnalysis:
    """Analyse the full paper suite (the input to most experiments).

    ``jobs``/``memoize`` route through the classification engine (process
    pool + verdict cache); ``cache_dir`` enables the content-addressed
    record cache.  Verdicts are identical either way.
    """
    return analyze_suite(
        paper_suite(),
        classifier_config=classifier_config,
        jobs=jobs,
        memoize=memoize,
        cache_dir=cache_dir,
    )


def run_table1(suite: Optional[SuiteAnalysis] = None) -> Table1:
    return build_table1(suite or run_suite())


def run_table2(suite: Optional[SuiteAnalysis] = None) -> Table2:
    return build_table2(suite or run_suite())


def run_figure3(suite: Optional[SuiteAnalysis] = None) -> FigureSeries:
    return build_figure3(suite or run_suite())


def run_figure4(suite: Optional[SuiteAnalysis] = None) -> FigureSeries:
    return build_figure4(suite or run_suite())


def run_figure5(suite: Optional[SuiteAnalysis] = None) -> FigureSeries:
    return build_figure5(suite or run_suite())


def run_sec51(repeats: int = 3) -> OverheadReport:
    return measure_overheads(overhead_workload(), repeats=repeats)


@dataclass
class DetectorComparison:
    """Ablation A1: three detectors over the same executions."""

    region_hb_unique: int
    vector_clock_unique: int
    lockset_warnings: int
    lockset_false_positive_addresses: int

    def render(self) -> str:
        return "\n".join(
            [
                "Detector comparison over the paper suite:",
                "  region-overlap happens-before: %d unique races (0 false positives"
                " by construction)" % self.region_hb_unique,
                "  precise vector-clock HB:       %d unique races"
                % self.vector_clock_unique,
                "  Eraser lockset:                %d warnings, %d on addresses no"
                " HB analysis races on (false positives)"
                % (self.lockset_warnings, self.lockset_false_positive_addresses),
            ]
        )


def run_ablation_detectors(suite: Optional[SuiteAnalysis] = None) -> DetectorComparison:
    """Compare the three detectors' coverage.

    Runs over the racy paper suite *plus* the correctly synchronized
    controls: the controls carry the lockset algorithm's false positives
    (e.g. the atomic-flag handoff, which is happens-before ordered without
    any lock ever being held).
    """
    suite = suite or run_suite()
    region_keys = set(suite.results)
    vc_keys = set()
    warnings_total = 0
    false_positive_addresses = 0
    analyses = list(suite.executions) + [
        analyze_suite([execution]).executions[0] for execution in clean_suite()
    ]
    for analysis in analyses:
        detector = VectorClockDetector(analysis.ordered)
        detector.detect()
        vc_keys |= detector.unique_static_races()
        warnings = lockset_warnings(analysis.ordered)
        warnings_total += len(warnings)
        raced_addresses = {
            instance.address for instance in analysis.instances
        }
        for warning in warnings:
            if warning.address not in raced_addresses:
                false_positive_addresses += 1
    return DetectorComparison(
        region_hb_unique=len(region_keys),
        vector_clock_unique=len(vc_keys),
        lockset_warnings=warnings_total,
        lockset_false_positive_addresses=false_positive_addresses,
    )


@dataclass
class ContinueAblation:
    """Ablation A2: the §4.2.1 continue-through-control-flow extension."""

    baseline: Table1
    extended: Table1

    @property
    def replay_failures_recovered(self) -> int:
        return (
            self.baseline.rows_failure_total() - self.extended.rows_failure_total()
        )

    def render(self) -> str:
        return "\n".join(
            [
                "Baseline (replay failures on unrecorded control flow):",
                self.baseline.render(),
                "",
                "Extended (continue through unrecorded control flow):",
                self.extended.render(),
            ]
        )


def _rows_failure_total(table: Table1) -> int:
    from ..race.outcomes import InstanceOutcome

    return table.rows[InstanceOutcome.REPLAY_FAILURE].total


# Attach a tiny helper so ContinueAblation can compute its delta without
# importing outcome enums at call sites.
Table1.rows_failure_total = _rows_failure_total  # type: ignore[attr-defined]


def run_ablation_continue() -> ContinueAblation:
    baseline = build_table1(run_suite())
    extended = build_table1(
        run_suite(ClassifierConfig(allow_unrecorded_control_flow=True))
    )
    return ContinueAblation(baseline=baseline, extended=extended)


@dataclass
class InstanceSweepPoint:
    instances_analysed: int
    harmful_races_caught: int
    harmful_races_total: int

    @property
    def recall(self) -> float:
        if not self.harmful_races_total:
            return 0.0
        return self.harmful_races_caught / self.harmful_races_total


@dataclass
class CoveragePoint:
    """Harmful-race discovery after analysing an execution prefix."""

    executions_analysed: int
    harmful_races_observed: int
    harmful_races_flagged: int
    harmful_races_total: int


@dataclass
class InstanceSweep:
    """Ablation A3: confidence/coverage vs analysis effort.

    ``points`` re-aggregate each harmful race from only its first N
    instances (§4.3's confidence argument); ``coverage`` replays the
    suite's executions in order and tracks how many harmful races have
    been observed and flagged so far ("the more the number of test cases
    analyzed, the more likely harmful data races will be discovered").
    """

    points: List[InstanceSweepPoint]
    coverage: List[CoveragePoint]

    def render(self) -> str:
        lines = ["Harmful-race recall vs instances analysed per race:"]
        for point in self.points:
            lines.append(
                "  first %4d instance(s): %d/%d harmful races caught (%.0f%%)"
                % (
                    point.instances_analysed,
                    point.harmful_races_caught,
                    point.harmful_races_total,
                    100 * point.recall,
                )
            )
        lines.append("")
        lines.append("Harmful-race discovery vs executions analysed:")
        for cov in self.coverage:
            lines.append(
                "  after %2d execution(s): %d/%d observed, %d flagged"
                % (
                    cov.executions_analysed,
                    cov.harmful_races_observed,
                    cov.harmful_races_total,
                    cov.harmful_races_flagged,
                )
            )
        return "\n".join(lines)


def run_ablation_instances(
    suite: Optional[SuiteAnalysis] = None,
    budgets: tuple = (1, 2, 4, 16, 64),
) -> InstanceSweep:
    """Confidence vs instances per race, and coverage vs executions."""
    from ..race.aggregate import StaticRaceResult
    from ..race.outcomes import Classification
    from ..workloads.base import GroundTruth

    suite = suite or run_suite()
    harmful_keys = [
        key for key, truth in suite.truths.items() if truth is GroundTruth.HARMFUL
    ]

    points = []
    for budget in budgets:
        caught = 0
        for key in harmful_keys:
            limited = StaticRaceResult(key=key)
            for entry in suite.results[key].instances[:budget]:
                limited.add(entry)
            if limited.classification is Classification.POTENTIALLY_HARMFUL:
                caught += 1
        points.append(
            InstanceSweepPoint(
                instances_analysed=budget,
                harmful_races_caught=caught,
                harmful_races_total=len(harmful_keys),
            )
        )

    coverage = []
    observed: set = set()
    flagged: set = set()
    for position, analysis in enumerate(suite.executions, start=1):
        for entry in analysis.classified:
            key = entry.instance.static_key
            if key in harmful_keys:
                observed.add(key)
                if not entry.is_benign_evidence:
                    flagged.add(key)
        coverage.append(
            CoveragePoint(
                executions_analysed=position,
                harmful_races_observed=len(observed),
                harmful_races_flagged=len(flagged),
                harmful_races_total=len(harmful_keys),
            )
        )
    return InstanceSweep(points=points, coverage=coverage)
