"""The analysis service facade: store + queue + pool behind one object.

:class:`AnalysisService` is what the HTTP layer (and tests) talk to.  It
owns the journaled :class:`~repro.service.jobs.JobStore`, the bounded
sharded :class:`~repro.service.queue.BoundedJobQueue` and the
:class:`~repro.service.workers.ShardedWorkerPool`, and implements the
admission protocol:

1. compute the job's content key (the SuiteCache content hash for
   workload jobs);
2. if a live job with that key exists — queued, running, or done —
   return it (idempotent submission, no queue slot consumed);
3. otherwise reserve a queue slot (*this* is where backpressure
   rejects), then journal the job.

On :meth:`start`, jobs recovered from the journal (queued at crash time,
or running — re-queued by the store) are re-enqueued before workers
begin, so a restarted server picks up exactly where it died without
duplicating finished work.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from ..record.serialization import load_log_bytes
from ..workloads.suite import all_workloads
from .config import ServiceConfig
from .jobs import Job, JobSpec, JobState, JobStore, content_key_for
from .queue import BoundedJobQueue
from .workers import ShardedWorkerPool


class UnknownWorkloadError(ValueError):
    """The submitted workload name is not in the suite registry."""


class BadLogError(ValueError):
    """The uploaded bytes do not decode as a replay log."""


class AnalysisService:
    """One deployment of the replay-analysis service."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        runner: Optional[Callable[[dict], dict]] = None,
    ):
        self.config = config or ServiceConfig()
        if self.config.journal_path:
            self.store = JobStore.open(self.config.journal_path)
        else:
            self.store = JobStore()
        self.queue = BoundedJobQueue(
            self.config.queue_capacity, self.config.effective_shards()
        )
        self.pool = ShardedWorkerPool(
            self.config, self.store, self.queue, runner=runner
        )
        self.workloads = all_workloads()
        self.started_at = time.monotonic()
        self.recovered_jobs = 0
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def start(self, workers: bool = True) -> "AnalysisService":
        """Re-enqueue journal-recovered jobs, then start the pool.

        ``workers=False`` brings the service up without dispatch threads
        — submissions queue but nothing runs (tests use this to pin jobs
        in the queue; a later ``start()`` call can attach workers).
        """
        if not self._started:
            for job in self.store.pending():
                self.queue.put(
                    job.job_id,
                    self.shard_for(job.content_key),
                    priority=job.priority,
                    force=True,
                )
                if job.recovered:
                    self.recovered_jobs += 1
            self._started = True
        if workers:
            self.pool.start()
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        self.pool.shutdown(drain=drain, timeout=timeout)
        self.store.close()

    # -- submission ------------------------------------------------------

    def shard_for(self, content_key: str) -> int:
        return int(content_key[:8], 16) % self.config.effective_shards()

    def _admit(self, spec: JobSpec, content_key: str, priority: int) -> Tuple[Job, bool]:
        existing = self.store.by_content_key(content_key)
        if existing is not None and existing.state not in (
            JobState.FAILED,
            JobState.CANCELLED,
        ):
            return existing, False
        # Reserve the queue slot first: if the queue rejects, no job is
        # journaled and the client sees pure backpressure (429).
        self.queue.put(
            "j-%s" % content_key[:16],
            self.shard_for(content_key),
            priority=priority,
        )
        return self.store.submit(spec, content_key, priority=priority)

    def submit_workload(
        self,
        name: str,
        seed: int = 0,
        switch_probability: float = 0.3,
        priority: int = 0,
    ) -> Tuple[Job, bool]:
        """Submit a record-and-analyse job for a named suite workload."""
        workload = self.workloads.get(name)
        if workload is None:
            raise UnknownWorkloadError(
                "unknown workload %r (have: %s)"
                % (name, ", ".join(sorted(self.workloads)))
            )
        spec = JobSpec.for_workload(
            name, seed=seed, switch_probability=switch_probability
        )
        key = content_key_for(
            spec,
            workload,
            self.config.max_steps,
            self.config.capture_global_order,
            self.config.max_pairs_per_location,
        )
        return self._admit(spec, key, priority)

    def submit_log(self, data: bytes, priority: int = 0) -> Tuple[Job, bool]:
        """Submit an uploaded replay log (binary container or JSON)."""
        try:
            load_log_bytes(data)
        except Exception as error:  # noqa: BLE001 - any decode failure
            raise BadLogError("undecodable replay log: %s" % error)
        spec = JobSpec.for_log(data)
        key = content_key_for(
            spec,
            None,
            self.config.max_steps,
            self.config.capture_global_order,
            self.config.max_pairs_per_location,
        )
        return self._admit(spec, key, priority)

    # -- queries ---------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        return self.store.get(job_id)

    def report_bytes(self, job_id: str) -> Optional[bytes]:
        """The canonical rendering of a finished job's report."""
        from ..analysis.pipeline import render_report

        job = self.store.get(job_id)
        if job is None or job.report is None:
            return None
        return render_report(job.report)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a queued job; running/finished jobs are left alone.

        Returns the job (whatever its state), or None if unknown.  The
        queue entry is lazily discarded: the shard loop skips any popped
        job whose state is no longer ``queued``.
        """
        with self.store._lock:
            job = self.store.get(job_id)
            if job is None:
                return None
            if job.state is JobState.QUEUED:
                self.store.mark_cancelled(job_id)
            return job

    def metrics(self) -> Dict:
        """The ``GET /metrics`` document (field reference in docs)."""
        uptime = max(time.monotonic() - self.started_at, 1e-9)
        completed = self.pool.completed
        perf = self.pool.perf
        return {
            "uptime_s": round(uptime, 3),
            "queue": {
                "depth": self.queue.depth(),
                "capacity": self.queue.capacity,
                "rejections": self.queue.rejections,
            },
            "jobs": self.store.counts(),
            "recovered_jobs": self.recovered_jobs,
            "throughput_jobs_per_s": round(completed / uptime, 4),
            "pool": self.pool.metrics_json(),
            "verdict_cache_hit_rate": round(perf.cache_hit_rate, 4),
            "record_cache_hit_rate": round(perf.record_cache_hit_rate, 4),
            "perf": perf.to_json(),
            "latency_histograms_s": self.pool.histograms.to_json(),
        }

    def health(self) -> Dict:
        return {
            "status": "ok",
            "uptime_s": round(max(time.monotonic() - self.started_at, 0.0), 3),
            "shards": self.config.effective_shards(),
            "mode": self.pool.mode,
        }
