#!/usr/bin/env python
"""Compare the three detector families the paper discusses (Section 2).

* **Region-overlap happens-before** (the paper's choice): zero false
  positives by construction, but the total sequencer order is
  conservative — unrelated synchronization can hide true races.
* **Precise vector-clock happens-before**: ordering edges only along the
  same synchronization object; finds races the conservative analysis
  misses.
* **Eraser-style lockset**: a heuristic — it warns about every shared,
  written, lock-free location, including perfectly ordered ones (false
  positives).

Run:  python examples/detector_comparison.py
"""

from repro import (
    OrderedReplay,
    RandomScheduler,
    assemble,
    find_races,
    lockset_warnings,
    record_run,
    vector_clock_races,
)
from repro.vm import ExplicitScheduler

CASES = {
    "racy read-modify-write (a true bug)": (
        ".data\nx: .word 0\n.thread a b\n    load r1, [x]\n"
        "    addi r1, r1, 1\n    store r1, [x]\n    halt\n",
        None,
    ),
    "mutex-protected counter (correct)": (
        ".data\nx: .word 0\nm: .word 0\n.thread a b\n    lock [m]\n"
        "    load r1, [x]\n    addi r1, r1, 1\n    store r1, [x]\n"
        "    unlock [m]\n    halt\n",
        None,
    ),
    "atomic-flag handoff (correct, but lock-free)": (
        ".data\nd: .word 0\nf: .word 0\n"
        ".thread w\n    li r1, 9\n    store r1, [d]\n    li r2, 1\n"
        "    atom_xchg r3, [f], r2\n    halt\n"
        ".thread r\n    li r2, 0\nspin:\n    atom_add r1, [f], r2\n"
        "    beqz r1, spin\n    load r3, [d]\n    li r4, 0\n"
        "    store r4, [d]\n    halt\n",
        ExplicitScheduler([0] * 12 + [1] * 24),
    ),
    "racy x, serialized by unrelated locks (hidden from regions)": (
        ".data\nx: .word 0\nm1: .word 0\nm2: .word 0\n"
        ".thread a\n    load r1, [x]\n    addi r1, r1, 1\n    store r1, [x]\n"
        "    lock [m1]\n    unlock [m1]\n    halt\n"
        ".thread b\n    lock [m2]\n    unlock [m2]\n    load r1, [x]\n"
        "    addi r1, r1, 1\n    store r1, [x]\n    halt\n",
        ExplicitScheduler([0] * 10 + [1] * 12),
    ),
}


def main() -> None:
    header = "%-55s %10s %10s %10s" % ("case", "region-HB", "vector-HB", "lockset")
    print(header)
    print("-" * len(header))
    for name, (source, scheduler) in CASES.items():
        program = assemble(source, name="cmp")
        _, log = record_run(
            program,
            scheduler=scheduler or RandomScheduler(seed=3, switch_probability=0.4),
            seed=3,
        )
        ordered = OrderedReplay(log, program)
        region = len({i.static_key for i in find_races(ordered)})
        vector = len({r.static_key for r in vector_clock_races(ordered)})
        lockset = len(lockset_warnings(ordered))
        print("%-55s %10d %10d %10d" % (name, region, vector, lockset))

    print(
        "\nReading the table:\n"
        "  row 2: all three agree a locked counter is clean;\n"
        "  row 3: lockset raises a FALSE POSITIVE on the happens-before-\n"
        "         ordered handoff (no lock is ever held) — the reason the\n"
        "         paper chose a happens-before detector;\n"
        "  row 4: the conservative sequencer total order serializes the\n"
        "         two threads through UNRELATED locks and hides the race,\n"
        "         which the precise vector-clock analysis still reports —\n"
        "         the coverage trade-off of Section 2.2.2."
    )


if __name__ == "__main__":
    main()
