"""Replay-stage speedup: the generic reference replayer vs the fast path.

The seed replay stage re-interpreted every thread eagerly — one Python
dispatch per retired instruction, one :class:`ReplayedAccess` object per
memory event, one full register-tuple snapshot per region boundary and
per access — before the ordered walk or the access index could run.  The
fast path predecodes each block once (:mod:`repro.isa.predecode`), feeds
the ordered walk and the columnar :class:`AccessIndex` straight from the
recorder's captured columns (no instruction is re-interpreted at all on
fresh recordings and v3 binary round trips), and materializes access
objects and register snapshots lazily, only where an analysis actually
looks.  This benchmark scales compute-heavy racy loop workloads, records
each once, times the full replay stage (ordered replay construction plus
access-index build) through both paths, asserts every observable is
identical, and gates on the fast path being >=2x faster on the largest
workload.

Runs both under pytest (``pytest benchmarks/bench_replay_scaling.py``)
and as a script::

    PYTHONPATH=src python benchmarks/bench_replay_scaling.py --quick

Either way the measured numbers land in
``benchmarks/results/BENCH_replay.json``.  ``--quick`` (used by CI) keeps
the equality assertions but runs single repeats on the smaller sizes —
the equivalence gate, not the timing gate.
"""

from __future__ import annotations

import dataclasses
import gc
import time

from conftest import (
    INTERP_QUICK_SIZES,
    INTERP_SIZES,
    SCALING_SEED,
    scaling_main,
    write_result,
)
from repro.isa import assemble
from repro.race.happens_before import find_races
from repro.record import record_run
from repro.replay.ordered_replay import OrderedReplay
from repro.vm import RandomScheduler

#: Four threads in two independent racy pairs (same shape as the record
#: benchmark): straight-line ALU work per iteration, and a per-iteration
#: syscall so sequencers — and hence regions, the unit the replay stage
#: walks — scale with the iteration count.
SOURCE_TEMPLATE = """
.data
x: .word 0
y: .word 0
.thread a b
    li r1, {iters}
al:
    load r2, [x]
    addi r2, r2, 1
    muli r3, r2, 7
    xori r3, r3, 21
    andi r3, r3, 1023
    store r2, [x]
    sys_rand r4, 3
    subi r1, r1, 1
    bnez r1, al
    halt
.thread c d
    li r1, {iters}
cl:
    load r2, [y]
    addi r2, r2, 2
    muli r3, r2, 5
    ori r3, r3, 9
    shri r3, r3, 2
    store r2, [y]
    sys_rand r4, 3
    subi r1, r1, 1
    bnez r1, cl
    halt
"""

SIZES = INTERP_SIZES
QUICK_SIZES = INTERP_QUICK_SIZES
SEED = SCALING_SEED
MAX_STEPS = 2_000_000


def _recorded(iters: int):
    """One recording per size, shared by both timed paths."""
    program = assemble(
        SOURCE_TEMPLATE.format(iters=iters), name="repscale%d" % iters
    )
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=SEED, switch_probability=0.3),
        seed=SEED,
        max_steps=MAX_STEPS,
    )
    if log.captured is None:
        raise AssertionError("recording lost its captured columns")
    stripped = dataclasses.replace(log)
    stripped.captured = None
    return program, log, stripped


def _time_replay_stage(log, program, fast_path: bool):
    """Wall time of the full replay stage: ordered replay construction
    (walk included) plus the access-index build.  The garbage collector
    stays out of the timed window; a fresh OrderedReplay per run keeps
    its internal caches cold."""
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        ordered = OrderedReplay(log, program, fast_path=fast_path)
        ordered.access_index()
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, ordered


def _measure_pair(log, stripped, program, repeats: int):
    """Min-of-``repeats`` for both paths, interleaved so machine-load
    drift lands on both sides rather than biasing one."""
    fast_s = slow_s = None
    fast = slow = None
    for _ in range(repeats):
        elapsed, fast = _time_replay_stage(log, program, True)
        fast_s = elapsed if fast_s is None else min(fast_s, elapsed)
        elapsed, slow = _time_replay_stage(stripped, program, False)
        slow_s = elapsed if slow_s is None else min(slow_s, elapsed)
    return fast_s, fast, slow_s, slow


def _race_keys(ordered):
    return sorted(
        (
            str(instance.static_key[0]),
            str(instance.static_key[1]),
            instance.address,
            instance.access_a.tid,
            instance.access_a.thread_step,
            instance.access_b.tid,
            instance.access_b.thread_step,
        )
        for instance in find_races(ordered)
    )


def _assert_equivalent(fast, slow, iters: int) -> None:
    """Every observable the analyses read must agree (checked after the
    timed window so the comparison work never pollutes the numbers)."""
    index_fast, index_slow = fast.access_index(), slow.access_index()
    if (
        list(index_fast.steps) != list(index_slow.steps)
        or list(index_fast.addresses) != list(index_slow.addresses)
        or list(index_fast.values) != list(index_slow.values)
        or bytes(index_fast.write_flags) != bytes(index_slow.write_flags)
        or list(index_fast.region_of) != list(index_slow.region_of)
        or index_fast.postings != index_slow.postings
    ):
        raise AssertionError("access index diverges at iters=%d" % iters)
    if fast.output() != slow.output():
        raise AssertionError("replay output diverges at iters=%d" % iters)
    if fast.final_memory() != slow.final_memory():
        raise AssertionError("final memory diverges at iters=%d" % iters)
    if _race_keys(fast) != _race_keys(slow):
        raise AssertionError("race sets diverge at iters=%d" % iters)
    for name in fast.log.threads:
        if (
            fast.thread_replays[name].materialized()
            != slow.thread_replays[name].materialized()
        ):
            raise AssertionError(
                "thread %r replay diverges at iters=%d" % (name, iters)
            )


def run_benchmark(sizes=SIZES, repeats: int = 5) -> dict:
    """Time generic vs fast replay per size; assert identical results."""
    rows = []
    for iters in sizes:
        program, log, stripped = _recorded(iters)
        fast_s, fast, slow_s, slow = _measure_pair(log, stripped, program, repeats)
        _assert_equivalent(fast, slow, iters)
        rows.append(
            {
                "iters": iters,
                "steps": log.total_instructions,
                "regions": sum(len(regions) for regions in fast.regions.values()),
                "accesses": fast.access_index().access_count,
                "slow_s": round(slow_s, 4),
                "fast_s": round(fast_s, 4),
                "speedup": round(slow_s / fast_s, 2) if fast_s else 0.0,
                "results_identical": True,
            }
        )
    largest = rows[-1]
    return {
        "workloads": rows,
        "seed": SEED,
        "largest_iters": largest["iters"],
        "speedup": largest["speedup"],
        "results_identical": all(row["results_identical"] for row in rows),
    }


def test_fast_path_beats_generic_reference(results_dir):
    result = run_benchmark(sizes=SIZES, repeats=5)
    write_result(result, results_dir / "BENCH_replay.json")
    assert result["results_identical"]
    assert result["speedup"] >= 2.0, (
        "fast-path replay must be >=2x over the generic reference "
        "on the largest workload (got %.2fx)" % result["speedup"]
    )


def main() -> int:
    return scaling_main(
        "replay",
        run_benchmark,
        sizes=SIZES,
        quick_sizes=QUICK_SIZES,
        repeats=5,
        description=__doc__.split("\n")[0],
        summary=lambda result: (
            "results identical across %d workloads; largest speedup %.2fx"
            % (len(result["workloads"]), result["speedup"])
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
