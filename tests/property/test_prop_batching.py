"""Property-based tests: batched + incremental classification equivalence.

For random recorded programs, the batched engine and a warm incremental
re-analysis spliced from its verdict index must both render the exact
report bytes of the per-instance paths — the plain (unmemoized)
classifier and the per-instance memoized engine.  This is the
whole-pipeline version of the unit equivalence tests: any drift in
canonicalization, batch planning, lazy live-in resolution, probe
tracking or index splicing shows up as a byte diff here.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis.engine import ClassificationEngine, EngineConfig
from repro.analysis.perf import PerfStats
from repro.analysis.pipeline import execution_report, render_report
from repro.isa import assemble
from repro.record import record_run
from repro.vm import RandomScheduler

from strategies import programs, seeds

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _recorded_log(source, seed):
    program = assemble(source, name="prop_batching")
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    return log


def _report(analysis):
    return render_report(execution_report(analysis))


def _engine(batching):
    return ClassificationEngine(
        EngineConfig(jobs=1, memoize=True, batching=batching)
    )


class TestBatchedEngineEquivalence:
    @given(source=programs(), seed=seeds)
    @_SETTINGS
    def test_batched_and_incremental_match_per_instance(self, source, seed):
        log = _recorded_log(source, seed)
        naive = ClassificationEngine(
            EngineConfig(jobs=1, memoize=False)
        ).analyze_log(log)
        reference = _report(naive)

        memoized = _engine(batching=False).analyze_log(log)
        assert _report(memoized) == reference

        batched = _engine(batching=True).analyze_log(log)
        assert _report(batched) == reference

        # A warm engine spliced from the batched run's verdict index
        # must reproduce the same bytes without a single replay.
        warm_stats = PerfStats()
        warm = _engine(batching=True).analyze_log(
            log, perf=warm_stats, prior=batched
        )
        assert _report(warm) == reference
        if naive.classified:
            assert warm_stats.cache_misses == 0
            assert warm_stats.incremental_spliced > 0
