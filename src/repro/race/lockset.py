"""Eraser-style lockset detection — the heuristic baseline (Section 2.2.2).

Implements the classic Eraser state machine (Savage et al. 1997) per
shared location:

    Virgin -> Exclusive(first thread) -> Shared / Shared-Modified

with candidate-lockset refinement: once a second thread touches the
location, its candidate set is intersected with the accessor's held locks
on every access, and a warning fires when the set empties in the
Shared-Modified state.

The point of carrying this baseline is the paper's §2/§3 contrast: the
lockset algorithm reports **false positives** (e.g. user-constructed
synchronization, which no lock guards but which is perfectly ordered),
while the happens-before detector cannot.  The A1 ablation benchmark
measures exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Set

from ..isa.program import StaticInstructionId
from ..replay.ordered_replay import OrderedReplay
from .linearize import LinearEvent, linearize


class LocationState(Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class LocksetWarning:
    """One Eraser warning: a location's candidate lockset became empty."""

    address: int
    state: LocationState
    access_static_id: Optional[StaticInstructionId]
    prior_static_ids: FrozenSet[StaticInstructionId]
    thread_name: str

    def __str__(self) -> str:
        return "lockset warning at %#x (%s) by %s at %s" % (
            self.address,
            self.state.value,
            self.thread_name,
            self.access_static_id,
        )


@dataclass
class _LocationInfo:
    state: LocationState = LocationState.VIRGIN
    first_tid: Optional[int] = None
    candidate_locks: Optional[Set[int]] = None
    accessors: Set[StaticInstructionId] = field(default_factory=set)
    warned: bool = False


class LocksetDetector:
    """Runs the Eraser algorithm over a linearized replayed execution."""

    def __init__(self, ordered: OrderedReplay):
        self.ordered = ordered
        self.warnings: List[LocksetWarning] = []

    def detect(self) -> List[LocksetWarning]:
        """One warning per distinct shared location, Eraser-style."""
        held: Dict[int, Set[int]] = {}
        locations: Dict[int, _LocationInfo] = {}
        for event in linearize(self.ordered):
            held_locks = held.setdefault(event.tid, set())
            if event.kind == "lock" and event.address is not None:
                held_locks.add(event.address)
            elif event.kind == "unlock" and event.address is not None:
                held_locks.discard(event.address)
            elif event.is_plain_access and event.address is not None:
                self._access(event, held_locks, locations)
            # Atomic RMWs are lock-prefixed instructions; Eraser-family
            # tools treat them as synchronization, not data accesses.
        return list(self.warnings)

    def _access(
        self,
        event: LinearEvent,
        held_locks: Set[int],
        locations: Dict[int, _LocationInfo],
    ) -> None:
        info = locations.setdefault(event.address, _LocationInfo())
        if event.static_id is not None:
            info.accessors.add(event.static_id)

        if info.state is LocationState.VIRGIN:
            info.state = LocationState.EXCLUSIVE
            info.first_tid = event.tid
            return
        if info.state is LocationState.EXCLUSIVE:
            if event.tid == info.first_tid:
                return
            info.candidate_locks = set(held_locks)
            info.state = (
                LocationState.SHARED_MODIFIED if event.is_write else LocationState.SHARED
            )
        else:
            assert info.candidate_locks is not None
            info.candidate_locks &= held_locks
            if event.is_write:
                info.state = LocationState.SHARED_MODIFIED

        if (
            info.state is LocationState.SHARED_MODIFIED
            and info.candidate_locks is not None
            and not info.candidate_locks
            and not info.warned
        ):
            info.warned = True
            self.warnings.append(
                LocksetWarning(
                    address=event.address,
                    state=info.state,
                    access_static_id=event.static_id,
                    prior_static_ids=frozenset(info.accessors),
                    thread_name=event.thread_name,
                )
            )


def lockset_warnings(ordered: OrderedReplay) -> List[LocksetWarning]:
    """Convenience wrapper around :class:`LocksetDetector`."""
    return LocksetDetector(ordered).detect()
