"""Unit tests for registers, lock table, syscalls, and schedulers."""

import random

import pytest

from repro.vm.errors import MemoryFault, ScheduleError
from repro.vm.memory import Memory
from repro.vm.registers import RegisterFile
from repro.vm.scheduler import (
    ExplicitScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.vm.sync import LockTable
from repro.vm.syscalls import Syscalls


class TestRegisterFile:
    def test_zero_initialised(self):
        registers = RegisterFile()
        assert all(registers.read(i) == 0 for i in range(16))

    def test_write_read(self):
        registers = RegisterFile()
        registers.write(3, 99)
        assert registers.read(3) == 99

    def test_wraps_64_bits(self):
        registers = RegisterFile()
        registers.write(0, -1)
        assert registers.read(0) == (1 << 64) - 1

    def test_snapshot_restore(self):
        registers = RegisterFile()
        registers.write(1, 7)
        snap = registers.snapshot()
        registers.write(1, 8)
        registers.restore(snap)
        assert registers.read(1) == 7

    def test_construct_from_snapshot(self):
        snap = tuple(range(16))
        assert RegisterFile(snap).snapshot() == snap

    def test_bad_snapshot_length(self):
        with pytest.raises(ValueError):
            RegisterFile((1, 2, 3))

    def test_equality(self):
        a, b = RegisterFile(), RegisterFile()
        assert a == b
        a.write(0, 1)
        assert a != b


class TestLockTable:
    def test_acquire_free_lock(self):
        locks = LockTable()
        assert locks.try_acquire(0, 100)
        assert locks.owner(100) == 0

    def test_contended_acquire_fails(self):
        locks = LockTable()
        locks.try_acquire(0, 100)
        assert not locks.try_acquire(1, 100)

    def test_recursive_acquire_faults(self):
        locks = LockTable()
        locks.try_acquire(0, 100)
        with pytest.raises(MemoryFault):
            locks.try_acquire(0, 100)

    def test_release_wakes_fifo_waiter(self):
        locks = LockTable()
        locks.try_acquire(0, 100)
        locks.add_waiter(1, 100)
        locks.add_waiter(2, 100)
        assert locks.release(0, 100) == 1
        assert locks.waiters(100) == [2]

    def test_release_by_non_owner_faults(self):
        locks = LockTable()
        locks.try_acquire(0, 100)
        with pytest.raises(MemoryFault):
            locks.release(1, 100)

    def test_release_without_waiters(self):
        locks = LockTable()
        locks.try_acquire(0, 100)
        assert locks.release(0, 100) is None
        assert not locks.is_held(100)


class TestSyscalls:
    def make(self):
        return Syscalls(Memory(), random.Random(0))

    def test_getpid_same_for_all_threads(self):
        syscalls = self.make()
        values = {syscalls.execute("sys_getpid", tid, "t%d" % tid, 0) for tid in range(4)}
        assert values == {Syscalls.PROCESS_ID}

    def test_time_returns_global_step(self):
        assert self.make().execute("sys_time", 0, "t", 1234) == 1234

    def test_rand_within_bound_and_seeded(self):
        a = Syscalls(Memory(), random.Random(5))
        b = Syscalls(Memory(), random.Random(5))
        seq_a = [a.execute("sys_rand", 0, "t", 0, 10) for _ in range(20)]
        seq_b = [b.execute("sys_rand", 0, "t", 0, 10) for _ in range(20)]
        assert seq_a == seq_b
        assert all(0 <= value < 10 for value in seq_a)

    def test_alloc_and_free(self):
        syscalls = self.make()
        base = syscalls.execute("sys_alloc", 0, "t", 0, 4)
        assert syscalls.memory.read(base) == 0
        assert syscalls.execute("sys_free", 0, "t", 0, base) == 0

    def test_print_appends_output(self):
        syscalls = self.make()
        syscalls.execute("sys_print", 0, "main", 0, 42)
        assert syscalls.output == [("main", 42)]

    def test_unknown_syscall(self):
        with pytest.raises(ValueError):
            self.make().execute("sys_nope", 0, "t", 0)


class TestRoundRobin:
    def test_rotates(self):
        scheduler = RoundRobinScheduler(quantum=1)
        assert scheduler.pick([0, 1, 2], None, 0) == 0
        assert scheduler.pick([0, 1, 2], 0, 1) == 1
        assert scheduler.pick([0, 1, 2], 1, 2) == 2
        assert scheduler.pick([0, 1, 2], 2, 3) == 0

    def test_quantum_keeps_thread(self):
        scheduler = RoundRobinScheduler(quantum=3)
        picks = [scheduler.pick([0, 1], scheduler.pick([0, 1], 0, 0), 0) for _ in range(1)]
        scheduler.reset()
        first = scheduler.pick([0, 1], 0, 0)
        second = scheduler.pick([0, 1], first, 1)
        assert first == 0 and second == 0

    def test_skips_unrunnable(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.pick([2], 0, 0) == 2

    def test_bad_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)


class TestRandomScheduler:
    def test_deterministic_per_seed(self):
        a, b = RandomScheduler(seed=3), RandomScheduler(seed=3)
        picks_a = [a.pick([0, 1, 2], 0, i) for i in range(50)]
        picks_b = [b.pick([0, 1, 2], 0, i) for i in range(50)]
        assert picks_a == picks_b

    def test_different_seeds_differ(self):
        a, b = RandomScheduler(seed=1), RandomScheduler(seed=2)
        picks_a = [a.pick([0, 1, 2], 0, i) for i in range(50)]
        picks_b = [b.pick([0, 1, 2], 0, i) for i in range(50)]
        assert picks_a != picks_b

    def test_reset_replays(self):
        scheduler = RandomScheduler(seed=9)
        first = [scheduler.pick([0, 1], None, i) for i in range(20)]
        scheduler.reset()
        second = [scheduler.pick([0, 1], None, i) for i in range(20)]
        assert first == second

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            RandomScheduler(switch_probability=1.5)


class TestExplicitScheduler:
    def test_follows_sequence(self):
        scheduler = ExplicitScheduler([1, 0, 1])
        assert scheduler.pick([0, 1], None, 0) == 1
        assert scheduler.pick([0, 1], 1, 1) == 0
        assert scheduler.pick([0, 1], 0, 2) == 1

    def test_falls_back_to_round_robin(self):
        scheduler = ExplicitScheduler([1])
        scheduler.pick([0, 1], None, 0)
        assert scheduler.pick([0, 1], None, 1) in (0, 1)

    def test_skips_unrunnable_when_lenient(self):
        scheduler = ExplicitScheduler([5, 0])
        assert scheduler.pick([0, 1], None, 0) == 0

    def test_strict_raises(self):
        scheduler = ExplicitScheduler([5], strict=True)
        with pytest.raises(ScheduleError):
            scheduler.pick([0, 1], None, 0)

    def test_reset(self):
        scheduler = ExplicitScheduler([1, 0])
        scheduler.pick([0, 1], None, 0)
        scheduler.reset()
        assert scheduler.pick([0, 1], None, 0) == 1
