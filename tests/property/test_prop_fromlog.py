"""Property-based tests: the zero-replay detect path over random programs.

Two invariant families:

* **Sectioned reading** — for random :class:`ReplayLog` containers (every
  version, ``include_captured`` both ways), ``decode_log_sections`` must
  agree with the full decoder on everything it claims to decode: thread
  identity, sequencer records, step counts, and the captured columns
  when (and only when) the container carries them.
* **Detect equivalence or clean refusal** — for random *recorded*
  programs, the log-native :class:`LogView` detector either produces
  exactly the race instances the replay path produces (v3 with captured
  columns) or refuses with :class:`LogViewUnavailable` (v1/v2, or v3
  encoded with ``include_captured=False``) — never a wrong answer, never
  a different exception.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis.pipeline import detect_only, detection_report, render_report
from repro.isa import assemble
from repro.race.happens_before import HappensBeforeDetector
from repro.record import record_run
from repro.record.binary_format import (
    SUPPORTED_VERSIONS,
    decode_log,
    decode_log_sections,
    encode_log,
)
from repro.replay import LogView, LogViewUnavailable, OrderedReplay
from repro.vm import RandomScheduler

from strategies import programs, seeds
from test_prop_binary_versions import replay_logs

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _recording(source, seed):
    program = assemble(source, name="prop_fromlog")
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    return program, log


class TestSectionedReaderAgainstFullDecoder:
    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    @given(log=replay_logs())
    @_SETTINGS
    def test_sections_match_decode_log(self, version, log):
        data = encode_log(log, version=version)
        full = decode_log(data)
        sections = decode_log_sections(data)
        assert sections.version == version
        assert sections.program_name == full.program_name
        assert sections.program_source == full.program_source
        assert sections.seed == full.seed
        assert sections.scheduler == full.scheduler
        assert set(sections.threads) == set(full.threads)
        for name, thread in full.threads.items():
            view = sections.threads[name]
            assert view.tid == thread.tid
            assert view.block == thread.block
            assert view.steps == thread.steps
            assert view.sequencers == thread.sequencers

    @pytest.mark.parametrize("include_captured", (True, False))
    @given(log=replay_logs())
    @_SETTINGS
    def test_captured_round_trip_mirrors_flag(self, include_captured, log):
        data = encode_log(log, include_captured=include_captured)
        full = decode_log(data)
        sections = decode_log_sections(data)
        if not include_captured or log.captured is None:
            assert full.captured is None
            assert sections.captured is None
            return
        assert set(sections.captured) == set(full.captured.threads)
        for name, columns in full.captured.threads.items():
            view = sections.captured[name]
            assert list(view.steps) == list(columns.steps)
            assert list(view.flags) == list(columns.flags)
            assert list(view.addresses) == list(columns.addresses)
            assert list(view.values) == list(columns.values)
            assert list(view.static_ids) == list(columns.static_ids)


class TestDetectMatchesOrRefuses:
    @given(source=programs(), seed=seeds)
    @_SETTINGS
    def test_fromlog_races_identical_on_v3(self, source, seed):
        program, log = _recording(source, seed)
        view = LogView.from_bytes(encode_log(log))
        replayed = HappensBeforeDetector(OrderedReplay(log, program))
        fromlog = HappensBeforeDetector(view)
        assert fromlog.detect() == replayed.detect()
        assert fromlog.truncated_locations == replayed.truncated_locations

    @given(source=programs(), seed=seeds)
    @_SETTINGS
    def test_captureless_containers_refuse_cleanly(self, source, seed):
        _, log = _recording(source, seed)
        for data in (
            encode_log(log, version=1),
            encode_log(log, version=2),
            encode_log(log, include_captured=False),
        ):
            with pytest.raises(LogViewUnavailable):
                LogView.from_bytes(data)
            # detect_only falls back to replay and still answers.
            fallback = detect_only(data, mode="auto")
            assert fallback.path == "replay"

    @given(source=programs(), seed=seeds)
    @_SETTINGS
    def test_detection_reports_byte_identical(self, source, seed):
        _, log = _recording(source, seed)
        data = encode_log(log)
        via_view = detect_only(data, mode="from-log")
        via_replay = detect_only(data, mode="replay")
        assert render_report(detection_report(via_view)) == render_report(
            detection_report(via_replay)
        )
