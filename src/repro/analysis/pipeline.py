"""End-to-end analysis pipeline: record → replay → detect → classify.

One :func:`analyze_execution` call is the paper's full per-execution flow;
:func:`analyze_suite` runs a whole corpus and merges per-static-race
results across executions, attaching ground truth from the workloads.

The service-callable entry points — :func:`analyze_log` (replay → detect
→ classify for an already-recorded log, e.g. one uploaded over HTTP),
:func:`execution_report` and :func:`render_report` (the canonical
machine-readable race report and its canonical byte rendering) — are
reentrant and share no mutable module state, so the analysis service's
pool workers and the in-process CLI produce byte-identical reports from
the same inputs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.program import Program
from ..race.aggregate import StaticRaceResult, aggregate_instances
from ..race.classifier import ClassifierConfig, RaceClassifier
from ..race.happens_before import HappensBeforeDetector
from ..race.heuristics import BenignCategory
from ..race.model import RaceInstance, StaticRaceKey
from ..race.outcomes import ClassifiedInstance
from ..record.log import ReplayLog
from ..record.recorder import record_run
from ..replay.ordered_replay import OrderedReplay
from ..vm.machine import MachineResult
from ..vm.scheduler import RandomScheduler
from ..workloads.base import GroundTruth, RaceExpectation, Workload
from ..workloads.suite import Execution
from .perf import PerfStats


@dataclass
class ExecutionAnalysis:
    """Everything produced by analysing one recorded execution.

    ``machine_result`` is ``None`` when the analysis started from a bare
    log (:func:`analyze_log`) rather than a live recording.
    """

    execution_id: str
    workload: Workload
    machine_result: Optional[MachineResult]
    log: ReplayLog
    ordered: OrderedReplay
    instances: List[RaceInstance]
    classified: List[ClassifiedInstance]
    #: Stage timings/work counters, when the caller asked for them.
    perf: Optional[PerfStats] = None
    #: Portable verdict index (:meth:`VerdictCache.export_portable`) of
    #: the engine cache after this analysis — the `prior=` input of an
    #: incremental re-analysis.  ``None`` outside the memoizing engine.
    verdict_index: Optional[Dict] = None

    @property
    def program(self) -> Program:
        return self.ordered.program

    @property
    def instance_count(self) -> int:
        return len(self.instances)


@dataclass
class SuiteAnalysis:
    """Merged analysis of a whole corpus of executions."""

    executions: List[ExecutionAnalysis]
    results: Dict[StaticRaceKey, StaticRaceResult]
    #: Ground truth per unique race (None when no expectation covers it).
    truths: Dict[StaticRaceKey, Optional[GroundTruth]]
    #: Ground-truth benign category per unique race.
    categories: Dict[StaticRaceKey, Optional[BenignCategory]]
    #: The workload each unique race was observed in.
    workloads: Dict[StaticRaceKey, Workload]

    @property
    def total_instances(self) -> int:
        return sum(analysis.instance_count for analysis in self.executions)

    @property
    def unique_race_count(self) -> int:
        return len(self.results)

    def program_for(self, key: StaticRaceKey) -> Program:
        return self.workloads[key].program()


def analyze_execution(
    execution: Execution,
    classifier_config: Optional[ClassifierConfig] = None,
    max_pairs_per_location: Optional[int] = 256,
    max_steps: int = 200_000,
    capture_global_order: bool = True,
    classifier_factory=None,
    detector_factory=None,
    perf: Optional[PerfStats] = None,
    cache=None,
    replay_fast_path: bool = True,
) -> ExecutionAnalysis:
    """Record and fully analyse one execution of a workload.

    ``classifier_factory(ordered, classifier_config, execution_id)`` lets
    the classification engine substitute its memoizing classifier;
    ``detector_factory(ordered, max_pairs_per_location)`` substitutes the
    race detector (the equivalence tests pass the retained naive
    reference); ``perf`` accumulates per-stage wall time and work
    counters; ``cache`` (a :class:`repro.analysis.cache.SuiteCache`)
    serves the record stage by content address when the same execution
    was recorded before; ``replay_fast_path=False`` forces the generic
    reference replayer (equivalence tests compare both).
    """
    workload = execution.workload
    program = workload.program()
    stats = perf if perf is not None else PerfStats()
    with stats.stage("record"):
        machine_result = None
        if cache is not None:
            from .cache import execution_cache_key

            cache_key = execution_cache_key(execution, max_steps, capture_global_order)
            cached = cache.load(cache_key)
            if cached is not None:
                machine_result, log = cached
                stats.record_cache_hits += 1
        if machine_result is None:
            scheduler = RandomScheduler(
                seed=execution.seed, switch_probability=execution.switch_probability
            )
            machine_result, log = record_run(
                program,
                scheduler=scheduler,
                seed=execution.seed,
                max_steps=max_steps,
                capture_global_order=capture_global_order,
            )
            if cache is not None:
                stats.record_cache_misses += 1
                cache.store(cache_key, machine_result, log)
        stats.record_steps += log.total_instructions
        if log.captured is not None:
            stats.record_events += log.captured.total_events
            stats.record_predicted_loads += log.captured.predicted_loads
    with stats.stage("replay"):
        ordered = OrderedReplay(
            log, program, fast_path=replay_fast_path, perf=stats
        )
    with stats.stage("detect"):
        if detector_factory is None:
            detector = HappensBeforeDetector(
                ordered, max_pairs_per_location=max_pairs_per_location, perf=stats
            )
        else:
            detector = detector_factory(ordered, max_pairs_per_location)
        instances = detector.detect()
    if classifier_factory is None:
        classifier = RaceClassifier(
            ordered, config=classifier_config, execution_id=execution.execution_id
        )
    else:
        classifier = classifier_factory(
            ordered, classifier_config, execution.execution_id
        )
    with stats.stage("classify"):
        classified = classifier.classify_all(instances)
    stats.executions += 1
    stats.instances += len(instances)
    classifier.collect_perf(stats)
    return ExecutionAnalysis(
        execution_id=execution.execution_id,
        workload=workload,
        machine_result=machine_result,
        log=log,
        ordered=ordered,
        instances=instances,
        classified=classified,
        perf=perf,
    )


def default_execution_id(log: ReplayLog) -> str:
    """The canonical execution id for a bare log: ``<program>#s<seed>``.

    Matches the id :func:`repro.workloads.suite.paper_suite` assigns to
    live executions, so a suite recording saved to disk and analysed
    through :func:`analyze_log` reports under the same id (and hence
    byte-identically) as the in-process :func:`analyze_execution` path.
    """
    return "%s#s%d" % (log.program_name, log.seed)


def analyze_log(
    log: ReplayLog,
    execution_id: Optional[str] = None,
    classifier_config: Optional[ClassifierConfig] = None,
    max_pairs_per_location: Optional[int] = 256,
    classifier_factory=None,
    detector_factory=None,
    perf: Optional[PerfStats] = None,
    replay_fast_path: bool = True,
) -> ExecutionAnalysis:
    """Fully analyse an already-recorded log: replay → detect → classify.

    The record stage is skipped (the log *is* the recording); everything
    downstream — ordered replay, happens-before detection, both-orders
    classification — is identical to :func:`analyze_execution`, so the
    resulting report is too.  The workload is synthesized from the log's
    embedded program source (logs are self-contained), which means no
    ground-truth expectations attach — exactly right for logs uploaded
    to the analysis service from outside the labelled corpus.
    """
    workload = Workload(
        name=log.program_name,
        source=log.program_source,
        description="recorded log (analysed via analyze_log)",
    )
    if execution_id is None:
        execution_id = default_execution_id(log)
    stats = perf if perf is not None else PerfStats()
    program = workload.program()
    with stats.stage("replay"):
        ordered = OrderedReplay(log, program, fast_path=replay_fast_path, perf=stats)
    with stats.stage("detect"):
        if detector_factory is None:
            detector = HappensBeforeDetector(
                ordered, max_pairs_per_location=max_pairs_per_location, perf=stats
            )
        else:
            detector = detector_factory(ordered, max_pairs_per_location)
        instances = detector.detect()
    if classifier_factory is None:
        classifier = RaceClassifier(
            ordered, config=classifier_config, execution_id=execution_id
        )
    else:
        classifier = classifier_factory(ordered, classifier_config, execution_id)
    with stats.stage("classify"):
        classified = classifier.classify_all(instances)
    stats.executions += 1
    stats.instances += len(instances)
    classifier.collect_perf(stats)
    return ExecutionAnalysis(
        execution_id=execution_id,
        workload=workload,
        machine_result=None,
        log=log,
        ordered=ordered,
        instances=instances,
        classified=classified,
        perf=perf,
    )


def analyze_log_stream(
    source,
    execution_id: Optional[str] = None,
    classifier_config: Optional[ClassifierConfig] = None,
    max_pairs_per_location: Optional[int] = 256,
    classifier_factory=None,
    perf: Optional[PerfStats] = None,
    replay_fast_path: bool = True,
    segment_bytes: Optional[int] = None,
    log: Optional[ReplayLog] = None,
) -> ExecutionAnalysis:
    """Analyse a recorded log with streaming detection and eager,
    per-window classification.

    ``source`` is RPRB container bytes (v4 streams segment by segment;
    monolithic v3 logs are re-chunked in memory) or a decoded
    :class:`ReplayLog`; ``log`` optionally supplies the already-decoded
    log when the caller holds both, so the container isn't decoded twice.

    Detection runs through the segment cursor and the incremental sweep,
    and every sealed window whose races are final is classified
    immediately — the first verdicts land while later segments are still
    being decoded, instead of after the whole log has been swept.  The
    classifier itself still replays against the full
    :class:`OrderedReplay` (the both-orders virtual processor needs
    machine state), and verdicts are order-independent, so the final
    report is byte-identical to :func:`analyze_log`'s — the equivalence
    suite asserts it.  ``perf`` picks up ``stream_first_verdict_s`` (wall
    seconds from analysis start to the first verdict) plus the segment
    and window counters.
    """
    import time as _time

    from ..replay.log_view import StreamingLogView

    started = _time.perf_counter()
    stats = perf if perf is not None else PerfStats()
    data: Optional[bytes] = None
    if isinstance(source, (bytes, bytearray, memoryview)):
        data = bytes(source)
        if log is None:
            from ..record.serialization import load_log_bytes

            log = load_log_bytes(data)
    elif log is None:
        log = source
    workload = Workload(
        name=log.program_name,
        source=log.program_source,
        description="recorded log (analysed via analyze_log_stream)",
    )
    if execution_id is None:
        execution_id = default_execution_id(log)
    program = workload.program()
    with stats.stage("replay"):
        ordered = OrderedReplay(log, program, fast_path=replay_fast_path, perf=stats)
    if classifier_factory is None:
        classifier = RaceClassifier(
            ordered, config=classifier_config, execution_id=execution_id
        )
    else:
        classifier = classifier_factory(ordered, classifier_config, execution_id)
    from ..race.happens_before import StreamingHappensBeforeDetector

    with stats.stage("detect.view"):
        from ..record.binary_format import is_binary_log

        if data is not None and is_binary_log(data):
            view = StreamingLogView.from_bytes(
                data, perf=stats, segment_bytes=segment_bytes
            )
        else:
            # JSON containers (or bare ReplayLogs) re-chunk in memory.
            view = StreamingLogView.from_log(
                log, perf=stats, segment_bytes=segment_bytes
            )
    detector = StreamingHappensBeforeDetector(
        max_pairs_per_location=max_pairs_per_location, perf=stats
    )
    view.attach_window(detector.window)
    #: Eagerly classified verdicts, keyed by detector instance identity;
    #: reassembled into canonical order once the sweep finishes.
    verdicts: Dict[int, ClassifiedInstance] = {}
    first_verdict_s: Optional[float] = None
    for window in view.stream_windows():
        fresh: List[RaceInstance] = []
        with stats.stage("detect"):
            for region, rows in window:
                fresh.extend(detector.add_region(region, rows))
        if not fresh:
            continue
        with stats.stage("classify"):
            chunk = classifier.classify_all(fresh)
        for instance, entry in zip(fresh, chunk):
            verdicts[id(instance)] = entry
        if first_verdict_s is None:
            first_verdict_s = _time.perf_counter() - started
        stats.stream_windows += 1
    with stats.stage("detect"):
        instances = detector.finish()
    classified = [verdicts[id(instance)] for instance in instances]
    stats.executions += 1
    stats.instances += len(instances)
    stats.stream_jobs += 1
    stats.stream_segments += view.segments_fed
    if first_verdict_s is not None:
        stats.stream_first_verdict_s += first_verdict_s
    classifier.collect_perf(stats)
    return ExecutionAnalysis(
        execution_id=execution_id,
        workload=workload,
        machine_result=None,
        log=log,
        ordered=ordered,
        instances=instances,
        classified=classified,
        perf=perf,
    )


@dataclass
class DetectionAnalysis:
    """Everything produced by a detect-only pass over one log.

    ``source`` is whatever object fed the detector — a zero-replay
    :class:`~repro.replay.log_view.LogView` (``path == "from-log"``) or a
    full :class:`OrderedReplay` (``path == "replay"``).  Both expose
    ``program`` (lazily assembled on the view), so race presentation
    works identically downstream.
    """

    execution_id: str
    program_name: str
    seed: int
    scheduler: str
    #: Which detect path ran: ``"from-log"``, ``"replay"``, ``"stream"``
    #: or ``"parallel"``.
    path: str
    source: object
    instances: List[RaceInstance]
    truncated_locations: int
    perf: Optional[PerfStats] = None

    @property
    def instance_count(self) -> int:
        return len(self.instances)

    @property
    def unique_keys(self) -> List[StaticRaceKey]:
        return sorted(
            {instance.static_key for instance in self.instances},
            key=lambda key: (key[0].sort_key(), key[1].sort_key()),
        )


def detect_only(
    source,
    mode: str = "auto",
    execution_id: Optional[str] = None,
    max_pairs_per_location: Optional[int] = 256,
    perf: Optional[PerfStats] = None,
    jobs: int = 1,
) -> DetectionAnalysis:
    """Run only the detect stage of the funnel — no classification.

    ``source`` is RPRB container bytes, a decoded :class:`ReplayLog`, or
    a filesystem path to a container (required shape for the parallel
    path's zero-copy reads; other modes read the file into bytes).
    ``mode`` picks the path:

    * ``"from-log"`` — the zero-replay :class:`LogView` path; raises
      :class:`~repro.replay.log_view.LogViewUnavailable` when the log has
      no captured columns (v1/v2, or v3 without capture).
    * ``"replay"`` — the historical :class:`OrderedReplay` path.
    * ``"stream"`` — the segmented streaming path: regions sweep through
      the incremental detector as segments decode, with resident state
      bounded by the active window (v4 files stream frame by frame;
      monolithic v3 logs are re-chunked in memory).  Raises
      :class:`LogViewUnavailable` for v1/v2/captureless logs.
    * ``"parallel"`` — the segment-fanout path: v4 segments partition
      across ``jobs`` worker processes, each mmap-reading only its own
      range; raises :class:`ValueError` for anything but a v4 container.
    * ``"auto"`` (default) — parallel for v4 sources when ``jobs > 1``,
      else from-log when the log supports it, replay otherwise.

    Race sets are byte-identical between all paths (the equivalence
    suite enforces it); they differ only in cost profile.
    """
    from ..replay.log_view import LogView, LogViewUnavailable

    if mode not in ("auto", "from-log", "replay", "stream", "parallel"):
        raise ValueError(
            "unknown detect mode %r (expected auto, from-log, replay, "
            "stream or parallel)" % mode
        )
    if jobs < 1:
        raise ValueError("detect jobs must be >= 1 (got %d)" % jobs)
    path_source: Optional[str] = None
    if isinstance(source, (str, os.PathLike)):
        path_source = os.fspath(source)
    if mode == "parallel" or (
        mode == "auto" and jobs > 1 and _parallel_eligible(source, path_source)
    ):
        return _detect_parallel(
            source,
            path_source,
            execution_id=execution_id,
            max_pairs_per_location=max_pairs_per_location,
            perf=perf,
            jobs=jobs,
        )
    if path_source is not None:
        with open(path_source, "rb") as handle:
            source = handle.read()
    if mode == "stream":
        return _detect_streaming(
            source,
            execution_id=execution_id,
            max_pairs_per_location=max_pairs_per_location,
            perf=perf,
        )
    stats = perf if perf is not None else PerfStats()
    detect_source = None
    path = "replay"
    if mode in ("auto", "from-log"):
        try:
            with stats.stage("detect.view"):
                if isinstance(source, (bytes, bytearray, memoryview)):
                    detect_source = LogView.from_bytes(bytes(source), perf=stats)
                else:
                    detect_source = LogView.from_log(source, perf=stats)
            path = "from-log"
        except LogViewUnavailable:
            if mode == "from-log":
                raise
    if detect_source is None:
        if isinstance(source, (bytes, bytearray, memoryview)):
            from ..record.serialization import load_log_bytes

            log = load_log_bytes(bytes(source))
        else:
            log = source
        with stats.stage("replay"):
            detect_source = OrderedReplay(log, perf=stats)
    with stats.stage("detect"):
        detector = HappensBeforeDetector(
            detect_source,
            max_pairs_per_location=max_pairs_per_location,
            perf=stats,
        )
        instances = detector.detect()
    stats.executions += 1
    stats.instances += len(instances)
    program_name = (
        detect_source.program_name
        if path == "from-log"
        else detect_source.log.program_name
    )
    seed = detect_source.seed if path == "from-log" else detect_source.log.seed
    scheduler = (
        detect_source.scheduler
        if path == "from-log"
        else detect_source.log.scheduler
    )
    if execution_id is None:
        execution_id = "%s#s%d" % (program_name, seed)
    return DetectionAnalysis(
        execution_id=execution_id,
        program_name=program_name,
        seed=seed,
        scheduler=scheduler,
        path=path,
        source=detect_source,
        instances=instances,
        truncated_locations=detector.truncated_locations,
        perf=perf,
    )


def _detect_streaming(
    source,
    execution_id: Optional[str],
    max_pairs_per_location: Optional[int],
    perf: Optional[PerfStats],
    segment_bytes: Optional[int] = None,
) -> DetectionAnalysis:
    """The ``mode="stream"`` body of :func:`detect_only`.

    Drives the segment cursor into the incremental sweep; the final race
    set is byte-identical to the batch paths, but peak resident state is
    the active window and instances existed incrementally along the way
    (``detect_only`` callers just see the end result — the eager
    classification engine consumes the increments).
    """
    from ..race.happens_before import StreamingHappensBeforeDetector
    from ..replay.log_view import StreamingLogView

    stats = perf if perf is not None else PerfStats()
    with stats.stage("detect.view"):
        if isinstance(source, (bytes, bytearray, memoryview)):
            view = StreamingLogView.from_bytes(
                bytes(source), perf=stats, segment_bytes=segment_bytes
            )
        else:
            view = StreamingLogView.from_log(
                source, perf=stats, segment_bytes=segment_bytes
            )
    detector = StreamingHappensBeforeDetector(
        max_pairs_per_location=max_pairs_per_location, perf=stats
    )
    view.attach_window(detector.window)
    with stats.stage("detect"):
        for region, rows in view.stream_regions():
            detector.add_region(region, rows)
        instances = detector.finish()
    stats.executions += 1
    stats.instances += len(instances)
    stats.stream_segments += view.segments_fed
    if execution_id is None:
        execution_id = "%s#s%d" % (view.program_name, view.seed)
    return DetectionAnalysis(
        execution_id=execution_id,
        program_name=view.program_name,
        seed=view.seed,
        scheduler=view.scheduler,
        path="stream",
        source=view,
        instances=instances,
        truncated_locations=detector.truncated_locations,
        perf=perf,
    )


class ParallelLogView:
    """Identity and stats carrier for the parallel detect path.

    Shaped like the slice of :class:`~repro.replay.log_view.LogView`
    the detect-only surface reads — the header identity fields, a
    lazily assembled ``program``, and ``access_index().stats()`` — but
    holding only the merged per-worker aggregates.  The parent process
    deliberately never decodes a region or an access row (the workers
    own those), so there is no real index to hand back.
    """

    __slots__ = ("program_name", "program_source", "seed", "scheduler", "_stats", "_program")

    def __init__(self, header, stats: Dict[str, int]):
        self.program_name = header.program_name
        self.program_source = header.program_source
        self.seed = header.seed
        self.scheduler = header.scheduler
        self._stats = dict(stats)
        self._program = None

    @property
    def program(self):
        if self._program is None:
            from ..isa import assemble

            self._program = assemble(self.program_source, name=self.program_name)
        return self._program

    def access_index(self) -> "ParallelLogView":
        return self

    def stats(self) -> Dict[str, int]:
        return dict(self._stats)


def _parallel_eligible(source, path_source: Optional[str]) -> bool:
    """True when ``source`` is a v4 segmented container (path or bytes)."""
    from ..record.binary_format import MAGIC, is_segmented_log

    if path_source is not None:
        try:
            with open(path_source, "rb") as handle:
                head = handle.read(len(MAGIC) + 1)
        except OSError:
            return False
        return is_segmented_log(head)
    if isinstance(source, (bytes, bytearray, memoryview)):
        return is_segmented_log(bytes(memoryview(source)[: len(MAGIC) + 1]))
    return False


def _detect_parallel(
    source,
    path: Optional[str],
    execution_id: Optional[str],
    max_pairs_per_location: Optional[int],
    perf: Optional[PerfStats],
    jobs: int,
) -> DetectionAnalysis:
    """The ``mode="parallel"`` body of :func:`detect_only`.

    Fans the container's segments across ``jobs`` partition workers
    (:func:`repro.race.happens_before.parallel_detect_races`).  The
    parent maps the file and decodes only the header and the footer
    index — never the log bytes.  Byte sources (the service hands log
    uploads around as bytes) are spooled to a temporary file first so
    workers can share the mapping, then the spool is removed.
    """
    from ..race.happens_before import parallel_detect_races
    from ..record.binary_format import is_segmented_log

    stats = perf if perf is not None else PerfStats()
    temp_path: Optional[str] = None
    try:
        if path is None:
            if not isinstance(source, (bytes, bytearray, memoryview)):
                raise ValueError(
                    "parallel detection reads a v4 segmented container "
                    "(bytes or a file path), not %s" % type(source).__name__
                )
            data = bytes(source)
            if not is_segmented_log(data):
                raise ValueError(
                    "parallel detection requires a v4 segmented container "
                    "(record with --segment-bytes, or use another mode)"
                )
            import tempfile

            handle = tempfile.NamedTemporaryFile(
                prefix="repro-detect-", suffix=".rprb", delete=False
            )
            try:
                handle.write(data)
            finally:
                handle.close()
            temp_path = path = handle.name
            del data
        with stats.stage("detect"):
            outcome = parallel_detect_races(
                path,
                jobs,
                max_pairs_per_location=max_pairs_per_location,
                perf=stats,
            )
    finally:
        if temp_path is not None:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
    stats.executions += 1
    stats.instances += len(outcome.instances)
    if jobs > stats.jobs:
        stats.jobs = jobs
    view = ParallelLogView(outcome.header, outcome.stats)
    if execution_id is None:
        execution_id = "%s#s%d" % (view.program_name, view.seed)
    return DetectionAnalysis(
        execution_id=execution_id,
        program_name=view.program_name,
        seed=view.seed,
        scheduler=view.scheduler,
        path="parallel",
        source=view,
        instances=outcome.instances,
        truncated_locations=outcome.truncated_locations,
        perf=perf,
    )


def detection_report(analysis: DetectionAnalysis) -> Dict:
    """The canonical machine-readable document of a detect-only pass.

    A deterministic function of the detected race set alone — the
    ``path`` that produced it is deliberately **excluded**, so the CI
    equivalence job can diff the rendered bytes of a from-log pass
    against a replay pass and "byte-identical race sets" is literal.
    Every instance is listed (canonical detector order), not just
    exemplars: detect-only output feeds triage queues that need the full
    set.
    """
    per_key: Dict[str, int] = {}
    for instance in analysis.instances:
        text = "%s|%s" % instance.static_key
        per_key[text] = per_key.get(text, 0) + 1
    return {
        "detect_version": 1,
        "program": analysis.program_name,
        "execution": analysis.execution_id,
        "recording": {"seed": analysis.seed, "scheduler": analysis.scheduler},
        "summary": {
            "instances": analysis.instance_count,
            "unique_races": len(per_key),
            "truncated_locations": analysis.truncated_locations,
        },
        "unique_races": [
            {"race": text, "instances": count}
            for text, count in sorted(per_key.items())
        ],
        "instances": [
            {
                "address": instance.address,
                "access_a": str(instance.access_a),
                "access_b": str(instance.access_b),
                "region_a": str(instance.region_a),
                "region_b": str(instance.region_b),
            }
            for instance in analysis.instances
        ],
    }


def execution_report(analysis: ExecutionAnalysis, suppressions=None) -> Dict:
    """The canonical machine-readable race report of one analysis.

    A deterministic function of the analysis alone (races sorted by key,
    no timestamps), built on :func:`repro.race.exporter.results_to_json`
    — the same schema ``repro classify --json`` writes.  The analysis
    service serves exactly this document per job, and the end-to-end
    tests assert its :func:`render_report` bytes match the in-process
    path's.
    """
    results = aggregate_instances(analysis.classified)
    from ..race.exporter import results_to_json
    from .batching import instance_batch_key

    return results_to_json(
        results,
        analysis.program,
        log=analysis.log,
        suppressions=suppressions,
        # Batch keys are derived from the recording alone (region contents
        # via the ordered replay), never from which classifier ran — so
        # batched and unbatched reports stay byte-identical.
        batch_key_for=lambda entry: instance_batch_key(
            analysis.ordered, entry.instance
        ),
    )


def render_report(document: Dict) -> bytes:
    """Canonical byte rendering of a report document.

    Sorted keys, two-space indent, trailing newline, UTF-8: every
    producer (service worker, CLI, tests) renders through here so
    "byte-identical reports" is a meaningful equality.
    """
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")


def _ground_truth_for(
    result: StaticRaceResult, workload: Workload
) -> Tuple[Optional[GroundTruth], Optional[BenignCategory]]:
    expectation: Optional[RaceExpectation] = None
    for entry in result.instances:
        expectation = workload.expectation_for_address(entry.instance.address)
        if expectation is not None:
            break
    if expectation is None:
        return None, None
    return expectation.truth, expectation.category


def analyze_suite(
    executions: Sequence[Execution],
    classifier_config: Optional[ClassifierConfig] = None,
    max_pairs_per_location: Optional[int] = 256,
    jobs: int = 1,
    memoize: bool = False,
    perf: Optional[PerfStats] = None,
    cache_dir=None,
    replay_fast_path: bool = True,
    batching: bool = True,
) -> SuiteAnalysis:
    """Analyse a corpus and merge per-static-race results across executions.

    ``jobs > 1`` fans the per-execution analyses across a process pool and
    ``memoize`` reuses verdicts of structurally identical race instances;
    both delegate to :class:`repro.analysis.engine.ClassificationEngine`
    and change no verdict (the engine equivalence tests assert identical
    results).  ``cache_dir`` enables the content-addressed record cache
    (:mod:`repro.analysis.cache`), letting repeated runs skip record for
    unchanged workloads — again with no effect on any result.
    """
    if jobs != 1 or memoize:
        from .engine import ClassificationEngine, EngineConfig

        engine = ClassificationEngine(
            EngineConfig(
                jobs=jobs,
                memoize=memoize,
                classifier_config=classifier_config,
                max_pairs_per_location=max_pairs_per_location,
                cache_dir=str(cache_dir) if cache_dir is not None else None,
                replay_fast_path=replay_fast_path,
                batching=batching,
            )
        )
        analyses = engine.analyze_executions(list(executions), perf=perf)
    else:
        cache = None
        if cache_dir is not None:
            from .cache import SuiteCache

            cache = SuiteCache(cache_dir)
        analyses = [
            analyze_execution(
                execution,
                classifier_config=classifier_config,
                max_pairs_per_location=max_pairs_per_location,
                perf=perf,
                cache=cache,
                replay_fast_path=replay_fast_path,
            )
            for execution in executions
        ]
    merged: Dict[StaticRaceKey, StaticRaceResult] = {}
    race_workloads: Dict[StaticRaceKey, Workload] = {}
    for analysis in analyses:
        aggregate_instances(analysis.classified, into=merged)
        for entry in analysis.classified:
            race_workloads.setdefault(entry.instance.static_key, analysis.workload)

    truths: Dict[StaticRaceKey, Optional[GroundTruth]] = {}
    categories: Dict[StaticRaceKey, Optional[BenignCategory]] = {}
    for key, result in merged.items():
        truth, category = _ground_truth_for(result, race_workloads[key])
        truths[key] = truth
        categories[key] = category
    return SuiteAnalysis(
        executions=analyses,
        results=merged,
        truths=truths,
        categories=categories,
        workloads=race_workloads,
    )
