"""Composite workloads: several motifs fused into one multi-threaded service.

Real applications (the paper's IE run had 27 threads) exhibit many race
sites in one process.  :func:`combine_workloads` concatenates independent
motif programs — their data symbols and thread/block names are already
variant-tagged, so the union assembles cleanly — producing one execution
that covers many unique static races at once.
"""

from __future__ import annotations

from typing import Tuple

from .base import Workload


def combine_workloads(name: str, description: str, *parts: Workload) -> Workload:
    """Fuse several workloads into a single program.

    The combined workload unions the parts' sources, ground-truth
    expectations, and fault tolerance.  Parts must use distinct variant
    tags (thread, block, and data-symbol names may not collide).
    """
    if not parts:
        raise ValueError("combine_workloads needs at least one part")
    sources = []
    expectations: Tuple = ()
    may_fault = False
    for part in parts:
        sources.append("; ---- %s ----\n%s" % (part.name, part.source.strip()))
        expectations = expectations + tuple(part.expectations)
        may_fault = may_fault or part.may_fault
    return Workload(
        name=name,
        source="\n\n".join(sources) + "\n",
        description=description,
        expectations=expectations,
        may_fault=may_fault,
        recommended_seeds=parts[0].recommended_seeds,
    )
