"""Unit tests for the replay-both-orders classifier."""

import pytest

from repro.isa import assemble
from repro.race.classifier import ClassifierConfig, RaceClassifier
from repro.race.happens_before import find_races
from repro.race.outcomes import InstanceOutcome
from repro.record import record_run
from repro.replay import OrderedReplay, ReplayFailure
from repro.vm import ExplicitScheduler, RandomScheduler


def classify(source, seed=3, scheduler=None, config=None, name="cls"):
    program = assemble(source, name=name)
    _, log = record_run(
        program,
        scheduler=scheduler or RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    ordered = OrderedReplay(log, program)
    instances = find_races(ordered)
    classifier = RaceClassifier(ordered, config=config, execution_id="x")
    return program, instances, classifier.classify_all(instances), classifier


RACY_RMW = (
    ".data\nx: .word 10\n.thread a b\n    load r1, [x]\n"
    "    addi r1, r1, 1\n    store r1, [x]\n    halt\n"
)

REDUNDANT = (
    ".data\nx: .word 7\n.thread a b\n    li r1, 7\n    store r1, [x]\n"
    "    load r2, [x]\n    halt\n"
)


class TestOutcomes:
    def test_lost_update_is_state_change(self):
        _, instances, classified, _ = classify(RACY_RMW)
        assert classified
        rw = [
            c
            for c in classified
            if c.instance.access_a.is_write != c.instance.access_b.is_write
        ]
        assert rw
        assert all(c.outcome is InstanceOutcome.STATE_CHANGE for c in rw)

    def test_redundant_write_is_no_state_change(self):
        _, instances, classified, _ = classify(REDUNDANT)
        assert classified
        assert all(
            c.outcome is InstanceOutcome.NO_STATE_CHANGE for c in classified
        )

    def test_pre_value_recorded(self):
        program, _, classified, _ = classify(REDUNDANT)
        assert all(c.pre_value == 7 for c in classified)

    def test_execution_id_attached(self):
        _, _, classified, _ = classify(RACY_RMW)
        assert all(c.execution_id == "x" for c in classified)

    def test_classification_is_deterministic(self):
        _, _, first, _ = classify(RACY_RMW)
        _, _, second, _ = classify(RACY_RMW)
        assert [c.outcome for c in first] == [c.outcome for c in second]


class TestOriginalOrder:
    def test_original_first_uses_global_order(self):
        # Force b to run entirely before a: b's racing ops came first.
        program, instances, classified, _ = classify(
            RACY_RMW, scheduler=ExplicitScheduler([1] * 8 + [0] * 8)
        )
        assert classified
        assert all(c.original_first == "b" for c in classified)

    def test_original_first_without_global_order(self):
        program = assemble(RACY_RMW, name="nogo")
        _, log = record_run(
            program,
            scheduler=RandomScheduler(seed=3),
            seed=3,
            capture_global_order=False,
        )
        ordered = OrderedReplay(log, program)
        instances = find_races(ordered)
        classified = RaceClassifier(ordered).classify_all(instances)
        # Falls back to the earlier-region heuristic; still classifies.
        assert all(
            c.original_first in ("a", "b") and c.outcome is not None
            for c in classified
        )


class TestStoredReplays:
    def test_outcomes_stored_when_requested(self):
        _, _, classified, _ = classify(
            RACY_RMW, config=ClassifierConfig(store_replay_outcomes=True)
        )
        succeeded = [c for c in classified if c.failure_kind is None]
        assert succeeded
        for entry in succeeded:
            assert entry.original_replay is not None
            assert entry.alternative_replay is not None

    def test_outcomes_dropped_by_default(self):
        _, _, classified, _ = classify(RACY_RMW)
        assert all(c.original_replay is None for c in classified)

    def test_replay_pair_returns_both(self):
        program, instances, classified, classifier = classify(REDUNDANT)
        original, alternative = classifier.replay_pair(instances[0])
        assert original.registers.keys() == alternative.registers.keys()


class TestSymmetry:
    def test_verdict_independent_of_side_order(self):
        """Swapping access_a/access_b must not change the verdict."""
        from repro.race.model import RaceInstance

        program, instances, classified, classifier = classify(RACY_RMW)
        for instance, entry in zip(instances, classified):
            swapped = RaceInstance(
                access_a=instance.access_b,
                access_b=instance.access_a,
                region_a=instance.region_b,
                region_b=instance.region_a,
            )
            assert classifier.classify_instance(swapped).outcome is entry.outcome
