"""Detect-stage cost: full replay vs the zero-replay from-log path.

Both paths run the *same* sweep-line detector; what differs is how its
input is materialized from RPRB container bytes:

* **replay** — decode the whole container, replay every thread through
  the interpreter (``OrderedReplay``), then build the ``AccessIndex``
  from the replayed accesses.  Work and peak memory scale with the
  *execution* (every instruction re-executes, every register state is
  materialized).
* **from-log** — ``LogView.from_bytes``: a sectioned read that decodes
  only the header, sequencer and captured-columns sections (seeking past
  register/load/syscall payloads), then fills the ``AccessIndex``
  columns straight from the captured arrays.  Work and peak memory
  scale with the *log*.

The benchmark scales the same racy loop workloads as
``bench_detect_scaling.py``, times both paths end to end (container
bytes in, canonically ordered race instances out), tracks peak memory
via ``tracemalloc``, and asserts along the way that the two paths'
instance lists — ordering included — and truncation counters are
identical.

Runs both under pytest (``pytest benchmarks/bench_detect_fromlog.py``)
and as a script::

    PYTHONPATH=src python benchmarks/bench_detect_fromlog.py --quick

Either way the measured numbers land in
``benchmarks/results/BENCH_detect_fromlog.json``.  ``--quick`` (used by
CI) keeps the equality assertions but runs single repeats on the
smaller sizes — the race-set equivalence gate, not the timing gate.
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from pathlib import Path

from repro.isa import assemble
from repro.race.happens_before import HappensBeforeDetector
from repro.record import record_run
from repro.record.binary_format import encode_log
from repro.record.serialization import load_log_bytes
from repro.replay import LogView, OrderedReplay
from repro.vm import RandomScheduler

RESULTS_DIR = Path(__file__).parent / "results"

#: Per-thread body: same racy-pair shape as bench_detect_scaling (one
#: region per sequencer), but only every fourth region touches the
#: shared variable — the other three increment a thread-private word —
#: and every region runs a register-only compute kernel.  Both tweaks
#: model real programs, where racing accesses are a sliver of the work
#: between synchronization events: the replay path re-executes every
#: kernel instruction and private access, while the from-log path seeks
#: past the kernels entirely (register ops produce no captured rows)
#: and the private accesses never produce conflicts.  Threads ``a``/``b``
#: race on ``x``, ``c``/``d`` on ``y``, so both pruning dimensions
#: (temporal overlap *and* address postings) stay exercised.
THREAD_TEMPLATE = """
.thread {t}
    li r1, {{outer}}
{t}o:
    load r2, [{shared}]
    addi r2, r2, 1
    store r2, [{shared}]
    li r4, 12
{t}k:
    addi r5, r5, 3
    subi r4, r4, 1
    bnez r4, {t}k
    sys_rand r3, 3
    li r6, 3
{t}i:
    load r2, [p{t}]
    addi r2, r2, 1
    store r2, [p{t}]
    li r4, 12
{t}j:
    addi r5, r5, 3
    subi r4, r4, 1
    bnez r4, {t}j
    sys_rand r3, 3
    subi r6, r6, 1
    bnez r6, {t}i
    subi r1, r1, 1
    bnez r1, {t}o
    halt
"""

SOURCE_TEMPLATE = (
    """
.data
x: .word 0
y: .word 0
pa: .word 0
pb: .word 0
pc: .word 0
pd: .word 0
"""
    + THREAD_TEMPLATE.format(t="a", shared="x")
    + THREAD_TEMPLATE.format(t="b", shared="x")
    + THREAD_TEMPLATE.format(t="c", shared="y")
    + THREAD_TEMPLATE.format(t="d", shared="y")
)

#: ``iters`` is the region count per thread; one region in four races.
SIZES = (20, 60, 200)
QUICK_SIZES = (12, 32)
SEED = 15


def _container_bytes(iters: int, seed: int = SEED) -> bytes:
    program = assemble(
        SOURCE_TEMPLATE.format(outer=max(iters // 4, 1)),
        name="fromlog%d" % iters,
    )
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.3),
        seed=seed,
        max_steps=400_000,
    )
    return encode_log(log)


def _detect_replay(data: bytes):
    log = load_log_bytes(data)
    detector = HappensBeforeDetector(OrderedReplay(log))
    return detector.detect(), detector


def _detect_fromlog(data: bytes):
    detector = HappensBeforeDetector(LogView.from_bytes(data))
    return detector.detect(), detector


def _time_path(run, data: bytes, repeats: int):
    """Min wall time over ``repeats`` plus peak bytes and the last result.

    Each repeat starts from the raw container bytes, so the measured
    time is the honest end-to-end detect cost: decode/replay/view build
    plus index build plus sweep.  Peak memory is tracemalloc's high-water
    mark over one traced run (tracing slows execution, so timing and
    memory use separate runs).
    """
    best = None
    instances = None
    detector = None
    for _ in range(repeats):
        start = time.perf_counter()
        instances, detector = run(data)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    tracemalloc.start()
    run(data)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return best, peak, instances, detector


def run_benchmark(sizes=SIZES, repeats: int = 3) -> dict:
    """Time replay vs from-log per size; assert byte-identical race sets."""
    rows = []
    for iters in sizes:
        data = _container_bytes(iters)
        replay_s, replay_peak, replay_instances, replay_det = _time_path(
            _detect_replay, data, repeats
        )
        fromlog_s, fromlog_peak, fromlog_instances, fromlog_det = _time_path(
            _detect_fromlog, data, repeats
        )
        if fromlog_instances != replay_instances:
            raise AssertionError(
                "from-log race set diverges from the replay path at iters=%d "
                "(%d vs %d instances)"
                % (iters, len(fromlog_instances), len(replay_instances))
            )
        if fromlog_det.truncated_locations != replay_det.truncated_locations:
            raise AssertionError(
                "truncation counters diverge at iters=%d (%d vs %d)"
                % (
                    iters,
                    fromlog_det.truncated_locations,
                    replay_det.truncated_locations,
                )
            )
        rows.append(
            {
                "iters": iters,
                "log_bytes": len(data),
                "instances": len(fromlog_instances),
                "replay_s": round(replay_s, 4),
                "fromlog_s": round(fromlog_s, 4),
                "speedup": round(replay_s / fromlog_s, 2) if fromlog_s else 0.0,
                "replay_peak_kib": round(replay_peak / 1024, 1),
                "fromlog_peak_kib": round(fromlog_peak / 1024, 1),
                "peak_ratio": round(replay_peak / fromlog_peak, 2)
                if fromlog_peak
                else 0.0,
                "races_identical": True,
            }
        )
    largest = rows[-1]
    return {
        "workloads": rows,
        "seed": SEED,
        "largest_iters": largest["iters"],
        "speedup": largest["speedup"],
        "peak_ratio": largest["peak_ratio"],
        "races_identical": all(row["races_identical"] for row in rows),
    }


def write_result(result: dict, output: Path) -> None:
    output.parent.mkdir(exist_ok=True)
    output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_fromlog_beats_replay_path(results_dir):
    result = run_benchmark(sizes=SIZES, repeats=3)
    write_result(result, results_dir / "BENCH_detect_fromlog.json")
    assert result["races_identical"]
    assert result["speedup"] >= 2.0, (
        "from-log detect must be >=2x over the replay path on the largest "
        "workload (got %.2fx)" % result["speedup"]
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes, single repeat: equivalence check, not a timing gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_detect_fromlog.json",
        help="where to write the JSON result",
    )
    args = parser.parse_args()
    result = run_benchmark(
        sizes=QUICK_SIZES if args.quick else SIZES,
        repeats=1 if args.quick else 3,
    )
    if args.quick:
        result["quick"] = True  # mark CI-noise numbers as non-authoritative
    write_result(result, args.output)
    print(json.dumps(result, indent=2, sort_keys=True))
    print(
        "race sets identical across %d workloads; largest speedup %.2fx, "
        "peak memory ratio %.2fx"
        % (len(result["workloads"]), result["speedup"], result["peak_ratio"])
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
