"""Property-based tests: binary containers round-trip across format versions.

Random :class:`ReplayLog` instances (not produced by the recorder — the
point is to cover the container, not the machine) are pushed through
encode→decode→encode for every supported version, asserting

* decode(encode(log)) reproduces every logical field,
* re-encoding the decoded log is byte-identical (the container is a
  canonical form: sorted loads/syscalls/footprint, deterministic v2
  predictor),
* the captured-columns section survives v3 and is dropped — never
  corrupted — by v1/v2 and by ``include_captured=False``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.program import StaticInstructionId
from repro.record.binary_format import (
    BINARY_FORMAT_VERSION,
    SEGMENTED_FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    decode_log,
    encode_log,
)
from repro.record.log import (
    CapturedAccessColumns,
    LoadRecord,
    ReplayLog,
    SequencerRecord,
    SyscallRecord,
    ThreadAccessColumns,
    ThreadEnd,
    ThreadLog,
)

_SETTINGS = settings(max_examples=25, deadline=None)

names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,11}", fullmatch=True)
texts = st.text(max_size=24)
uints = st.integers(min_value=0, max_value=2**40)
small_uints = st.integers(min_value=0, max_value=10_000)
sints = st.integers(min_value=-(2**32), max_value=2**32)
#: Small value pool so the v2 load predictor actually gets hits (the
#: elision branch must be exercised, not just the literal one).
load_values = st.integers(min_value=0, max_value=3)
sequencer_kinds = st.sampled_from(
    ("thread-start", "thread-end", "lock", "unlock", "syscall", "atomic")
)


@st.composite
def _static_ids(draw):
    return StaticInstructionId(block=draw(names), index=draw(small_uints))


@st.composite
def _thread_logs(draw, name, tid):
    thread = ThreadLog(
        name=name,
        tid=tid,
        block=draw(names),
        initial_registers=tuple(draw(st.lists(uints, max_size=4))),
    )
    # Loads share a small address pool so consecutive loads of one
    # address (predictable in v2) occur with useful probability.
    addresses = draw(st.lists(uints, min_size=1, max_size=3))
    for step in draw(st.lists(small_uints, max_size=8, unique=True)):
        thread.loads[step] = LoadRecord(
            thread_step=step,
            address=draw(st.sampled_from(addresses)),
            value=draw(load_values),
        )
    for step in draw(st.lists(small_uints, max_size=4, unique=True)):
        thread.syscalls[step] = SyscallRecord(
            thread_step=step, name=draw(names), result=draw(sints)
        )
    step = -1
    timestamp = draw(small_uints)
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        thread.sequencers.append(
            SequencerRecord(
                thread_step=step,
                timestamp=timestamp,
                kind=draw(sequencer_kinds),
                static_id=draw(st.none() | _static_ids()),
            )
        )
        step += draw(st.integers(min_value=0, max_value=50))
        timestamp += draw(st.integers(min_value=1, max_value=50))
    thread.pc_footprint = set(draw(st.lists(small_uints, max_size=16)))
    thread.steps = draw(small_uints)
    if draw(st.booleans()):
        thread.end = ThreadEnd(
            thread_step=draw(st.integers(min_value=-1, max_value=10_000)),
            reason=draw(st.sampled_from(("halt", "fault"))),
            fault_kind=draw(st.none() | names),
        )
    return thread


def _sorted_columns(draw, count, block):
    columns = ThreadAccessColumns()
    columns.steps = sorted(draw(st.lists(small_uints, min_size=count, max_size=count)))
    for _ in range(count):
        columns.addresses.append(draw(uints))
        columns.values.append(draw(load_values))
        columns.flags.append(draw(st.integers(min_value=0, max_value=3)))
        # Decoder rebinds the block from the owning thread record, so a
        # faithful round trip requires rows tagged with that block.
        columns.static_ids.append(
            StaticInstructionId(block=block, index=draw(small_uints))
        )
    heap_count = draw(st.integers(min_value=0, max_value=3))
    columns.heap_steps = sorted(
        draw(st.lists(small_uints, min_size=heap_count, max_size=heap_count))
    )
    for _ in range(heap_count):
        columns.heap_kinds.append(draw(st.sampled_from(("alloc", "free"))))
        columns.heap_bases.append(draw(uints))
        columns.heap_sizes.append(draw(small_uints))
    return columns


@st.composite
def replay_logs(draw):
    thread_names = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    threads = {}
    for tid, name in enumerate(thread_names):
        threads[name] = draw(_thread_logs(name, tid))
    log = ReplayLog(
        program_name=draw(names),
        program_source=draw(texts),
        threads=threads,
        seed=draw(sints),
        scheduler=draw(st.sampled_from(("", "round-robin", "random"))),
    )
    if draw(st.booleans()):
        log.global_order = [
            (draw(st.integers(min_value=0, max_value=len(threads) - 1)), draw(sints))
            for _ in range(draw(st.integers(min_value=0, max_value=6)))
        ]
    if draw(st.booleans()):
        captured = CapturedAccessColumns(predicted_loads=draw(small_uints))
        for name in thread_names:
            count = draw(st.integers(min_value=0, max_value=6))
            captured.threads[name] = _sorted_columns(draw, count, threads[name].block)
        log.captured = captured
    return log


class TestCrossVersionRoundTrip:
    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    @given(log=replay_logs())
    @_SETTINGS
    def test_decode_restores_every_field(self, version, log):
        decoded = decode_log(encode_log(log, version=version))
        # ReplayLog.__eq__ covers name/source/seed/scheduler/global_order
        # and the full per-thread record sets (captured excluded).
        assert decoded == log
        for name, thread in log.threads.items():
            assert decoded.threads[name] == thread

    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    @pytest.mark.parametrize("elide", (True, False))
    @given(log=replay_logs())
    @_SETTINGS
    def test_encode_decode_encode_is_byte_stable(self, version, elide, log):
        first = encode_log(log, version=version, elide_predicted_loads=elide)
        second = encode_log(
            decode_log(first), version=version, elide_predicted_loads=elide
        )
        assert first == second

    @given(log=replay_logs())
    @_SETTINGS
    def test_all_versions_decode_to_the_same_log(self, log):
        decoded = [decode_log(encode_log(log, version=v)) for v in SUPPORTED_VERSIONS]
        for other in decoded[1:]:
            assert other == decoded[0]

    @given(log=replay_logs())
    @_SETTINGS
    def test_elision_never_changes_the_decoded_log(self, log):
        for version in (2, 3):
            eager = decode_log(
                encode_log(log, version=version, elide_predicted_loads=True)
            )
            plain = decode_log(
                encode_log(log, version=version, elide_predicted_loads=False)
            )
            assert eager == plain == log


class TestCapturedSectionEquivalence:
    @given(log=replay_logs())
    @_SETTINGS
    def test_v3_preserves_captured_columns_exactly(self, log):
        decoded = decode_log(encode_log(log, version=3))
        if log.captured is None:
            assert decoded.captured is None
            return
        assert decoded.captured is not None
        assert decoded.captured.predicted_loads == log.captured.predicted_loads
        assert set(decoded.captured.threads) == set(log.captured.threads)
        for name, columns in log.captured.threads.items():
            assert decoded.captured.threads[name] == columns

    @pytest.mark.parametrize("version", (1, 2))
    @given(log=replay_logs())
    @_SETTINGS
    def test_older_versions_drop_captured_columns(self, version, log):
        assert decode_log(encode_log(log, version=version)).captured is None

    @given(log=replay_logs())
    @_SETTINGS
    def test_include_captured_false_matches_stripped_log(self, log):
        without = encode_log(log, version=3, include_captured=False)
        stripped = ReplayLog(
            program_name=log.program_name,
            program_source=log.program_source,
            threads=log.threads,
            seed=log.seed,
            scheduler=log.scheduler,
            global_order=log.global_order,
            captured=None,
        )
        assert without == encode_log(stripped, version=3)
        assert decode_log(without).captured is None

    def test_current_version_is_the_default(self):
        # The monolithic default stays v3; the segmented v4 container is
        # opt-in (``segment_bytes`` / ``record --segment-bytes``) but
        # fully supported by the version dispatch.
        assert BINARY_FORMAT_VERSION == 3
        assert SEGMENTED_FORMAT_VERSION == SUPPORTED_VERSIONS[-1] == 4
