"""Unit tests for the sharded worker pool (injected-runner mode)."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.service.config import RetryPolicy, ServiceConfig
from repro.service.jobs import JobSpec, JobState, JobStore, content_key_for
from repro.service.queue import BoundedJobQueue
from repro.service.workers import (
    HISTOGRAM_BOUNDS_S,
    LatencyHistograms,
    ShardedWorkerPool,
)


def _submit(store, queue, data=b"payload", priority=0, shard=0, mode="full"):
    spec = JobSpec.for_log(data, mode=mode)
    key = content_key_for(spec, None, 200_000, True, 256)
    job, _ = store.submit(spec, key, priority=priority)
    queue.put(job.job_id, shard, priority=priority)
    return job


def _pool(runner, retry=None, shards=1, detect_jobs=1, on_done=None):
    config = ServiceConfig(
        pool_size=0,
        shards=shards,
        queue_capacity=16,
        detect_jobs=detect_jobs,
        retry=retry or RetryPolicy(max_attempts=2, backoff_base_s=0.01),
    )
    store = JobStore()
    queue = BoundedJobQueue(config.queue_capacity, shards)
    pool = ShardedWorkerPool(config, store, queue, runner=runner, on_done=on_done)
    return pool, store, queue


def _wait_final(store, job, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not job.state.is_final:
        assert time.monotonic() < deadline, "job never finished: %s" % job.state
        time.sleep(0.01)
    return job


class TestLatencyHistograms:
    def test_bucketing(self):
        histograms = LatencyHistograms()
        histograms.observe("replay", 0.0008)   # first bucket (<= 1ms)
        histograms.observe("replay", 0.3)      # the 0.5s bucket
        histograms.observe("replay", 1000.0)   # unbounded last bucket
        document = histograms.to_json()["replay"]
        assert document["observations"] == 3
        assert document["counts"][0] == 1
        assert document["counts"][HISTOGRAM_BOUNDS_S.index(0.5)] == 1
        assert document["counts"][-1] == 1
        assert document["total_s"] == pytest.approx(1000.3008)


class TestSuccessPath:
    def test_job_runs_and_merges_metrics(self):
        def runner(payload):
            assert payload["kind"] == "log"
            return {
                "report": {"races": []},
                "perf": {"stage_seconds": {"replay": 0.02}, "cache_hits": 3},
                "elapsed_s": 0.05,
            }

        pool, store, queue = _pool(runner)
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()

        assert job.state is JobState.DONE
        assert job.report == {"races": []}
        assert job.elapsed_s == 0.05
        assert pool.completed == 1 and pool.failed == 0
        assert pool.perf.cache_hits == 3
        histograms = pool.histograms.to_json()
        assert histograms["replay"]["observations"] == 1
        assert histograms["total"]["observations"] == 1
        assert pool.metrics_json()["mode"] == "injected"

    def test_drain_finishes_queued_work(self):
        def runner(payload):
            time.sleep(0.02)
            return {"report": {}, "perf": {}, "elapsed_s": 0.02}

        pool, store, queue = _pool(runner)
        jobs = [_submit(store, queue, b"job-%d" % index) for index in range(5)]
        pool.start()
        assert pool.drain(timeout=10.0)
        pool.shutdown()
        assert all(job.state is JobState.DONE for job in jobs)
        assert pool.completed == 5

    def test_drain_true_implies_reports_stored(self):
        # drain() may only report success once the last job's terminal
        # transition has landed — never "queue empty" with a job still
        # RUNNING and its report unset.
        def runner(payload):
            return {"report": {"ok": True}, "perf": {}, "elapsed_s": 0.0}

        for _ in range(20):
            pool, store, queue = _pool(runner)
            job = _submit(store, queue)
            pool.start()
            assert pool.drain(timeout=10.0)
            assert job.state.is_final, "drain returned with job %s" % job.state
            assert job.report == {"ok": True}
            pool.shutdown()


class TestFailurePath:
    def test_retry_then_success(self):
        attempts = []

        def runner(payload):
            attempts.append(time.monotonic())
            if len(attempts) == 1:
                raise RuntimeError("transient failure")
            return {"report": {"ok": True}, "perf": {}, "elapsed_s": 0.01}

        pool, store, queue = _pool(runner)
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()

        assert job.state is JobState.DONE
        assert job.attempts == 2
        assert pool.retries == 1 and pool.failed == 0
        # The retry waited out its backoff delay.
        assert attempts[1] - attempts[0] >= 0.005

    def test_exhausted_retries_fail_with_error(self):
        def runner(payload):
            raise RuntimeError("permanent failure")

        pool, store, queue = _pool(runner)
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()

        assert job.state is JobState.FAILED
        assert job.attempts == 2
        assert "permanent failure" in job.error
        assert pool.failed == 1 and pool.retries == 1

    def test_no_retry_policy_fails_immediately(self):
        def runner(payload):
            raise ValueError("bad input")

        pool, store, queue = _pool(runner, retry=RetryPolicy(max_attempts=1))
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert job.state is JobState.FAILED
        assert job.attempts == 1
        assert pool.retries == 0

    def test_timeout_counts_separately(self):
        def runner(payload):
            raise TimeoutError("job exceeded 0.1s timeout")

        pool, store, queue = _pool(runner, retry=RetryPolicy(max_attempts=1))
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert pool.timeouts == 1
        assert job.state is JobState.FAILED


class TestDispatch:
    def test_cancelled_jobs_are_skipped(self):
        ran = []

        def runner(payload):
            ran.append(payload)
            return {"report": {}, "perf": {}, "elapsed_s": 0.0}

        pool, store, queue = _pool(runner)
        job = _submit(store, queue)
        store.mark_cancelled(job.job_id)
        pool.start()
        time.sleep(0.2)
        pool.shutdown()
        assert ran == []
        assert job.state is JobState.CANCELLED

    def test_sharded_dispatch_routes_by_shard(self):
        seen = []

        def runner(payload):
            seen.append(payload["log_data"])
            return {"report": {}, "perf": {}, "elapsed_s": 0.0}

        pool, store, queue = _pool(runner, shards=2)
        first = _submit(store, queue, b"shard-zero", shard=0)
        second = _submit(store, queue, b"shard-one", shard=1)
        pool.start()
        assert pool.drain(timeout=5.0)
        pool.shutdown()
        assert {first.state, second.state} == {JobState.DONE}
        assert sorted(seen) == [b"shard-one", b"shard-zero"]


class TestInlineContextIsolation:
    def test_worker_context_is_per_thread(self):
        # Inline mode with shards > 1 runs run_job_payload on multiple
        # shard threads concurrently; each thread must build and keep
        # its own engine rather than racing on one shared context.
        from repro.service import workers

        config = ServiceConfig(pool_size=0, shards=2).to_dict()
        main_context = getattr(workers._WORKER_TLS, "context", None)
        engines = [None, None]

        def build(index):
            workers._worker_init(config)
            engines[index] = workers._WORKER_TLS.context["engine"]

        threads = [
            threading.Thread(target=build, args=(index,)) for index in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        first, second = engines
        assert first is not None and second is not None
        assert first is not second
        # Other threads' initialization never leaks into this thread.
        assert getattr(workers._WORKER_TLS, "context", None) is main_context


def _segmented_bytes():
    """A small v4 segmented container (the spool-eligible upload shape)."""
    from repro.isa import assemble
    from repro.record import record_run
    from repro.record.binary_format import encode_log_segmented
    from repro.vm import RandomScheduler

    source = """
.data
counter: .word 0
.thread a
    load r1, [counter]
    addi r1, r1, 1
    store r1, [counter]
    halt
.thread b
    load r1, [counter]
    addi r1, r1, 2
    store r1, [counter]
    halt
"""
    program = assemble(source, name="spool_unit")
    _, log = record_run(
        program, scheduler=RandomScheduler(seed=9, switch_probability=0.4), seed=9
    )
    return encode_log_segmented(log, segment_bytes=64)


class TestSpoolLifecycle:
    """The shard thread owns the parallel-path spool: it writes it before
    dispatch and unlinks it in ``finally`` — success, failure, or a worker
    process recycled mid-job (the leak this guards against)."""

    @pytest.fixture(scope="class")
    def seg_data(self):
        return _segmented_bytes()

    def _capture_runner(self, seen):
        def runner(payload):
            path = payload.get("spool_path")
            seen.append(path)
            if path is not None:
                # Alive and byte-faithful while the job runs.
                with open(path, "rb") as handle:
                    assert handle.read() == payload["log_data"]
            return {"report": {"detect_version": 0}, "perf": {}, "elapsed_s": 0.0}

        return runner

    @pytest.mark.parametrize("mode", ["detect", "stream"])
    def test_spool_created_and_removed_on_success(self, seg_data, mode):
        seen = []
        pool, store, queue = _pool(self._capture_runner(seen), detect_jobs=2)
        job = _submit(store, queue, seg_data, mode=mode)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert job.state is JobState.DONE
        assert len(seen) == 1 and seen[0] is not None
        assert not os.path.exists(seen[0])

    def test_spool_removed_when_runner_raises(self, seg_data):
        # The regression: a worker terminated (or failing) mid-job must
        # not strand its spool — cleanup lives on the shard thread.
        seen = []

        def runner(payload):
            seen.append(payload["spool_path"])
            assert os.path.exists(payload["spool_path"])
            raise RuntimeError("worker died mid-job")

        pool, store, queue = _pool(
            runner, retry=RetryPolicy(max_attempts=1), detect_jobs=2
        )
        job = _submit(store, queue, seg_data, mode="stream")
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert job.state is JobState.FAILED
        assert len(seen) == 1
        assert not os.path.exists(seen[0])

    def test_every_retry_attempt_gets_a_fresh_spool(self, seg_data):
        seen = []

        def runner(payload):
            seen.append(payload["spool_path"])
            if len(seen) == 1:
                raise RuntimeError("transient")
            return {"report": {}, "perf": {}, "elapsed_s": 0.0}

        pool, store, queue = _pool(runner, detect_jobs=2)
        job = _submit(store, queue, seg_data, mode="detect")
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert job.state is JobState.DONE
        assert len(seen) == 2 and seen[0] != seen[1]
        assert not any(os.path.exists(path) for path in seen)

    def test_no_spool_for_ineligible_jobs(self, seg_data):
        seen = []
        runner = self._capture_runner(seen)

        # full mode, serial detect_jobs, and non-segmented data all skip
        # the spool: the worker never self-spools for those either.
        pool, store, queue = _pool(runner, detect_jobs=2)
        jobs = [
            _submit(store, queue, seg_data, mode="full"),
            _submit(store, queue, b"not-a-v4-container", mode="detect"),
        ]
        pool.start()
        for job in jobs:
            _wait_final(store, job)
        pool.shutdown()

        serial_pool, serial_store, serial_queue = _pool(runner, detect_jobs=1)
        job = _submit(serial_store, serial_queue, seg_data, mode="detect")
        serial_pool.start()
        _wait_final(serial_store, job)
        serial_pool.shutdown()

        assert seen == [None, None, None]


class TestOnDoneHook:
    def test_on_done_sees_the_stored_report(self):
        absorbed = []

        def runner(payload):
            return {"report": {"ok": True}, "perf": {}, "elapsed_s": 0.0}

        pool, store, queue = _pool(runner, on_done=absorbed.append)
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert len(absorbed) == 1
        assert absorbed[0].job_id == job.job_id
        assert absorbed[0].report == {"ok": True}

    def test_on_done_failure_never_fails_the_job(self):
        def runner(payload):
            return {"report": {}, "perf": {}, "elapsed_s": 0.0}

        def exploding(job):
            raise RuntimeError("absorb blew up")

        pool, store, queue = _pool(runner, on_done=exploding)
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert job.state is JobState.DONE
        assert pool.completed == 1 and pool.failed == 0

    def test_on_done_not_called_for_failed_jobs(self):
        absorbed = []

        def runner(payload):
            raise RuntimeError("boom")

        pool, store, queue = _pool(
            runner, retry=RetryPolicy(max_attempts=1), on_done=absorbed.append
        )
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert job.state is JobState.FAILED
        assert absorbed == []


class TestMetricsSnapshot:
    def test_perf_snapshot_during_concurrent_merges(self):
        # /metrics serializes pool perf while workers merge results;
        # the snapshot must be taken under the metrics lock so dict
        # iteration never races a concurrent merge.
        def runner(payload):
            index = int(payload["log_data"].split(b"-")[1])
            return {
                "report": {},
                "perf": {"stage_seconds": {"stage-%d" % index: 0.001}},
                "elapsed_s": 0.001,
            }

        pool, store, queue = _pool(runner, shards=2)
        jobs = [
            _submit(store, queue, b"metrics-%d" % index, shard=index % 2)
            for index in range(16)
        ]
        errors = []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                try:
                    snapshot = pool.perf_snapshot()
                    assert snapshot["completed"] >= 0
                    pool.metrics_json()
                except Exception as error:  # noqa: BLE001 - the assertion
                    errors.append(error)
                    return

        scraper = threading.Thread(target=scrape, daemon=True)
        scraper.start()
        pool.start()
        assert pool.drain(timeout=10.0)
        stop.set()
        scraper.join(5.0)
        pool.shutdown()
        assert errors == []
        assert all(job.state is JobState.DONE for job in jobs)
        assert pool.perf_snapshot()["completed"] == 16
