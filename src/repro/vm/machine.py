"""The multi-threaded machine: run loop, observer fan-out, sequencer clock.

This is the "native execution" of the paper: a deterministic function of
``(program, scheduler, seed)``.  All nondeterminism a real machine would
exhibit (preemption points, syscall results, allocator addresses) is
reproduced here under explicit control, which is what lets the test suite
validate the recorder and replayer against ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.program import Program, StaticInstructionId
from .errors import DeadlockError, MemoryFault, ScheduleError, StepLimitError
from .memory import Memory
from .observers import Observer
from .scheduler import RoundRobinScheduler, Scheduler
from .sync import LockTable
from .syscalls import Syscalls
from .thread import StepOutcome, ThreadState, ThreadStatus


@dataclass
class ThreadOutcome:
    """Final state of one thread after a run."""

    name: str
    tid: int
    status: str
    steps: int
    registers: Tuple[int, ...]
    fault: Optional[str] = None
    fault_kind: Optional[str] = None


@dataclass
class MachineResult:
    """Everything observable about one complete execution."""

    program_name: str
    output: List[Tuple[str, int]]
    global_steps: int
    threads: Dict[str, ThreadOutcome]
    memory: Dict[int, int]
    sequencer_count: int
    seed: int

    @property
    def faulted_threads(self) -> List[str]:
        return [name for name, outcome in self.threads.items() if outcome.fault]

    def summary(self) -> str:
        lines = [
            "program %s: %d steps, %d sequencers, output=%r"
            % (self.program_name, self.global_steps, self.sequencer_count, self.output)
        ]
        for outcome in self.threads.values():
            line = "  thread %s: %s after %d steps" % (
                outcome.name,
                outcome.status,
                outcome.steps,
            )
            if outcome.fault:
                line += " [FAULT: %s]" % outcome.fault
            lines.append(line)
        return "\n".join(lines)


class Machine:
    """Executes a :class:`Program` under a :class:`Scheduler`."""

    def __init__(
        self,
        program: Program,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        max_steps: int = 200_000,
        observers: Sequence[Observer] = (),
        fast_path: bool = True,
    ):
        self.program = program
        self.scheduler = scheduler or RoundRobinScheduler()
        self.seed = seed
        self.max_steps = max_steps
        self.observers: List[Observer] = list(observers)
        self.fast_path = fast_path

        self.memory = Memory(program.initial_memory())
        self.locks = LockTable()
        self.syscalls = Syscalls(self.memory, random.Random(seed))
        self.threads: List[ThreadState] = [
            ThreadState(tid, name, program.block_for_thread(name))
            for tid, name in enumerate(program.threads)
        ]
        if fast_path:
            for thread in self.threads:
                thread.attach_decoded()
        self.global_step = 0
        self._sequencer_clock = 0
        self._last_tid: Optional[int] = None
        self._yielded_tid: Optional[int] = None
        self._current_tid: Optional[int] = None
        self._runnable_dirty = False
        self._ran = False

    # ------------------------------------------------------------------
    # Observer fan-out (called by threads mid-instruction).
    # ------------------------------------------------------------------

    def emit_sequencer(
        self,
        thread: ThreadState,
        kind: str,
        static_id: Optional[StaticInstructionId],
        thread_step: Optional[int] = None,
    ) -> int:
        self._sequencer_clock += 1
        step = thread.steps if thread_step is None else thread_step
        for observer in self.observers:
            observer.on_sequencer(thread.tid, step, self._sequencer_clock, kind, static_id)
        return self._sequencer_clock

    def notify_load(
        self,
        thread: ThreadState,
        static_id: StaticInstructionId,
        address: int,
        value: int,
        is_sync: bool,
    ) -> None:
        for observer in self.observers:
            observer.on_load(thread.tid, thread.steps, static_id, address, value, is_sync)

    def notify_store(
        self,
        thread: ThreadState,
        static_id: StaticInstructionId,
        address: int,
        old_value: int,
        new_value: int,
        is_sync: bool,
    ) -> None:
        for observer in self.observers:
            observer.on_store(
                thread.tid, thread.steps, static_id, address, old_value, new_value, is_sync
            )

    def notify_syscall(
        self,
        thread: ThreadState,
        static_id: StaticInstructionId,
        name: str,
        result: int,
        arg: Optional[int] = None,
    ) -> None:
        for observer in self.observers:
            observer.on_syscall(
                thread.tid, thread.steps, static_id, name, result, arg
            )

    def retire(self, thread: ThreadState, static_id: StaticInstructionId) -> None:
        for observer in self.observers:
            observer.on_step(self.global_step, thread.tid, thread.steps, static_id)
        self.global_step += 1

    # ------------------------------------------------------------------
    # Thread lifecycle (called by threads and the run loop).
    # ------------------------------------------------------------------

    def block_thread(self, thread: ThreadState, lock_address: int) -> None:
        thread.status = ThreadStatus.BLOCKED
        thread.blocked_on = lock_address
        self._runnable_dirty = True
        self.locks.add_waiter(thread.tid, lock_address)

    def wake_thread(self, tid: int) -> None:
        thread = self.threads[tid]
        if thread.status is ThreadStatus.BLOCKED:
            thread.status = ThreadStatus.RUNNABLE
            thread.blocked_on = None
            self._runnable_dirty = True

    def end_thread(self, thread: ThreadState, reason: str) -> None:
        thread.status = ThreadStatus.HALTED
        self._runnable_dirty = True
        self.emit_sequencer(thread, kind="thread_end", static_id=None)
        for observer in self.observers:
            observer.on_thread_end(thread.tid, thread.steps, reason, None)

    def fault_thread(self, thread: ThreadState, fault: MemoryFault) -> None:
        thread.status = ThreadStatus.FAULTED
        thread.fault = fault
        self._runnable_dirty = True
        self.emit_sequencer(thread, kind="thread_end", static_id=None)
        for observer in self.observers:
            observer.on_thread_end(thread.tid, thread.steps, "fault", fault.kind)

    def note_yield(self) -> None:
        """A thread yielded: another runnable thread (if any) goes next."""
        self._last_tid = None
        self._yielded_tid = (
            self._current_tid if self._current_tid is not None else None
        )

    # ------------------------------------------------------------------
    # Run loop.
    # ------------------------------------------------------------------

    def run(self) -> MachineResult:
        """Execute to completion and return the :class:`MachineResult`.

        A machine instance is single-use: rerunning would need fresh memory
        and thread state, so construct a new machine per execution.
        """
        if self._ran:
            raise ScheduleError("Machine instances are single-use; construct a new one")
        self._ran = True

        for thread in self.threads:
            for observer in self.observers:
                observer.on_thread_start(thread.tid, thread.name, thread.block.name)
            self.emit_sequencer(thread, kind="thread_start", static_id=None, thread_step=-1)

        if self.fast_path:
            self._run_fast()
        else:
            self._run_generic()
        return self._result()

    def _run_generic(self) -> None:
        """The seed interpreter loop: rebuilds the runnable list every
        iteration and dispatches through :meth:`ThreadState.step`'s generic
        operand resolution.  Kept as the reference implementation the fast
        path is tested against."""
        iterations = 0
        iteration_limit = self.max_steps * 2
        while True:
            runnable = [
                thread.tid
                for thread in self.threads
                if thread.status is ThreadStatus.RUNNABLE
            ]
            if not runnable:
                if any(
                    thread.status is ThreadStatus.BLOCKED for thread in self.threads
                ):
                    raise DeadlockError(
                        "all live threads are blocked: %s"
                        % {
                            thread.name: thread.blocked_on
                            for thread in self.threads
                            if thread.status is ThreadStatus.BLOCKED
                        }
                    )
                break
            candidates = runnable
            if self._yielded_tid is not None:
                others = [tid for tid in runnable if tid != self._yielded_tid]
                if others:
                    candidates = others
                self._yielded_tid = None
            tid = self.scheduler.pick(candidates, self._last_tid, self.global_step)
            if tid not in candidates:
                raise ScheduleError("scheduler picked non-runnable thread %d" % tid)
            thread = self.threads[tid]
            self._current_tid = tid
            outcome = thread.step(self)
            self._current_tid = None
            if outcome is StepOutcome.RETIRED:
                self._last_tid = tid
            elif outcome is StepOutcome.BLOCKED:
                self._last_tid = None
            if self.global_step > self.max_steps:
                raise StepLimitError(
                    "exceeded max_steps=%d (runaway schedule?)" % self.max_steps
                )
            iterations += 1
            if iterations > iteration_limit:
                raise StepLimitError("exceeded iteration limit (livelock?)")

    def _run_fast(self) -> None:
        """The predecoded loop.  Equivalent to :meth:`_run_generic` step for
        step — same runnable ordering (tid-ascending), same yield filter,
        same scheduler calls and limit checks — but the runnable list is
        maintained incrementally (rebuilt only when a lifecycle hook flips
        a thread's status) and dispatch goes through
        :meth:`ThreadState.step_fast`."""
        threads = self.threads
        scheduler_pick = self.scheduler.pick
        max_steps = self.max_steps
        iterations = 0
        iteration_limit = max_steps * 2
        runnable = [
            thread.tid for thread in threads if thread.status is ThreadStatus.RUNNABLE
        ]
        self._runnable_dirty = False
        while True:
            if self._runnable_dirty:
                runnable = [
                    thread.tid
                    for thread in threads
                    if thread.status is ThreadStatus.RUNNABLE
                ]
                self._runnable_dirty = False
            if not runnable:
                if any(thread.status is ThreadStatus.BLOCKED for thread in threads):
                    raise DeadlockError(
                        "all live threads are blocked: %s"
                        % {
                            thread.name: thread.blocked_on
                            for thread in threads
                            if thread.status is ThreadStatus.BLOCKED
                        }
                    )
                break
            candidates = runnable
            if self._yielded_tid is not None:
                others = [tid for tid in runnable if tid != self._yielded_tid]
                if others:
                    candidates = others
                self._yielded_tid = None
            tid = scheduler_pick(candidates, self._last_tid, self.global_step)
            if tid not in candidates:
                raise ScheduleError("scheduler picked non-runnable thread %d" % tid)
            thread = threads[tid]
            self._current_tid = tid
            outcome = thread.step_fast(self)
            self._current_tid = None
            if outcome is StepOutcome.RETIRED:
                self._last_tid = tid
            elif outcome is StepOutcome.BLOCKED:
                self._last_tid = None
            if self.global_step > max_steps:
                raise StepLimitError(
                    "exceeded max_steps=%d (runaway schedule?)" % max_steps
                )
            iterations += 1
            if iterations > iteration_limit:
                raise StepLimitError("exceeded iteration limit (livelock?)")

    def _result(self) -> MachineResult:
        return MachineResult(
            program_name=self.program.name,
            output=list(self.syscalls.output),
            global_steps=self.global_step,
            threads={
                thread.name: ThreadOutcome(
                    name=thread.name,
                    tid=thread.tid,
                    status=thread.status.value,
                    steps=thread.steps,
                    registers=thread.registers.snapshot(),
                    fault=str(thread.fault) if thread.fault else None,
                    fault_kind=str(thread.fault.kind) if thread.fault else None,
                )
                for thread in self.threads
            },
            memory=self.memory.snapshot(),
            sequencer_count=self._sequencer_clock,
            seed=self.seed,
        )


def run_program(
    program: Program,
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    max_steps: int = 200_000,
    observers: Sequence[Observer] = (),
    fast_path: bool = True,
) -> MachineResult:
    """Convenience: construct a machine and run it to completion."""
    machine = Machine(
        program,
        scheduler=scheduler,
        seed=seed,
        max_steps=max_steps,
        observers=observers,
        fast_path=fast_path,
    )
    return machine.run()
