"""Error types raised by the ISA layer (assembly and program validation)."""

from __future__ import annotations


class IsaError(Exception):
    """Base class for all ISA-layer errors."""


class AssemblyError(IsaError):
    """Raised when assembly source text cannot be assembled.

    Carries the 1-based source line number when known so tooling can point
    the user at the offending line.
    """

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class UnknownOpcodeError(AssemblyError):
    """Raised for a mnemonic that is not in the opcode table."""


class OperandError(AssemblyError):
    """Raised when an instruction's operands do not match its signature."""


class DuplicateSymbolError(AssemblyError):
    """Raised when a label, data symbol, or thread name is defined twice."""


class UndefinedSymbolError(AssemblyError):
    """Raised when an instruction references a label or symbol never defined."""


class ProgramValidationError(IsaError):
    """Raised when a structurally invalid Program is constructed."""
