"""Property-based tests: fleet-store absorption is a commutative,
idempotent fold.

The store's multi-instance contract reduces to one algebraic claim: the
compacted snapshot is a function of the *set* of absorbed jobs (plus the
rule set), not of the sequence of operations that delivered them.  So we
generate arbitrary batches of job reports, feed permutations of them —
with duplicates, interleaved compactions, and import-merge detours —
into independent stores, and demand byte-identical snapshots and report
documents at the end.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.fleet import FleetStore, SuppressionRule

_SETTINGS = settings(max_examples=30, deadline=None)

_RACES = ["x:1|x:5", "y:2|y:7", "z:0|z:3", "w:4|w:9"]
_DIGESTS = ["", "aa+bb", "cc+dd"]

race_texts = st.sampled_from(_RACES)
counts = st.integers(min_value=0, max_value=9)


@st.composite
def export_races(draw):
    race = draw(race_texts)
    state_change = draw(counts)
    replay_failure = draw(counts)
    no_state_change = draw(counts)
    digest = draw(st.sampled_from(_DIGESTS))
    harmful = bool(state_change or replay_failure)
    scenarios = (
        [{"batch_key": {"region_content": digest.split("+")}}]
        if harmful and digest
        else []
    )
    return {
        "race": race,
        "classification": (
            "potentially-harmful" if harmful else "potentially-benign"
        ),
        "instances": {
            "total": no_state_change + state_change + replay_failure,
            "no_state_change": no_state_change,
            "state_change": state_change,
            "replay_failure": replay_failure,
        },
        "executions": draw(
            st.lists(st.sampled_from(["e1", "e2", "e3"]), max_size=2)
        ),
        "scenarios": scenarios,
    }


@st.composite
def reports(draw):
    if draw(st.booleans()):
        return {
            "export_version": 1,
            "program": draw(st.sampled_from(["prog_a", "prog_b"])),
            "races": draw(st.lists(export_races(), max_size=3)),
        }
    return {
        "detect_version": 1,
        "program": draw(st.sampled_from(["prog_a", "prog_b"])),
        "execution": draw(st.sampled_from(["e1", "e2"])),
        "unique_races": [
            {"race": race, "instances": draw(counts)}
            for race in draw(st.lists(race_texts, max_size=2, unique=True))
        ],
    }


@st.composite
def job_batches(draw):
    """[(report, job_key, observed_at)] — keys unique within a batch."""
    batch = draw(st.lists(reports(), min_size=1, max_size=5))
    return [
        (report, "job-%d" % index, float(index))
        for index, report in enumerate(batch)
    ]


def _absorb_all(store, jobs):
    for report, key, stamp in jobs:
        store.absorb_report(report, key, observed_at=stamp)


def _snapshot(store):
    store.compact()
    return store.backend.read_snapshot()


class TestAbsorptionAlgebra:
    @given(jobs=job_batches(), order=st.randoms(use_true_random=False))
    @_SETTINGS
    def test_any_order_with_duplicates_converges(self, jobs, order):
        """The tentpole property: same job set, any arrival order, any
        duplication — byte-identical compacted snapshots."""
        shuffled = list(jobs)
        order.shuffle(shuffled)
        duplicates = [order.choice(shuffled) for _ in range(len(shuffled))]

        reference, scrambled = FleetStore(), FleetStore()
        _absorb_all(reference, jobs)
        _absorb_all(scrambled, shuffled + duplicates + shuffled)
        assert _snapshot(reference) == _snapshot(scrambled)
        assert reference.report_bytes() == scrambled.report_bytes()

    @given(jobs=job_batches(), cut=st.integers(min_value=0, max_value=5))
    @_SETTINGS
    def test_interleaved_compaction_changes_nothing(self, jobs, cut):
        """Compacting mid-stream (journal → snapshot fold at an arbitrary
        point) must not alter the final state."""
        straight, chopped = FleetStore(), FleetStore()
        _absorb_all(straight, jobs)
        position = min(cut, len(jobs))
        _absorb_all(chopped, jobs[:position])
        chopped.compact()
        _absorb_all(chopped, jobs[position:])
        assert _snapshot(straight) == _snapshot(chopped)

    @given(jobs=job_batches())
    @_SETTINGS
    def test_compaction_is_idempotent(self, jobs):
        store = FleetStore()
        _absorb_all(store, jobs)
        first = _snapshot(store)
        assert _snapshot(store) == first

    @given(jobs=job_batches(), split=st.integers(min_value=0, max_value=5))
    @_SETTINGS
    def test_import_merge_commutes_with_direct_absorption(self, jobs, split):
        """Splitting the jobs across two hosts and cross-importing their
        exports lands on the same state as one host absorbing everything."""
        position = min(split, len(jobs))
        left, right, direct = FleetStore(), FleetStore(), FleetStore()
        _absorb_all(left, jobs[:position])
        _absorb_all(right, jobs[position:])
        _absorb_all(direct, jobs)

        left.import_document(right.export_document())
        right.import_document(left.export_document())
        left.import_document(right.export_document())  # re-import: no-op
        assert _snapshot(left) == _snapshot(right) == _snapshot(direct)

    @given(jobs=job_batches(), order=st.randoms(use_true_random=False))
    @_SETTINGS
    def test_suppression_order_is_immaterial_too(self, jobs, order):
        rules = [
            SuppressionRule(scope="race", race=_RACES[0], reason="r1"),
            SuppressionRule(scope="exact", race=_RACES[1], digest="aa+bb"),
        ]
        forward, backward = FleetStore(), FleetStore()
        for rule in rules:
            forward.suppress(rule)
        _absorb_all(forward, jobs)
        shuffled = list(jobs)
        order.shuffle(shuffled)
        _absorb_all(backward, shuffled)
        for rule in reversed(rules):
            backward.suppress(rule)
        assert _snapshot(forward) == _snapshot(backward)
        assert forward.report_bytes() == backward.report_bytes()


class TestFileBackendParity:
    @given(jobs=job_batches(), order=st.randoms(use_true_random=False))
    @_SETTINGS
    def test_disk_stores_converge_like_memory_stores(
        self, jobs, order, tmp_path_factory
    ):
        """The same order-independence holds through the locked file
        backend, including a reopen (journal replay) in the middle."""
        base = tmp_path_factory.mktemp("fleet")
        first = FleetStore.open(base / "a")
        _absorb_all(first, jobs)

        shuffled = list(jobs)
        order.shuffle(shuffled)
        half = len(shuffled) // 2
        second = FleetStore.open(base / "b")
        _absorb_all(second, shuffled[:half])
        second.close()
        second = FleetStore.open(base / "b")  # replay the journal
        _absorb_all(second, shuffled[half:] + shuffled[:half])
        assert _snapshot(first) == _snapshot(second)
        assert first.report_bytes() == second.report_bytes()
