"""Per-race fleet aggregates.

A fleet record is one unique race as the whole fleet has seen it:
keyed by ``(program, static race key text, region-content digest)``,
carrying one :class:`Contribution` cell per absorbed job.  Keeping the
per-job cells (rather than folding them into running totals) is what
makes absorption commutative and idempotent — any two stores that have
absorbed the same set of jobs hold byte-identical records, regardless
of arrival order, duplicates, or which service instance did the work.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

FLEET_SCHEMA_VERSION = 1

#: Classification labels shared with :mod:`repro.race.outcomes` — spelled
#: as strings here because fleet records round-trip through JSON.
HARMFUL = "potentially-harmful"
BENIGN = "potentially-benign"
#: A race sighted by detect-only jobs: no replay verdicts yet.
DETECTED = "detected"


def record_id_for(program: str, race: str, digest: str) -> str:
    """Stable short id for one fleet record, used in URLs and the CLI."""
    body = "repro-fleet|%s|%s|%s" % (program, race, digest)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


@dataclass
class Contribution:
    """One job's evidence about one race."""

    no_state_change: int = 0
    state_change: int = 0
    replay_failure: int = 0
    #: Detection-only sightings (no replay verdict).
    detected: int = 0
    executions: List[str] = field(default_factory=list)
    classification: str = DETECTED
    #: Wall-clock time the fleet first saw this job (journaled once, so
    #: every instance sharing the store agrees on it).
    observed_at: Optional[float] = None

    def to_json(self) -> Dict:
        return {
            "no_state_change": self.no_state_change,
            "state_change": self.state_change,
            "replay_failure": self.replay_failure,
            "detected": self.detected,
            "executions": sorted(self.executions),
            "classification": self.classification,
            "observed_at": self.observed_at,
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "Contribution":
        return cls(
            no_state_change=int(payload.get("no_state_change", 0)),
            state_change=int(payload.get("state_change", 0)),
            replay_failure=int(payload.get("replay_failure", 0)),
            detected=int(payload.get("detected", 0)),
            executions=sorted(payload.get("executions", [])),
            classification=payload.get("classification", DETECTED),
            observed_at=payload.get("observed_at"),
        )


@dataclass
class FleetRecord:
    """Everything the fleet knows about one unique race."""

    race: str
    digest: str
    program: str
    #: Per-job evidence cells, keyed by the job's content key.
    contributions: Dict[str, Contribution] = field(default_factory=dict)

    @property
    def record_id(self) -> str:
        return record_id_for(self.program, self.race, self.digest)

    def counts(self) -> Dict[str, int]:
        """Outcome totals summed over every contributing job."""
        totals = {
            "no_state_change": 0,
            "state_change": 0,
            "replay_failure": 0,
            "detected": 0,
        }
        for cell in self.contributions.values():
            totals["no_state_change"] += cell.no_state_change
            totals["state_change"] += cell.state_change
            totals["replay_failure"] += cell.replay_failure
            totals["detected"] += cell.detected
        totals["total"] = sum(totals.values())
        return totals

    @property
    def classification(self) -> str:
        """The paper's rule over fleet-wide evidence.

        Any state change or replay failure anywhere in the fleet makes
        the race potentially harmful; otherwise replayed-but-unchanged
        evidence makes it potentially benign; a race only ever sighted
        by detection is merely detected.
        """
        counts = self.counts()
        if counts["state_change"] or counts["replay_failure"]:
            return HARMFUL
        if counts["no_state_change"]:
            return BENIGN
        return DETECTED

    def executions(self) -> List[str]:
        merged = set()
        for cell in self.contributions.values():
            merged.update(cell.executions)
        return sorted(merged)

    @property
    def first_seen(self) -> Optional[float]:
        stamps = [
            cell.observed_at
            for cell in self.contributions.values()
            if cell.observed_at is not None
        ]
        return min(stamps) if stamps else None

    @property
    def last_seen(self) -> Optional[float]:
        stamps = [
            cell.observed_at
            for cell in self.contributions.values()
            if cell.observed_at is not None
        ]
        return max(stamps) if stamps else None

    def to_json(self) -> Dict:
        return {
            "race": self.race,
            "digest": self.digest,
            "program": self.program,
            "contributions": {
                job_key: self.contributions[job_key].to_json()
                for job_key in sorted(self.contributions)
            },
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "FleetRecord":
        return cls(
            race=payload["race"],
            digest=payload.get("digest", ""),
            program=payload.get("program", ""),
            contributions={
                job_key: Contribution.from_json(cell)
                for job_key, cell in payload.get("contributions", {}).items()
            },
        )

    def merged_with(self, other: "FleetRecord") -> "FleetRecord":
        """Union of two stores' knowledge of the same race.

        Cells are merged per job key.  When both sides hold a cell for
        the same job (e.g. two hosts independently absorbed it with
        different clocks), the lexicographically smaller canonical JSON
        wins — an arbitrary but commutative pick, so cross-host merge
        order never matters.
        """
        merged = FleetRecord(race=self.race, digest=self.digest, program=self.program)
        merged.contributions = dict(self.contributions)
        for job_key, cell in other.contributions.items():
            mine = merged.contributions.get(job_key)
            if mine is None:
                merged.contributions[job_key] = cell
            else:
                merged.contributions[job_key] = min(
                    (mine, cell),
                    key=lambda c: json.dumps(c.to_json(), sort_keys=True),
                )
        return merged
