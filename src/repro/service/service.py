"""The analysis service facade: store + queue + pool behind one object.

:class:`AnalysisService` is what the HTTP layer (and tests) talk to.  It
owns the journaled :class:`~repro.service.jobs.JobStore`, the bounded
sharded :class:`~repro.service.queue.BoundedJobQueue` and the
:class:`~repro.service.workers.ShardedWorkerPool`, and implements the
admission protocol:

1. compute the job's content key (the SuiteCache content hash for
   workload jobs);
2. if a live job with that key exists — queued, running, or done —
   return it (idempotent submission, no queue slot consumed);
3. otherwise journal the job (state queued) and only then publish its
   queue entry, so a shard that pops the id always finds a runnable
   job; if the bounded queue rejects, the journaled admission is
   rolled back and the client sees pure backpressure (429).

On :meth:`start`, jobs recovered from the journal (queued at crash time,
or running — re-queued by the store) are re-enqueued before workers
begin, so a restarted server picks up exactly where it died without
duplicating finished work.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.perf import PerfStats
from ..fleet import FleetStore, SuppressionRule
from ..race.model import static_key_from_text
from ..record.serialization import load_log_bytes, load_log_sections_bytes
from ..workloads.suite import all_workloads
from .config import ServiceConfig
from .jobs import Job, JobSpec, JobState, JobStore, content_key_for
from .queue import BoundedJobQueue, QueueClosed, QueueFull
from .workers import ShardedWorkerPool


class UnknownWorkloadError(ValueError):
    """The submitted workload name is not in the suite registry."""


class BadLogError(ValueError):
    """The uploaded bytes do not decode as a replay log."""


class AnalysisService:
    """One deployment of the replay-analysis service."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        runner: Optional[Callable[[dict], dict]] = None,
    ):
        self.config = config or ServiceConfig()
        if self.config.journal_path:
            self.store = JobStore.open(self.config.journal_path)
        else:
            self.store = JobStore()
        self.queue = BoundedJobQueue(
            self.config.queue_capacity, self.config.effective_shards()
        )
        self.fleet: Optional[FleetStore] = (
            FleetStore.open(self.config.fleet_dir)
            if self.config.fleet_dir
            else None
        )
        self._fleet_lock = threading.Lock()
        self._fleet_perf = PerfStats()
        self.pool = ShardedWorkerPool(
            self.config,
            self.store,
            self.queue,
            runner=runner,
            on_done=self._absorb_job if self.fleet is not None else None,
        )
        self.workloads = all_workloads()
        self.started_at = time.monotonic()
        self.recovered_jobs = 0
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def start(self, workers: bool = True) -> "AnalysisService":
        """Re-enqueue journal-recovered jobs, then start the pool.

        ``workers=False`` brings the service up without dispatch threads
        — submissions queue but nothing runs (tests use this to pin jobs
        in the queue; a later ``start()`` call can attach workers).
        """
        if not self._started:
            for job in self.store.pending():
                self.queue.put(
                    job.job_id,
                    self.shard_for(job.content_key),
                    priority=job.priority,
                    force=True,
                )
                if job.recovered:
                    self.recovered_jobs += 1
            # Fleet heal: re-absorb every finished job's verdicts.  A
            # crash between a job's DONE journal write and its fleet
            # absorb would otherwise lose the aggregates; absorption is
            # idempotent on the content key, so the common case — all
            # already absorbed — is a no-op.
            if self.fleet is not None:
                for job in self.store.finished():
                    self._absorb_job(job)
            self._started = True
        if workers:
            self.pool.start()
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        self.pool.shutdown(drain=drain, timeout=timeout)
        self.store.close()
        if self.fleet is not None:
            self.fleet.close()

    # -- submission ------------------------------------------------------

    def shard_for(self, content_key: str) -> int:
        return int(content_key[:8], 16) % self.config.effective_shards()

    def _admit(self, spec: JobSpec, content_key: str, priority: int) -> Tuple[Job, bool]:
        # Journal first, enqueue second: the queue entry is published
        # only once the job exists in the store (state QUEUED), so a
        # shard thread that pops the id always resolves it to runnable
        # work.  The store lock is held across the non-blocking put so
        # concurrent duplicate submissions stay idempotent; a queue
        # rejection rolls the journaled admission back before the
        # client sees the 429.
        with self.store._lock:
            existing = self.store.by_content_key(content_key)
            prior_state = prior_error = None
            if existing is not None:
                if existing.state not in (JobState.FAILED, JobState.CANCELLED):
                    return existing, False
                prior_state, prior_error = existing.state, existing.error
            job, created = self.store.submit(spec, content_key, priority=priority)
            try:
                self.queue.put(
                    job.job_id, self.shard_for(content_key), priority=priority
                )
            except (QueueFull, QueueClosed):
                self.store.rollback_submit(job.job_id, prior_state, prior_error)
                raise
            return job, created

    @staticmethod
    def _check_mode(mode: str) -> str:
        if mode not in ("full", "detect", "stream"):
            raise ValueError(
                "unknown job mode %r (expected 'full', 'detect' or 'stream')"
                % mode
            )
        return mode

    def submit_workload(
        self,
        name: str,
        seed: int = 0,
        switch_probability: float = 0.3,
        priority: int = 0,
        mode: str = "full",
    ) -> Tuple[Job, bool]:
        """Submit a record-and-analyse job for a named suite workload.

        ``mode="detect"`` stops the pipeline after detection (no
        classification); the detect stage runs zero-replay from the
        fresh recording's captured columns.
        """
        workload = self.workloads.get(name)
        if workload is None:
            raise UnknownWorkloadError(
                "unknown workload %r (have: %s)"
                % (name, ", ".join(sorted(self.workloads)))
            )
        spec = JobSpec.for_workload(
            name,
            seed=seed,
            switch_probability=switch_probability,
            mode=self._check_mode(mode),
        )
        key = content_key_for(
            spec,
            workload,
            self.config.max_steps,
            self.config.capture_global_order,
            self.config.max_pairs_per_location,
        )
        return self._admit(spec, key, priority)

    def submit_log(
        self, data: bytes, priority: int = 0, mode: str = "full"
    ) -> Tuple[Job, bool]:
        """Submit an uploaded replay log (binary container or JSON).

        ``mode="detect"`` runs detection only; a v3+ container with
        captured columns takes the zero-replay from-log path, anything
        else falls back to replay-then-detect.  ``mode="stream"`` runs
        the full pipeline with streaming detection and eager per-window
        classification — it needs captured columns, so v1/v2 (and
        captureless) uploads are rejected up front with a 400.

        Admission validates binary containers through the sectioned
        reader (header + sequencer + captured framing) rather than a
        full decode — large uploads are admitted without materializing
        every load/syscall array; deep corruption there surfaces as a
        job failure rather than a submission error.  JSON containers
        still validate by full decode.
        """
        mode = self._check_mode(mode)
        log = None
        try:
            sections = load_log_sections_bytes(data)
            if sections is None:
                log = load_log_bytes(data)
        except Exception as error:  # noqa: BLE001 - any decode failure
            raise BadLogError("undecodable replay log: %s" % error)
        if mode == "stream":
            if sections is not None:
                if sections.captured is None:
                    raise BadLogError(
                        "stream jobs need captured access columns: got a "
                        "v%d container without them (record with v3+ and "
                        "capture enabled, or submit mode 'full')"
                        % sections.version
                    )
            elif log is None or log.captured is None:
                raise BadLogError(
                    "stream jobs need captured access columns: this JSON "
                    "log has none (submit mode 'full' instead)"
                )
        spec = JobSpec.for_log(data, mode=mode)
        key = content_key_for(
            spec,
            None,
            self.config.max_steps,
            self.config.capture_global_order,
            self.config.max_pairs_per_location,
        )
        return self._admit(spec, key, priority)

    # -- queries ---------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        return self.store.get(job_id)

    def report_bytes(self, job_id: str) -> Optional[bytes]:
        """The canonical rendering of a finished job's report."""
        from ..analysis.pipeline import render_report

        job = self.store.get(job_id)
        if job is None or job.report is None:
            return None
        return render_report(job.report)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a queued job; running/finished jobs are left alone.

        Returns the job (whatever its state), or None if unknown.  The
        queue entry is lazily discarded: the shard loop skips any popped
        job whose state is no longer ``queued``.
        """
        with self.store._lock:
            job = self.store.get(job_id)
            if job is None:
                return None
            if job.state is JobState.QUEUED:
                self.store.mark_cancelled(job_id)
            return job

    # -- fleet triage store ----------------------------------------------

    def _absorb_job(self, job: Job) -> None:
        """Fold one finished job's report into the fleet store.

        Runs on the shard thread right after the DONE transition (and
        again at startup for heal).  Idempotent on the job's content
        key, so double absorption — two instances sharing the store,
        or a heal re-walking already-absorbed jobs — converges.  Any
        failure is swallowed: triage bookkeeping never fails a job.
        """
        if self.fleet is None or job.report is None:
            return
        try:
            with self._fleet_lock:
                self.fleet.absorb_report(
                    job.report,
                    job.content_key,
                    observed_at=round(time.time(), 3),
                    perf=self._fleet_perf,
                )
        except Exception:  # noqa: BLE001 - best-effort bookkeeping
            pass

    def _require_fleet(self) -> FleetStore:
        if self.fleet is None:
            raise ValueError(
                "fleet store not configured (start serve with --fleet-dir)"
            )
        return self.fleet

    def fleet_report(
        self, include_suppressed: bool = False, limit: Optional[int] = None
    ) -> Dict:
        return self._require_fleet().report_document(
            include_suppressed=include_suppressed, limit=limit, now=time.time()
        )

    def fleet_report_bytes(
        self, include_suppressed: bool = False, limit: Optional[int] = None
    ) -> bytes:
        return self._require_fleet().report_bytes(
            include_suppressed=include_suppressed, limit=limit, now=time.time()
        )

    def fleet_record(self, record_id: str) -> Optional[Dict]:
        return self._require_fleet().record_document(record_id, now=time.time())

    def fleet_suppressions(self) -> List[Dict]:
        return [
            dict(rule.to_json(), rule_id=rule.rule_id)
            for rule in self._require_fleet().suppression_rules()
        ]

    def suppress_race(
        self,
        race: str,
        digest: str = "",
        reason: str = "",
        created_by: str = "",
        ttl_s: Optional[float] = None,
    ) -> str:
        """Persist a suppression rule; returns its id.

        ``digest`` narrows the rule to one region-content variant
        (scope ``exact``); empty suppresses the whole static race.
        """
        static_key_from_text(race)  # validate the key shape up front
        now = time.time()
        rule = SuppressionRule(
            scope="exact" if digest else "race",
            race=race,
            digest=digest,
            reason=reason,
            created_by=created_by,
            created_at=round(now, 3),
            expires_at=round(now + ttl_s, 3) if ttl_s is not None else None,
        )
        return self._require_fleet().suppress(rule)

    def unsuppress_race(self, rule_id: str) -> bool:
        return self._require_fleet().unsuppress(rule_id)

    def metrics(self) -> Dict:
        """The ``GET /metrics`` document (field reference in docs).

        Perf and counters are snapshotted under the pool's metrics lock
        (and queue stats under the queue lock) so a concurrent
        ``_merge_result`` cannot mutate them mid-serialization.
        """
        uptime = max(time.monotonic() - self.started_at, 1e-9)
        pool = self.pool.perf_snapshot()
        return {
            "uptime_s": round(uptime, 3),
            "queue": self.queue.stats(),
            "jobs": self.store.counts(),
            "recovered_jobs": self.recovered_jobs,
            "throughput_jobs_per_s": round(pool["completed"] / uptime, 4),
            "pool": self.pool.metrics_json(),
            "verdict_cache_hit_rate": round(pool["verdict_cache_hit_rate"], 4),
            "record_cache_hit_rate": round(pool["record_cache_hit_rate"], 4),
            "perf": pool["perf"],
            "classify_batching": self._batching_metrics(pool["perf"]),
            "stream": self._stream_metrics(pool["perf"]),
            "fleet": self._fleet_metrics(),
            "latency_histograms_s": self.pool.histograms.to_json(),
        }

    def _fleet_metrics(self) -> Dict:
        """Fleet-store counters for ``GET /metrics``.

        Store counts come from the shared store (so they reflect every
        instance's absorbs); absorb counters are this instance's own.
        """
        if self.fleet is None:
            return {"enabled": False}
        with self._fleet_lock:
            absorbs = self._fleet_perf.fleet_absorbs
            duplicates = self._fleet_perf.fleet_absorb_duplicates
            records_new = self._fleet_perf.fleet_records_new
            records_updated = self._fleet_perf.fleet_records_updated
        try:
            store = self.fleet.counts()
        except Exception:  # noqa: BLE001 - metrics must not fail
            store = {}
        return {
            "enabled": True,
            "store": store,
            "absorbs": absorbs,
            "absorb_duplicates": duplicates,
            "records_new": records_new,
            "records_updated": records_updated,
        }

    @staticmethod
    def _batching_metrics(perf: Dict) -> Dict:
        """Batched-classification counters, lifted out of the perf dump.

        Triage dashboards watch these without parsing the whole perf
        document: how many batches ran, how many verdicts fanned out for
        free, how many members fell back to a private replay, and how
        much incremental splicing saved on resubmissions.
        """
        return {
            "batches": perf.get("classify_batches", 0),
            "fanout": perf.get("batch_fanout", 0),
            "fallbacks": perf.get("batch_fallbacks", 0),
            "incremental_spliced": perf.get("incremental_spliced", 0),
            "incremental_absorbed": perf.get("incremental_absorbed", 0),
            "batch_size_histogram": perf.get("batch_size_histogram", {}) or {},
        }

    @staticmethod
    def _stream_metrics(perf: Dict) -> Dict:
        """Streaming-pipeline counters, lifted out of the perf dump.

        ``stream_first_verdict_ms`` is the headline number — average wall
        milliseconds from job start to the first classified verdict,
        across every stream-mode job this deployment has run.  Segment
        and window counts size the streaming work (how many sealed
        segments were swept, how many windows fired eager
        classification).
        """
        jobs = perf.get("stream_jobs", 0)
        total_ms = perf.get("stream_first_verdict_s", 0.0) * 1000.0
        return {
            "jobs": jobs,
            "segments": perf.get("stream_segments", 0),
            "windows": perf.get("stream_windows", 0),
            "stream_first_verdict_ms": (
                round(total_ms / jobs, 3) if jobs else 0.0
            ),
            "first_verdict_ms_total": round(total_ms, 3),
        }

    def health(self) -> Dict:
        return {
            "status": "ok",
            "uptime_s": round(max(time.monotonic() - self.started_at, 0.0), 3),
            "shards": self.config.effective_shards(),
            "mode": self.pool.mode,
        }
