"""The virtual processor: replay a pair of racing regions in both orders.

Section 4.2 of the paper: *"we added to iDNA the ability to create a
virtual processor ... initialized with the live-in memory values and the
register states of the two threads.  We orchestrate the execution of the
two threads in the virtual processor to obey the ordering for the
instructions involved in the data race.  Whenever a memory location is
read for the first time in the virtual processor, the virtual processor
copies the value from the live-in memory."*

Orchestration is canonical and identical across the two replays except for
the racing pair itself:

1. **prefix** — run thread A from its region start up to (not including)
   its racing instruction, then thread B likewise;
2. **the racing pair** — execute the two racing instructions in the chosen
   order (original, then alternative on the second replay);
3. **suffix** — run thread A to its region end, then thread B.

A region ends at the next sequencer-point instruction (sync or syscall),
at ``halt``, or at the end of the code block.  Any live-out difference
between the two replays is therefore attributable to the race.

Replay failures (§4.2.1) surface as :class:`ReplayFailure`:

* a load of an address in neither the VP's written set nor the live-in
  image (*"an address not seen when the original log was taken"*),
* control transfer to a pc outside the thread's recorded footprint
  (*"it may jump to a piece of code that was not recorded"*) — unless
  ``allow_unrecorded_control_flow`` enables the paper's stated future-work
  extension of continuing through fresh paths,
* memory faults: null dereference or touching freed memory (the paper's
  Figure 2 replay "catches a null pointer violation"),
* a per-thread step limit (a reordering that wedges a spin loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import Instruction
from ..isa.operands import Imm, Mem
from ..isa.program import CodeBlock, Program, StaticInstructionId
from ..vm import alu
from ..vm.registers import RegisterFile
from .errors import ReplayFailure, ReplayFailureKind


@dataclass
class VPConfig:
    """Knobs for virtual-processor replay.

    The two ``allow_*`` flags implement the paper's §4.2.1 future work
    ("we are looking at trying to log enough information to allow replay
    to continue in the face of both of these"): continuing through control
    flow the recording never saw, and reading addresses absent from the
    live-in image as zero-filled memory (the machine's semantics for
    never-written words).
    """

    step_limit: int = 20_000
    allow_unrecorded_control_flow: bool = False
    allow_unknown_addresses: bool = False
    #: Prove STEP_LIMIT early when a live thread provably spins forever
    #: (see :meth:`VirtualProcessor._run_to_region_end`).  Same verdicts,
    #: without interpreting up to ``step_limit`` instructions first.
    detect_spin_cycles: bool = True


@dataclass
class VPThreadSpec:
    """Everything the VP needs to run one thread's region.

    ``racing_step_offset`` counts instructions from the region start to the
    racing instruction; ``pc_footprint`` is the set of instruction indices
    the thread executed anywhere in the recording.

    ``recorded_loads`` maps a step offset within the region (before the
    racing operation) to the load value the recording saw at that step.
    iDNA replays the pre-race prefix *from the log* ("we replay both
    threads for the region up until we get to the data race instruction"),
    so prefix control flow is exact by construction; only from the racing
    pair onward does execution run live against the virtual processor's
    copy-on-read memory.

    The optional ``racing_registers``/``racing_pc``/``prefix_accesses``/
    ``prefix_static_ids`` fields carry the *result* of that logged prefix,
    precomputed from the thread's recorded replay.  When present, the
    processor fast-forwards straight to the racing operation instead of
    re-executing the prefix instruction by instruction: because the prefix
    is replayed from the log in both cases, its register trajectory and
    memory effects (load seeds + stores, in program order) are exactly the
    recorded ones, so only the divergent window — the racing pair and the
    suffixes — needs live execution.
    """

    thread_name: str
    block: CodeBlock
    start_pc: int
    registers: Tuple[int, ...]
    racing_step_offset: int
    racing_static_id: StaticInstructionId
    pc_footprint: Set[int]
    recorded_loads: Dict[int, Tuple[int, int]] = None  # type: ignore[assignment]
    #: Registers just before the racing instruction (from the recording).
    racing_registers: Optional[Tuple[int, ...]] = None
    #: Pc of the racing instruction (from the recording).
    racing_pc: Optional[int] = None
    #: Recorded accesses of the pre-race prefix, in program order.
    prefix_accesses: Optional[Tuple] = None
    #: Static ids the prefix executed, in program order.
    prefix_static_ids: Optional[Tuple[StaticInstructionId, ...]] = None


@dataclass
class VPOutcome:
    """Live-out state of one both-regions replay.

    ``racing_values`` records the value each thread's racing operation
    observed (loads) or produced (stores) during this replay.  For the
    original-order replay these must equal the recorded values — a
    mismatch means the virtual processor's live-in approximation could
    not reconstruct the recorded reality, which the classifier treats as
    a replay failure.
    """

    registers: Dict[str, Tuple[int, ...]]
    dirty_memory: Dict[int, int]
    end_pcs: Dict[str, int]
    steps: Dict[str, int]
    executed: Dict[str, List[StaticInstructionId]]
    racing_values: Dict[str, Optional[int]] = None  # type: ignore[assignment]


def same_state(
    outcome_a: VPOutcome, outcome_b: VPOutcome, live_in: Dict[int, int]
) -> bool:
    """Compare two replays' live-outs (the paper's benign test).

    Memory is compared *effectively*: a write of the value already present
    in live-in memory leaves the state unchanged (this is what makes the
    paper's "redundant write" races come out benign).
    """
    if outcome_a.registers != outcome_b.registers:
        return False
    if outcome_a.end_pcs != outcome_b.end_pcs:
        return False
    touched = set(outcome_a.dirty_memory) | set(outcome_b.dirty_memory)
    for address in touched:
        value_a = outcome_a.dirty_memory.get(address, live_in.get(address, 0))
        value_b = outcome_b.dirty_memory.get(address, live_in.get(address, 0))
        if value_a != value_b:
            return False
    return True


class _VPThread:
    """Mutable per-thread execution state inside the VP.

    ``follow_log`` marks a thread whose *entire* region replays from the
    recorded load values — the original-order replay, which by definition
    is the recording itself.  A live thread follows the log only up to its
    racing operation and then runs against the VP memory.
    """

    def __init__(self, spec: VPThreadSpec, follow_log: bool):
        self.spec = spec
        self.name = spec.thread_name
        self.block = spec.block
        self.pc = spec.start_pc
        self.registers = RegisterFile(spec.registers)
        self.steps = 0
        self.done = False
        self.follow_log = follow_log
        self.executed: List[StaticInstructionId] = []
        self.racing_value: Optional[int] = None

    def load_is_logged(self) -> bool:
        """Should the load at the current step come from the log?"""
        if self.spec.recorded_loads is None:
            return False
        if self.follow_log:
            return True
        return self.steps < self.spec.racing_step_offset

    def at_region_end(self) -> bool:
        """True when the next instruction closes the region."""
        if self.done:
            return True
        if self.pc >= len(self.block):
            return True
        instruction = self.block.instruction_at(self.pc)
        return instruction.spec.is_sequencer_point


class _VPMemory:
    """The virtual processor's memory: copied-in reads plus real writes.

    Values read in (from logs or the live-in image) only feed later reads;
    the *live-out* state the classifier compares consists solely of the
    addresses actually written (:meth:`dirty`), so two replays that merely
    read different subsets of memory do not spuriously differ.
    """

    __slots__ = ("values", "written", "store_count")

    def __init__(self) -> None:
        self.values: Dict[int, int] = {}
        self.written: Set[int] = set()
        self.store_count = 0

    def seed(self, address: int, value: int) -> None:
        """Record an observed (read) value without marking it written.

        A seed never overwrites a written value: the canonical phase
        schedule replays one thread's suffix after the other's, so a
        logged load can observe a *stale* recorded past after a store that
        canonically already happened — the store stays the truth.
        """
        if address not in self.written:
            self.values[address] = value

    def store(self, address: int, value: int) -> None:
        self.values[address] = value & ((1 << 64) - 1)
        self.written.add(address)
        self.store_count += 1

    def clone(self) -> "_VPMemory":
        """An independent copy (the cached prefix-seed image is cloned per
        run so phases 2/3 never mutate the shared seed)."""
        copy = _VPMemory.__new__(_VPMemory)
        copy.values = dict(self.values)
        copy.written = set(self.written)
        copy.store_count = self.store_count
        return copy

    def dirty(self) -> Dict[int, int]:
        return {address: self.values[address] for address in self.written}


class VirtualProcessor:
    """Copy-on-read execution of two racing regions under a forced order."""

    def __init__(
        self,
        program: Program,
        live_in_image: Dict[int, int],
        freed: Dict[int, int],
        spec_a: VPThreadSpec,
        spec_b: VPThreadSpec,
        config: Optional[VPConfig] = None,
    ):
        self.program = program
        self.live_in = live_in_image
        self.freed = freed
        self.spec_a = spec_a
        self.spec_b = spec_b
        self.config = config or VPConfig()
        #: One-slot holder for the seeded prefix memory image, shared with
        #: every :meth:`rebind` clone: the image depends only on the two
        #: specs' recorded prefix accesses, so processors replaying the
        #: same structural pair build it once and clone it per run.
        self._prefix_seed: List[Optional[_VPMemory]] = [None]

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def rebind(
        self, live_in_image: Dict[int, int], freed: Dict[int, int]
    ) -> "VirtualProcessor":
        """A processor for the same racing pair under a different live-in.

        Shares the specs, config and the prefix-seed holder (the seed is a
        pure function of the specs); only the live-in image and freed
        ranges differ.  The batched classifier rebinds the batch leader's
        processor for probe-divergence fallback members instead of
        rebuilding specs and re-deriving the prefix image.
        """
        clone = VirtualProcessor(
            self.program, live_in_image, freed, self.spec_a, self.spec_b, self.config
        )
        clone._prefix_seed = self._prefix_seed
        return clone

    def run(self, first: str, follow_log: bool = False) -> VPOutcome:
        """Replay both regions with thread ``first``'s racing op going first.

        With ``follow_log`` every load of both threads takes its recorded
        value — this is the *original* replay, exact by construction
        ("the first order ... matches the values seen during the original
        logged execution").  Without it, loads follow the log only up to
        each thread's racing operation and run live afterwards — the
        *alternative* replay, which may leave the recorded envelope and
        raise :class:`ReplayFailure` (§4.2.1).
        """
        thread_a = _VPThread(self.spec_a, follow_log)
        thread_b = _VPThread(self.spec_b, follow_log)

        # Phase 1: prefixes, in fixed thread order.  Both replays' prefixes
        # follow the log, so when the specs carry the precomputed prefix
        # state the threads fast-forward to their racing ops and only the
        # divergent window executes live.
        if (
            not follow_log
            and self.spec_a.racing_registers is not None
            and self.spec_b.racing_registers is not None
        ):
            memory = self._fast_forward_pair()
            for thread in (thread_a, thread_b):
                self._install_prefix(thread)
        else:
            memory = _VPMemory()
            for thread in (thread_a, thread_b):
                self._run_to_racing_op(thread, memory)

        # Phase 2: the racing pair, in the requested order.
        ordered = (
            (thread_a, thread_b) if first == thread_a.name else (thread_b, thread_a)
        )
        if first not in (thread_a.name, thread_b.name):
            raise ValueError("unknown first thread %r" % first)
        for thread in ordered:
            self._step(thread, memory)

        # Phase 3: suffixes to region end, in fixed thread order.
        for thread in (thread_a, thread_b):
            self._run_to_region_end(thread, memory)

        return VPOutcome(
            registers={
                thread_a.name: thread_a.registers.snapshot(),
                thread_b.name: thread_b.registers.snapshot(),
            },
            dirty_memory=memory.dirty(),
            end_pcs={thread_a.name: thread_a.pc, thread_b.name: thread_b.pc},
            steps={thread_a.name: thread_a.steps, thread_b.name: thread_b.steps},
            executed={
                thread_a.name: list(thread_a.executed),
                thread_b.name: list(thread_b.executed),
            },
            racing_values={
                thread_a.name: thread_a.racing_value,
                thread_b.name: thread_b.racing_value,
            },
        )

    # ------------------------------------------------------------------
    # Phases.
    # ------------------------------------------------------------------

    def _run_to_racing_op(self, thread: _VPThread, memory: "_VPMemory") -> None:
        while thread.steps < thread.spec.racing_step_offset:
            if thread.at_region_end():
                raise ReplayFailure(
                    ReplayFailureKind.DIVERGENCE,
                    "%s reached region end before its racing op" % thread.name,
                )
            self._step(thread, memory)
        static_here = thread.block.static_id(thread.pc) if thread.pc < len(thread.block) else None
        if static_here != thread.spec.racing_static_id:
            raise ReplayFailure(
                ReplayFailureKind.DIVERGENCE,
                "%s arrived at %s, expected racing op %s"
                % (thread.name, static_here, thread.spec.racing_static_id),
            )

    #: Steps a thread runs before spin-cycle detection engages (almost every
    #: replay finishes well under this, so the common case pays nothing).
    _SPIN_CHECK_AFTER = 64

    def _run_to_region_end(self, thread: _VPThread, memory: "_VPMemory") -> None:
        if not self.config.detect_spin_cycles or thread.follow_log:
            # A log-following thread's loads are keyed by step number, so a
            # repeated (pc, registers) state does *not* imply repetition;
            # cycle detection is sound only for live threads.
            while not thread.at_region_end():
                self._step(thread, memory)
            return
        seen: Optional[Set[Tuple[int, Tuple[int, ...]]]] = None
        stores_seen = -1
        while not thread.at_region_end():
            if thread.steps >= self._SPIN_CHECK_AFTER:
                # Past the racing op a live thread reads only VP memory, and
                # values there change only on stores.  So if it revisits a
                # (pc, registers) state with no store in between, every
                # input to every subsequent instruction is unchanged: the
                # trajectory repeats verbatim, forever.  That replay *will*
                # exhaust the step limit — raise its exact failure now.
                if memory.store_count != stores_seen:
                    stores_seen = memory.store_count
                    seen = set()
                state = (thread.pc, thread.registers.snapshot())
                if state in seen:
                    raise ReplayFailure(
                        ReplayFailureKind.STEP_LIMIT,
                        "%s exceeded %d steps"
                        % (thread.name, self.config.step_limit),
                    )
                seen.add(state)
            self._step(thread, memory)

    def _fast_forward_pair(self) -> "_VPMemory":
        """The seeded prefix memory, built once per spec pair and cloned.

        Matches running :meth:`_run_to_racing_op` on thread A then B step
        for step: each prefix's loads seed the VP memory with their
        recorded values and its stores write through, in program order
        (and a store blocks later stale seeds of the same address, which
        is why the A-then-B application order is part of the contract).
        The step-limit failures the interpreter would raise mid-prefix are
        reproduced up front, A first.  The built image depends only on the
        two specs, so it lives in the :attr:`_prefix_seed` holder shared
        across :meth:`rebind` clones and is cloned for each run — phases
        2/3 mutate the clone, never the seed.
        """
        for spec in (self.spec_a, self.spec_b):
            if spec.racing_step_offset > self.config.step_limit:
                raise ReplayFailure(
                    ReplayFailureKind.STEP_LIMIT,
                    "%s exceeded %d steps"
                    % (spec.thread_name, self.config.step_limit),
                )
        seed = self._prefix_seed[0]
        if seed is None:
            seed = _VPMemory()
            for spec in (self.spec_a, self.spec_b):
                for access in spec.prefix_accesses:
                    if access.is_write:
                        seed.store(access.address, access.value)
                    else:
                        seed.seed(access.address, access.value)
            self._prefix_seed[0] = seed
        return seed.clone()

    def _install_prefix(self, thread: _VPThread) -> None:
        """Land one thread on the recorded state before its racing op."""
        spec = thread.spec
        thread.pc = spec.racing_pc
        thread.registers = RegisterFile(spec.racing_registers)
        thread.steps = spec.racing_step_offset
        thread.executed = list(spec.prefix_static_ids)

    # ------------------------------------------------------------------
    # Copy-on-read memory.
    # ------------------------------------------------------------------

    def _check_address(self, address: int) -> None:
        if address == 0:
            raise ReplayFailure(ReplayFailureKind.MEMORY_FAULT, "null dereference")
        if address < 0:
            raise ReplayFailure(
                ReplayFailureKind.MEMORY_FAULT, "negative address %d" % address
            )
        for base, size in self.freed.items():
            if base <= address < base + size:
                raise ReplayFailure(
                    ReplayFailureKind.MEMORY_FAULT,
                    "use-after-free at %#x (freed allocation %#x)" % (address, base),
                )

    def _read(self, address: int, memory: "_VPMemory") -> int:
        self._check_address(address)
        if address in memory.values:
            return memory.values[address]
        if address in self.live_in:
            memory.values[address] = self.live_in[address]
            return memory.values[address]
        if self.config.allow_unknown_addresses:
            # §4.2.1 extension: treat the address as zero-filled memory
            # (what the machine would return for a never-written word).
            memory.values[address] = 0
            return 0
        raise ReplayFailure(
            ReplayFailureKind.UNKNOWN_ADDRESS,
            "load of address %#x absent from the recorded live-in image" % address,
        )

    def _write(self, address: int, value: int, memory: "_VPMemory") -> None:
        self._check_address(address)
        memory.store(address, value)

    # ------------------------------------------------------------------
    # Instruction execution.
    # ------------------------------------------------------------------

    def _step(self, thread: _VPThread, memory: "_VPMemory") -> None:
        if thread.done:
            return
        if thread.steps >= self.config.step_limit:
            raise ReplayFailure(
                ReplayFailureKind.STEP_LIMIT,
                "%s exceeded %d steps" % (thread.name, self.config.step_limit),
            )
        pc = thread.pc
        if pc >= len(thread.block) or pc < 0:
            thread.done = True
            return
        if (
            pc not in thread.spec.pc_footprint
            and not thread.follow_log
            and not self.config.allow_unrecorded_control_flow
        ):
            raise ReplayFailure(
                ReplayFailureKind.UNRECORDED_CONTROL_FLOW,
                "%s reached pc %d of block %r, never executed in the recording"
                % (thread.name, pc, thread.block.name),
            )
        instruction = thread.block.instruction_at(pc)
        if instruction.spec.is_sequencer_point:
            # Region boundary: never execute the boundary instruction.
            thread.done = True
            return
        thread.executed.append(thread.block.static_id(pc))
        thread.pc = self._execute(instruction, thread, memory)
        thread.steps += 1

    def _execute(
        self, instruction: Instruction, thread: _VPThread, memory: "_VPMemory"
    ) -> int:
        opcode = instruction.opcode
        operands = instruction.operands
        registers = thread.registers
        pc = thread.pc

        def reg(operand) -> int:
            return registers.read(operand.index)

        def mem_address(operand: Mem) -> int:
            base = registers.read(operand.base) if operand.base is not None else 0
            return base + operand.offset

        if opcode == "li":
            registers.write(operands[0].index, operands[1].value)
        elif opcode == "mov":
            registers.write(operands[0].index, reg(operands[1]))
        elif alu.is_binary_op(opcode):
            rhs = (
                operands[2].value
                if isinstance(operands[2], Imm)
                else reg(operands[2])
            )
            registers.write(
                operands[0].index, alu.binary_op(opcode, reg(operands[1]), rhs)
            )
        elif opcode == "load":
            address = mem_address(operands[1])
            if thread.load_is_logged():
                # Replay the load from the log (iDNA semantics: the whole
                # original-order replay, and every live replay's pre-race
                # prefix).  The recorded value also seeds the VP memory so
                # later live reads stay consistent with the recording.
                recorded = thread.spec.recorded_loads.get(thread.steps)
                if recorded is None or recorded[0] != address:
                    raise ReplayFailure(
                        ReplayFailureKind.DIVERGENCE,
                        "%s logged load at step %d has no matching log record"
                        % (thread.name, thread.steps),
                    )
                value = recorded[1]
                memory.seed(address, value)
            else:
                value = self._read(address, memory)
            if thread.steps == thread.spec.racing_step_offset:
                thread.racing_value = value
            registers.write(operands[0].index, value)
        elif opcode == "store":
            value = reg(operands[0])
            if thread.steps == thread.spec.racing_step_offset:
                thread.racing_value = value
            address = mem_address(operands[1])
            if thread.follow_log:
                # The recording proves this store was legal; skip checks.
                memory.store(address, value)
            else:
                self._write(address, value, memory)
        elif opcode == "jmp":
            return operands[0].value
        elif opcode in ("beq", "bne", "blt", "bge"):
            if alu.branch_taken(opcode, reg(operands[0]), reg(operands[1])):
                return operands[2].value
        elif opcode in ("beqz", "bnez"):
            if alu.branch_taken(opcode, reg(operands[0])):
                return operands[1].value
        elif opcode == "halt":
            thread.done = True
            return pc
        elif opcode == "nop":
            pass
        else:  # pragma: no cover - sequencer points are intercepted in _step
            raise ReplayFailure(
                ReplayFailureKind.DIVERGENCE,
                "sequencer-point opcode %r reached _execute" % opcode,
            )
        return pc + 1
