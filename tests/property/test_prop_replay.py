"""Property-based tests: record/replay fidelity on random programs.

The core guarantee of load-based checkpointing (paper §3.1): *any*
recorded execution replays exactly — registers, step counts, and output —
no matter the program or the interleaving.
"""

from hypothesis import HealthCheck, given, settings

from repro.isa import assemble
from repro.record import record_run, log_from_json, log_to_json
from repro.replay import OrderedReplay
from repro.vm import RandomScheduler

from strategies import programs, seeds

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(source=programs(), seed=seeds)
@_SETTINGS
def test_replay_reproduces_execution(source, seed):
    program = assemble(source, name="prop")
    result, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    ordered = OrderedReplay(log, program)
    for name, outcome in result.threads.items():
        replay = ordered.thread_replays[name]
        assert replay.final_registers == outcome.registers
        assert replay.steps == outcome.steps
    assert ordered.output() == result.output


@given(source=programs(), seed=seeds)
@_SETTINGS
def test_recording_is_deterministic(source, seed):
    program = assemble(source, name="prop")
    _, first = record_run(
        program, scheduler=RandomScheduler(seed=seed), seed=seed
    )
    _, second = record_run(
        assemble(source, name="prop"),
        scheduler=RandomScheduler(seed=seed),
        seed=seed,
    )
    assert log_to_json(first) == log_to_json(second)


@given(source=programs(), seed=seeds)
@_SETTINGS
def test_serialization_preserves_replayability(source, seed):
    program = assemble(source, name="prop")
    result, log = record_run(
        program, scheduler=RandomScheduler(seed=seed), seed=seed
    )
    restored = log_from_json(log_to_json(log))
    ordered = OrderedReplay(restored)
    for name, outcome in result.threads.items():
        assert ordered.thread_replays[name].final_registers == outcome.registers


@given(source=programs(fully_locked=True), seed=seeds)
@_SETTINGS
def test_locked_programs_final_memory_exact(source, seed):
    """For correctly synchronized programs, the region-ordered image must
    equal the machine's final memory exactly."""
    program = assemble(source, name="prop_locked")
    result, log = record_run(
        program, scheduler=RandomScheduler(seed=seed, switch_probability=0.5), seed=seed
    )
    ordered = OrderedReplay(log, program)
    image = ordered.final_memory()
    for address, value in result.memory.items():
        assert image.get(address, 0) == value
