"""Fleet triage store: unique races aggregated across every execution.

The paper's workflow is fleet-scale — millions of submitted executions
dedupe down to a small set of unique static races, with harmful ones
surfaced first and known-benign ones suppressed.  This package is that
persistence layer: a crash-safe append-journal + compacted-snapshot
database of unique races keyed by ``(program, static race id,
region-content digest)``, absorbing every completed job's verdicts and
serving a harmful-first ranked view.

Layers:

* :mod:`repro.fleet.records` — the per-race aggregate model;
* :mod:`repro.fleet.suppression` — persisted suppression rules with
  provenance and expiry;
* :mod:`repro.fleet.ranking` — harmful-first ordering, reusing the
  session-ranking weights;
* :mod:`repro.fleet.backend` — pluggable storage (advisory file lock on
  a shared directory, or in-memory for tests);
* :mod:`repro.fleet.store` — the store itself: absorb, compact,
  report, export/import for cross-host merge.
"""

from .backend import FileLockBackend, MemoryBackend, StoreBackend
from .records import FLEET_SCHEMA_VERSION, Contribution, FleetRecord, record_id_for
from .ranking import FleetPriority, fleet_priority, rank_records
from .store import AbsorbOutcome, FleetStore
from .suppression import SuppressionRule, SuppressionSet

__all__ = [
    "AbsorbOutcome",
    "Contribution",
    "FLEET_SCHEMA_VERSION",
    "FileLockBackend",
    "FleetPriority",
    "FleetRecord",
    "FleetStore",
    "MemoryBackend",
    "StoreBackend",
    "SuppressionRule",
    "SuppressionSet",
    "fleet_priority",
    "rank_records",
    "record_id_for",
]
