"""Benchmark + reproduction of Table 2 (benign races by reason).

The paper's Table 2 splits the 61 real-benign races into six categories
(user sync 8, double checks 3, both values 5, redundant 13, disjoint 9,
approximate 23 — approximate dominating).  We regenerate both the
ground-truth column and the automatic heuristic column (an extension the
paper did not have), asserting every category is populated and that
approximate computation is the largest misclassification source.
"""

from repro.analysis import build_table2
from repro.race.heuristics import BenignCategory
from repro.race.outcomes import Classification
from repro.workloads import GroundTruth

from conftest import write_artifact


def test_table2_all_categories_present(suite_analysis, results_dir, benchmark):
    table = benchmark(build_table2, suite_analysis)
    for category in BenignCategory:
        assert table.ground_truth.get(category, 0) >= 1, category
    rendered = "\n".join(
        [
            "TABLE 2 — Benign Data Races by Reason"
            " (paper: 8/3/5/13/9/23, approximate dominating)",
            table.render(),
        ]
    )
    write_artifact(results_dir, "table2.txt", rendered)


def test_approximate_is_largest_misclassified_group(suite_analysis):
    misclassified = {}
    for key, result in suite_analysis.results.items():
        if (
            result.classification is Classification.POTENTIALLY_HARMFUL
            and suite_analysis.truths[key] is GroundTruth.BENIGN
        ):
            category = suite_analysis.categories[key]
            misclassified[category] = misclassified.get(category, 0) + 1
    assert misclassified
    top_category = max(misclassified, key=misclassified.get)
    assert top_category in (
        BenignCategory.APPROXIMATE,
        BenignCategory.USER_CONSTRUCTED_SYNC,
        BenignCategory.BOTH_VALUES_VALID,
    )
    # Approximate computation must contribute substantially (paper: 23/29).
    assert misclassified.get(BenignCategory.APPROXIMATE, 0) >= 2


def test_heuristic_agreement_reasonable(suite_analysis):
    table = build_table2(suite_analysis)
    assert table.heuristic_agreement >= 0.5
