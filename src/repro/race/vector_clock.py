"""Precise vector-clock happens-before detection (the DJIT+ family).

The paper's region-overlap algorithm is *conservative*: iDNA's sequencers
are totally ordered, so every pair of sequencers induces an ordering edge
even between unrelated synchronization objects — which can hide races that
a precise happens-before analysis would report (the coverage trade-off of
Section 2.2.2).  This module implements the precise analysis: ordering
edges only from lock release→acquire and atomic→atomic on the *same*
object.  The A1 ablation compares the two detectors' coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.program import StaticInstructionId
from ..replay.ordered_replay import OrderedReplay
from .linearize import LinearEvent, linearize
from .model import StaticRaceKey, static_race_key


class VectorClock:
    """A mutable vector clock over thread ids."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: Optional[Dict[int, int]] = None):
        self.clocks: Dict[int, int] = dict(clocks or {})

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def get(self, tid: int) -> int:
        return self.clocks.get(tid, 0)

    def tick(self, tid: int) -> None:
        self.clocks[tid] = self.get(tid) + 1

    def join(self, other: "VectorClock") -> None:
        for tid, clock in other.clocks.items():
            if clock > self.get(tid):
                self.clocks[tid] = clock

    def dominates(self, tid: int, clock: int) -> bool:
        """Does this clock know of ``tid`` having reached ``clock``?"""
        return self.get(tid) >= clock

    def __repr__(self) -> str:
        return "VC(%r)" % self.clocks


@dataclass(frozen=True)
class Epoch:
    """A scalar timestamp: thread ``tid`` at clock ``clock``."""

    tid: int
    clock: int
    static_id: Optional[StaticInstructionId]


@dataclass
class VCRace:
    """A race found by the precise vector-clock analysis."""

    address: int
    first: Optional[StaticInstructionId]
    second: Optional[StaticInstructionId]
    kinds: Tuple[str, str]  # e.g. ("write", "read")

    @property
    def static_key(self) -> Optional[StaticRaceKey]:
        if self.first is None or self.second is None:
            return None
        return static_race_key(self.first, self.second)


@dataclass
class _AddressState:
    last_write: Optional[Epoch] = None
    reads: Dict[int, Epoch] = field(default_factory=dict)  # tid -> last read


class VectorClockDetector:
    """Precise happens-before detection over the linearized event stream."""

    def __init__(self, ordered: OrderedReplay):
        self.ordered = ordered
        self.races: List[VCRace] = []

    def detect(self) -> List[VCRace]:
        thread_clocks: Dict[int, VectorClock] = {}
        lock_clocks: Dict[int, VectorClock] = {}
        addresses: Dict[int, _AddressState] = {}
        for event in linearize(self.ordered):
            clock = thread_clocks.setdefault(event.tid, VectorClock({event.tid: 1}))
            if event.kind in ("lock", "atomic") and event.address is not None:
                # Acquire side: learn everything released at this object.
                if event.address in lock_clocks:
                    clock.join(lock_clocks[event.address])
            if event.kind in ("unlock", "atomic") and event.address is not None:
                # Release side: publish, then advance this thread's epoch.
                lock_clocks[event.address] = clock.copy()
                clock.tick(event.tid)
            if event.is_plain_access and event.address is not None:
                self._access(event, clock, addresses)
        return list(self.races)

    def _access(
        self,
        event: LinearEvent,
        clock: VectorClock,
        addresses: Dict[int, _AddressState],
    ) -> None:
        state = addresses.setdefault(event.address, _AddressState())
        epoch = Epoch(tid=event.tid, clock=clock.get(event.tid), static_id=event.static_id)

        write = state.last_write
        if write is not None and write.tid != event.tid:
            if not clock.dominates(write.tid, write.clock):
                self.races.append(
                    VCRace(
                        address=event.address,
                        first=write.static_id,
                        second=event.static_id,
                        kinds=("write", "write" if event.is_write else "read"),
                    )
                )
        if event.is_write:
            for tid, read in state.reads.items():
                if tid != event.tid and not clock.dominates(tid, read.clock):
                    self.races.append(
                        VCRace(
                            address=event.address,
                            first=read.static_id,
                            second=event.static_id,
                            kinds=("read", "write"),
                        )
                    )
            state.last_write = epoch
            state.reads = {}
        else:
            state.reads[event.tid] = epoch

    def unique_static_races(self) -> Set[StaticRaceKey]:
        return {
            race.static_key for race in self.races if race.static_key is not None
        }


def vector_clock_races(ordered: OrderedReplay) -> List[VCRace]:
    """Convenience wrapper around :class:`VectorClockDetector`."""
    return VectorClockDetector(ordered).detect()
