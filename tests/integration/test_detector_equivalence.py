"""The sweep-line detector must not change a single race or verdict.

The production detector replaces the seed's quadratic region-pair loop
with a sweep line over the columnar access index.  That optimization is
sound only if the detected race set — ordering included — and every
downstream classification verdict are *byte-identical* to the retained
:class:`NaiveHappensBeforeDetector` reference.  These tests enforce that
across the paper suite, re-seeded recordings the suite does not contain,
and randomized multi-region workloads with and without the per-location
pair cap.

The zero-replay from-log path is held to the same bar: feeding the
sweep detector a :class:`LogView` built straight from container bytes
must produce the identical instance list (and truncation counters, and
rendered detection report) as feeding it a full :class:`OrderedReplay`
— which in turn matches the naive reference.
"""

import pytest

from repro.analysis.pipeline import (
    analyze_execution,
    detect_only,
    detection_report,
    render_report,
)
from repro.isa import assemble
from repro.race.happens_before import (
    HappensBeforeDetector,
    NaiveHappensBeforeDetector,
)
from repro.record import record_run
from repro.record.binary_format import encode_log
from repro.replay import LogView, OrderedReplay
from repro.vm import RandomScheduler
from repro.workloads.suite import paper_suite

#: Many small regions (one per loop iteration) and two independent racy
#: address groups — the shape that exercises both the temporal and the
#: per-address pruning of the sweep.
REGION_HEAVY = """
.data
x: .word 0
y: .word 0
.thread a b
    li r1, 12
al:
    load r2, [x]
    addi r2, r2, 1
    store r2, [x]
    sys_rand r3, 3
    subi r1, r1, 1
    bnez r1, al
    halt
.thread c d
    li r1, 12
cl:
    load r2, [y]
    addi r2, r2, 2
    store r2, [y]
    sys_rand r3, 3
    subi r1, r1, 1
    bnez r1, cl
    halt
"""


def log_for(seed):
    program = assemble(REGION_HEAVY, name="deteq%d" % seed)
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    return program, log


def ordered_for(seed):
    program, log = log_for(seed)
    return OrderedReplay(log, program)


def naive_factory(ordered, max_pairs_per_location):
    return NaiveHappensBeforeDetector(
        ordered, max_pairs_per_location=max_pairs_per_location
    )


def verdicts(analysis):
    return [
        (
            entry.instance.static_key,
            entry.execution_id,
            entry.outcome,
            entry.original_first,
            entry.pre_value,
            entry.failure_kind,
            entry.failure_detail,
        )
        for entry in analysis.classified
    ]


class TestInstanceEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_identical_instance_lists(self, seed):
        """Full instance lists — ordering included — match the reference."""
        ordered = ordered_for(seed)
        sweep = HappensBeforeDetector(ordered, max_pairs_per_location=None)
        naive = NaiveHappensBeforeDetector(ordered, max_pairs_per_location=None)
        assert sweep.detect() == naive.detect()

    @pytest.mark.parametrize("cap", [1, 4, 256])
    def test_identical_under_pair_cap(self, cap):
        ordered = ordered_for(5)
        sweep = HappensBeforeDetector(ordered, max_pairs_per_location=cap)
        naive = NaiveHappensBeforeDetector(ordered, max_pairs_per_location=cap)
        assert sweep.detect() == naive.detect()
        assert sweep.truncated_locations == naive.truncated_locations

    def test_paper_suite_instances_identical(self):
        for execution in paper_suite():
            program = execution.workload.program()
            _, log = record_run(
                program,
                scheduler=RandomScheduler(
                    seed=execution.seed,
                    switch_probability=execution.switch_probability,
                ),
                seed=execution.seed,
            )
            ordered = OrderedReplay(log, program)
            sweep = HappensBeforeDetector(ordered)
            naive = NaiveHappensBeforeDetector(ordered)
            assert sweep.detect() == naive.detect(), execution.execution_id
            assert sweep.truncated_locations == naive.truncated_locations


class TestFromLogEquivalence:
    """The zero-replay LogView path against replay and the reference."""

    @pytest.mark.parametrize("seed", range(8))
    def test_fromlog_matches_replay_and_reference(self, seed):
        program, log = log_for(seed)
        data = encode_log(log)
        ordered = OrderedReplay(log, program)
        fromlog = HappensBeforeDetector(
            LogView.from_bytes(data), max_pairs_per_location=None
        ).detect()
        replayed = HappensBeforeDetector(
            ordered, max_pairs_per_location=None
        ).detect()
        reference = NaiveHappensBeforeDetector(
            ordered, max_pairs_per_location=None
        ).detect()
        assert fromlog == replayed
        assert fromlog == reference

    @pytest.mark.parametrize("cap", [1, 4, 256])
    def test_fromlog_identical_under_pair_cap(self, cap):
        program, log = log_for(5)
        fromlog = HappensBeforeDetector(
            LogView.from_bytes(encode_log(log)), max_pairs_per_location=cap
        )
        replayed = HappensBeforeDetector(
            OrderedReplay(log, program), max_pairs_per_location=cap
        )
        assert fromlog.detect() == replayed.detect()
        assert fromlog.truncated_locations == replayed.truncated_locations

    def test_paper_suite_fromlog_identical(self):
        for execution in paper_suite():
            program = execution.workload.program()
            _, log = record_run(
                program,
                scheduler=RandomScheduler(
                    seed=execution.seed,
                    switch_probability=execution.switch_probability,
                ),
                seed=execution.seed,
            )
            fromlog = HappensBeforeDetector(LogView.from_bytes(encode_log(log)))
            replayed = HappensBeforeDetector(OrderedReplay(log, program))
            assert fromlog.detect() == replayed.detect(), execution.execution_id
            assert fromlog.truncated_locations == replayed.truncated_locations

    @pytest.mark.parametrize("seed", range(4))
    def test_detection_reports_byte_identical(self, seed):
        """detect_only's rendered report is the same bytes whichever
        path materializes the detector input — the CI equivalence job
        literally diffs these."""
        _, log = log_for(seed)
        data = encode_log(log)
        via_view = detect_only(data, mode="from-log")
        via_replay = detect_only(data, mode="replay")
        assert via_view.path == "from-log"
        assert via_replay.path == "replay"
        assert render_report(detection_report(via_view)) == render_report(
            detection_report(via_replay)
        )


class TestEndToEndVerdictEquivalence:
    def test_suite_verdicts_identical(self):
        """The full pipeline — detect *and* classify — produces the same
        verdict tuples whether the sweep line or the quadratic reference
        finds the races."""
        for execution in paper_suite():
            default = analyze_execution(execution)
            reference = analyze_execution(execution, detector_factory=naive_factory)
            assert default.instances == reference.instances, execution.execution_id
            assert verdicts(default) == verdicts(reference), execution.execution_id
