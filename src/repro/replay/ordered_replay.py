"""Region-ordered global replay: rebuild shared-memory state from the logs.

iDNA replays one sequencing region at a time, choosing the not-yet-replayed
region with the smallest opening sequencer (Section 3.3).  This module does
the same walk to reconstruct, purely from the logs:

* the global memory image *just before* any given region starts (the
  virtual processor's live-in memory),
* the heap's freed-range set at that point (so an alternative-order replay
  can fault on use-after-free exactly like the paper's Figure 2 example),
* the program output in replay order.

The reconstruction is exact for correctly synchronized programs and a
best-effort linearization where data races exist — which is precisely why
racing operations need the both-orders classification rather than a single
replayed order.

Snapshots are **copy-on-write deltas**: the walk appends every store to a
versioned, writer-tagged history instead of copying the whole memory image
per region (the seed implementation's ``dict(image)`` was O(regions x
image) in both time and space).  A region's live-in is reconstructed
lazily, on first query, by reading the history at the region's opening
version; a *pair* snapshot is the same read with the earlier racing
region's stores filtered out — which also replaces the seed's full
re-walk per racing pair.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Mapping
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..isa.program import Program
from ..record.log import ReplayLog, SequencerRecord
from .errors import ReplayDivergence
from .events import LazyAccessList, ReplayedAccess, ThreadReplay
from .regions import SequencingRegion, regions_of_thread
from .thread_replayer import ThreadReplayer

#: Key identifying a region: (tid, region index within its thread).
RegionKey = Tuple[int, int]


def region_key(region: SequencingRegion) -> RegionKey:
    return (region.tid, region.index)


class _LazyThreadReplays(Mapping):
    """``thread name -> ThreadReplay``, replaying each thread on first access.

    The walk and the access index can usually be fed straight from
    ``log.captured`` columns, so replay interpretation is deferred until a
    consumer (classifier, inspector, CLI) actually asks for a thread.
    Membership and iteration come from the log, so neither materializes
    anything.
    """

    def __init__(self, ordered: "OrderedReplay"):
        self._ordered = ordered
        self._replays: Dict[str, ThreadReplay] = {}

    def __getitem__(self, name: str) -> ThreadReplay:
        replay = self._replays.get(name)
        if replay is None:
            if name not in self._ordered.log.threads:
                raise KeyError(name)
            replay = self._ordered._replay_thread(name)
            self._replays[name] = replay
        return replay

    def __contains__(self, name) -> bool:
        return name in self._ordered.log.threads

    def __iter__(self):
        return iter(self._ordered.log.threads)

    def __len__(self) -> int:
        return len(self._ordered.log.threads)


class _ColumnarWalkSource:
    """Feeds the ordered walk from columnar access rows — either the
    recorder's :class:`~repro.record.log.ThreadAccessColumns` (captured
    handoff: no instruction is re-interpreted) or a fast replay's access
    columns.  ``steps`` is non-decreasing, so row ranges are bisects."""

    __slots__ = ("_steps", "_addresses", "_values", "_flags", "_heap_by_step")

    def __init__(
        self,
        steps: List[int],
        addresses: List[int],
        values: List[int],
        flags: List[int],
        heap_events: Iterable[Tuple[int, str, int, int]],
    ):
        self._steps = steps
        self._addresses = addresses
        self._values = values
        self._flags = flags
        heap_by_step: Dict[int, List[Tuple[str, int, int]]] = {}
        for step, kind, base, size in heap_events:
            heap_by_step.setdefault(step, []).append((kind, base, size))
        self._heap_by_step = heap_by_step

    def writes_in_steps(self, start_step: int, end_step: int):
        steps = self._steps
        lo = bisect_left(steps, start_step)
        hi = bisect_left(steps, end_step, lo)
        addresses, values, flags = self._addresses, self._values, self._flags
        return [
            (addresses[row], values[row])
            for row in range(lo, hi)
            if flags[row] & 1
        ]

    def writes_at(self, step: int):
        return self.writes_in_steps(step, step + 1)

    def heap_events_at(self, step: int):
        return self._heap_by_step.get(step, ())


class _ReplayWalkSource:
    """Feeds the ordered walk from a materialized thread replay (the
    generic path, and the fallback when no columns are available)."""

    __slots__ = ("_replay",)

    def __init__(self, replay: ThreadReplay):
        self._replay = replay

    def writes_in_steps(self, start_step: int, end_step: int):
        return [
            (access.address, access.value)
            for access in self._replay.accesses_in_steps(start_step, end_step)
            if access.is_write
        ]

    def writes_at(self, step: int):
        return [
            (access.address, access.value)
            for access in self._replay.writes_at_step(step)
        ]

    def heap_events_at(self, step: int):
        return [
            (event.kind, event.base, event.size)
            for event in self._replay.heap_events_at_step(step)
        ]


class VersionedImage:
    """Append-only, writer-tagged memory history with point-in-time reads.

    Every store is appended as ``(version, value, writer)`` under its
    address; ``writer`` is the region that performed it (``None`` for
    boundary sync/heap effects, which belong to no region).  Reconstruction
    at a version — optionally excluding some writers — is a bisect per
    address, so snapshots cost O(addresses touched) instead of O(full
    image) per region.
    """

    __slots__ = ("_history", "_version")

    def __init__(self, initial: Dict[int, int]):
        self._history: Dict[int, List[Tuple[int, int, Optional[RegionKey]]]] = {
            address: [(0, value, None)] for address, value in initial.items()
        }
        self._version = 0

    @property
    def version(self) -> int:
        return self._version

    def write(self, address: int, value: int, writer: Optional[RegionKey]) -> None:
        self._version += 1
        self._history.setdefault(address, []).append(
            (self._version, value, writer)
        )

    def reconstruct(
        self, version: int, excluded: Optional[Set[RegionKey]] = None
    ) -> Dict[int, int]:
        """The image at ``version``, skipping writes by ``excluded`` regions."""
        image: Dict[int, int] = {}
        for address, entries in self._history.items():
            # Last entry with entry_version <= version …
            position = bisect_right(entries, (version, float("inf"))) - 1
            # … then skip back over excluded writers.
            while position >= 0 and excluded and entries[position][2] in excluded:
                position -= 1
            if position >= 0:
                image[address] = entries[position][1]
        return image

    def lazy_view(
        self, version: int, excluded: FrozenSet[RegionKey] = frozenset()
    ) -> "_LazyImageView":
        """A lazy, read-only equivalent of :meth:`reconstruct`.

        Resolves one address per query instead of materializing the whole
        image; address-for-address the answers are identical to the
        reconstructed dict's.
        """
        return _LazyImageView(self._history, version, excluded)


class _LazyImageView:
    """Lazy point-in-time read of a :class:`VersionedImage`.

    Supports the read-only mapping protocol the classifier and virtual
    processor use on live-in images (``get``/``in``/``[]``) and resolves
    each address with one bisect on demand.  The batched classifier reads
    pair live-in state through this view: verdict-cache probes and
    virtual-processor loads only ever touch a handful of addresses, so
    materializing the full image per racing pair is wasted work there.
    """

    __slots__ = ("_history", "_version", "_excluded")

    _MISS = object()

    def __init__(
        self,
        history: Dict[int, List[Tuple[int, int, Optional[RegionKey]]]],
        version: int,
        excluded: FrozenSet[RegionKey],
    ):
        self._history = history
        self._version = version
        self._excluded = excluded

    def _resolve(self, address: int):
        entries = self._history.get(address)
        if entries is None:
            return self._MISS
        position = bisect_right(entries, (self._version, float("inf"))) - 1
        while position >= 0 and entries[position][2] in self._excluded:
            position -= 1
        if position < 0:
            return self._MISS
        return entries[position][1]

    def get(self, address: int, default=None):
        value = self._resolve(address)
        return default if value is self._MISS else value

    def __contains__(self, address: int) -> bool:
        return self._resolve(address) is not self._MISS

    def __getitem__(self, address: int):
        value = self._resolve(address)
        if value is self._MISS:
            raise KeyError(address)
        return value


class OrderedReplay:
    """Replays a whole log in sequencer order, snapshotting region live-ins."""

    def __init__(
        self,
        log: ReplayLog,
        program: Optional[Program] = None,
        *,
        fast_path: bool = True,
        perf=None,
    ):
        self.log = log
        self.program = program if program is not None else log.reassemble_program()
        self._fast_path = fast_path
        self._perf = perf
        #: Lazy mapping: each thread is replayed on first access (the walk
        #: and index usually run off ``log.captured`` columns instead).
        self.thread_replays: Mapping[str, ThreadReplay] = _LazyThreadReplays(self)
        self.regions: Dict[str, List[SequencingRegion]] = {
            name: regions_of_thread(thread_log)
            for name, thread_log in log.threads.items()
        }
        #: Per-thread region start steps, for the bisect in
        #: :meth:`region_for_step`.
        self._region_starts: Dict[str, List[int]] = {
            name: [region.start_step for region in thread_regions]
            for name, thread_regions in self.regions.items()
        }
        self._sequencer_entries: Optional[
            List[Tuple[SequencerRecord, str, Optional[SequencingRegion]]]
        ] = None
        #: Version of the memory/freed history at each region's open (after
        #: the opening sequencer's boundary effects, before the region's
        #: own stores) — the delta-snapshot replacement for eager copies.
        self._region_versions: Dict[RegionKey, int] = {}
        self._snapshot_cache: Dict[RegionKey, Tuple[Dict[int, int], Dict[int, int]]] = {}
        self._pair_snapshots: Dict[
            Tuple[RegionKey, RegionKey], Tuple[Dict[int, int], Dict[int, int]]
        ] = {}
        self._pair_views: Dict[
            Tuple[RegionKey, RegionKey],
            Tuple[_LazyImageView, Dict[int, int]],
        ] = {}
        self._image = VersionedImage(self.program.initial_memory())
        #: Freed-range history: (version, base, size) in walk order.
        self._freed_history: List[Tuple[int, int, int]] = []
        self._final_image: Dict[int, int] = {}
        self._final_freed: Dict[int, int] = {}
        #: Columnar access index, built once on first analysis query.
        self._access_index = None
        self._walk()

    # ------------------------------------------------------------------
    # Thread replay materialization.
    # ------------------------------------------------------------------

    def _replay_thread(self, name: str) -> ThreadReplay:
        """Replay one thread (fast or generic path), with perf accounting."""
        replayer = ThreadReplayer(self.program, self.log, name)
        if self._fast_path:
            return replayer.run_fast(self._perf)
        replay = replayer.run()
        if self._perf is not None:
            self._perf.replay_threads_generic += 1
            self._perf.replay_snapshots_eager += (
                len(replay.region_start_registers)
                + len(replay.region_end_registers)
                + len(replay.registers_at_step)
            )
        return replay

    # ------------------------------------------------------------------
    # The region-ordered walk.
    # ------------------------------------------------------------------

    def sequencers_with_regions(
        self,
    ) -> List[Tuple[SequencerRecord, str, Optional[SequencingRegion]]]:
        """Every sequencer in global timestamp order, paired with its thread
        name and the region it opens (``None`` for thread-end sequencers).
        The canonical linearization both the internal walk and the baseline
        detectors iterate.  Computed once and cached — the walk, the naive
        reference detector and the linearizer all consume it."""
        if self._sequencer_entries is None:
            entries: List[Tuple[SequencerRecord, str, Optional[SequencingRegion]]] = []
            for name, thread_log in self.log.threads.items():
                ordered = sorted(thread_log.sequencers, key=lambda s: s.timestamp)
                thread_regions = self.regions[name]
                for index, sequencer in enumerate(ordered):
                    following = (
                        thread_regions[index] if index < len(thread_regions) else None
                    )
                    entries.append((sequencer, name, following))
            entries.sort(key=lambda entry: entry[0].timestamp)
            self._sequencer_entries = entries
        return self._sequencer_entries

    def _walk_source(self, name: str):
        """The cheapest equivalent row source for one thread's walk events.

        Captured recorder columns when present (no re-interpretation at
        all), a fast replay's access columns otherwise, and the
        materialized replay object as the final (generic-path) fallback.
        Returns ``(source, served_from_capture)``.
        """
        captured = self.log.captured
        if self._fast_path and captured is not None:
            columns = captured.threads.get(name)
            if columns is not None:
                return (
                    _ColumnarWalkSource(
                        columns.steps,
                        columns.addresses,
                        columns.values,
                        columns.flags,
                        zip(
                            columns.heap_steps,
                            columns.heap_kinds,
                            columns.heap_bases,
                            columns.heap_sizes,
                        ),
                    ),
                    True,
                )
        replay = self.thread_replays[name]
        accesses = replay.accesses
        if isinstance(accesses, LazyAccessList):
            return (
                _ColumnarWalkSource(
                    accesses._steps,
                    accesses._addresses,
                    accesses._values,
                    accesses._flags,
                    (
                        (event.thread_step, event.kind, event.base, event.size)
                        for event in replay.heap_events
                    ),
                ),
                False,
            )
        return _ReplayWalkSource(replay), False

    def _walk(self) -> None:
        image: Dict[int, int] = dict(self.program.initial_memory())
        freed: Dict[int, int] = {}
        live_allocations: Dict[int, int] = {}
        sources = {}
        from_capture = bool(self.log.threads)
        for name in self.log.threads:
            sources[name], captured = self._walk_source(name)
            from_capture = from_capture and captured
        if from_capture and self._perf is not None:
            self._perf.replay_captured_handoffs += 1
        for sequencer, thread_name, following in self.sequencers_with_regions():
            source = sources[thread_name]
            if sequencer.thread_step >= 0 and sequencer.kind not in (
                "thread_start",
                "thread_end",
            ):
                self._apply_boundary_effects(
                    source, sequencer.thread_step, image, freed, live_allocations
                )
            if following is not None:
                key = region_key(following)
                self._region_versions[key] = self._image.version
                if not following.is_empty:
                    for address, value in source.writes_in_steps(
                        following.start_step, following.end_step
                    ):
                        image[address] = value
                        self._image.write(address, value, key)
        self._final_image = image
        self._final_freed = freed

    def _apply_boundary_effects(
        self,
        source,
        thread_step: int,
        image: Dict[int, int],
        freed: Dict[int, int],
        live_allocations: Dict[int, int],
    ) -> None:
        """Apply a boundary sync/syscall instruction's memory+heap effects."""
        for address, value in source.writes_at(thread_step):
            image[address] = value
            self._image.write(address, value, None)
        for kind, base, size in source.heap_events_at(thread_step):
            if kind == "alloc":
                live_allocations[base] = size
                for offset in range(size):
                    image[base + offset] = 0
                    self._image.write(base + offset, 0, None)
            else:
                freed_size = live_allocations.pop(base, 0)
                freed[base] = freed_size
                self._freed_history.append((self._image.version, base, freed_size))

    def _freed_at(self, version: int) -> Dict[int, int]:
        freed: Dict[int, int] = {}
        for freed_version, base, size in self._freed_history:
            if freed_version > version:
                break
            freed[base] = size
        return freed

    # ------------------------------------------------------------------
    # Queries used by the race analyses.
    # ------------------------------------------------------------------

    def all_regions(self) -> List[SequencingRegion]:
        """Every region of every thread, sorted by opening timestamp."""
        collected: List[SequencingRegion] = []
        for thread_regions in self.regions.values():
            collected.extend(thread_regions)
        collected.sort(key=lambda region: region.start_ts)
        return collected

    def region_for_step(
        self, thread_name: str, thread_step: int
    ) -> Optional[SequencingRegion]:
        """The region containing ``thread_step``, by bisect over region
        start steps (starts are strictly increasing per thread, and regions
        are disjoint, so the last region starting at or before the step is
        the only candidate).  Equivalent to the linear scan
        :meth:`_region_for_step_scan`, which a unit test asserts."""
        regions = self.regions[thread_name]
        index = bisect_right(self._region_starts[thread_name], thread_step) - 1
        if index >= 0 and regions[index].contains_step(thread_step):
            return regions[index]
        return None

    def _region_for_step_scan(
        self, thread_name: str, thread_step: int
    ) -> Optional[SequencingRegion]:
        """Reference linear scan kept for the equivalence unit test."""
        for region in self.regions[thread_name]:
            if region.contains_step(thread_step):
                return region
        return None

    def region_snapshot(
        self, region: SequencingRegion
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """``(live-in memory image, freed ranges)`` just before ``region``.

        Reconstructed lazily from the write-delta history on first query;
        returned dicts are fresh copies — callers may mutate them.
        """
        key = region_key(region)
        if region.is_empty or key not in self._region_versions:
            raise ReplayDivergence("no snapshot for region %s (empty region?)" % region)
        if key not in self._snapshot_cache:
            version = self._region_versions[key]
            self._snapshot_cache[key] = (
                self._image.reconstruct(version),
                self._freed_at(version),
            )
        image, freed = self._snapshot_cache[key]
        return dict(image), dict(freed)

    def pair_snapshot(
        self, region_a: SequencingRegion, region_b: SequencingRegion
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Live-in state for replaying two racing regions together.

        The image reflects everything the replayed execution committed
        before the *later* of the two regions opened — boundary sync and
        heap effects plus every other region's stores — but **excludes**
        the two racing regions' own stores, since the virtual processor
        re-executes those.  (Stores of third-party regions that opened
        before the cutoff are applied in full; their intra-region timing
        is not recoverable from the logs, and the approximation is
        identical for both replay orders.)

        Built from the walk's write-delta history: one point-in-time read
        at the later region's opening version with the earlier region's
        stores filtered out, instead of the seed's full per-pair re-walk.

        Returned dicts are fresh copies — callers may mutate them.
        """
        image, freed = self.pair_snapshot_view(region_a, region_b)
        return dict(image), dict(freed)

    def pair_snapshot_view(
        self, region_a: SequencingRegion, region_b: SequencingRegion
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Like :meth:`pair_snapshot` but returns the cached dicts directly.

        The returned dicts are shared with the snapshot cache and **must
        not be mutated**.  The batched classifier uses this view: with
        hundreds of instances fanning out from one cached pair snapshot,
        the per-instance ``dict(image)`` copy is most of the classify-stage
        cost, and the virtual processor and verdict cache only ever read
        the live-in image and freed ranges.
        """
        key = (region_key(region_a), region_key(region_b))
        if key[0] > key[1]:
            key = (key[1], key[0])
        if key not in self._pair_snapshots:
            later = (
                region_a
                if region_a.start_ts >= region_b.start_ts
                else region_b
            )
            earlier = region_b if later is region_a else region_a
            version = self._region_versions[region_key(later)]
            self._pair_snapshots[key] = (
                self._image.reconstruct(version, excluded={region_key(earlier)}),
                self._freed_at(version),
            )
        return self._pair_snapshots[key]

    def pair_live_in(
        self, region_a: SequencingRegion, region_b: SequencingRegion
    ) -> Tuple["_LazyImageView", Dict[int, int]]:
        """Lazy live-in state for a racing pair: ``(image view, freed)``.

        The same state :meth:`pair_snapshot` materializes — image at the
        later region's opening version with the earlier region's stores
        excluded, plus the freed ranges — but the image is a lazy
        :class:`_LazyImageView` resolving one address per read.
        Address-for-address the values are identical to the snapshot's;
        the freed dict is shared with the cache and must not be mutated.
        """
        key = (region_key(region_a), region_key(region_b))
        if key[0] > key[1]:
            key = (key[1], key[0])
        cached = self._pair_views.get(key)
        if cached is None:
            later = (
                region_a
                if region_a.start_ts >= region_b.start_ts
                else region_b
            )
            earlier = region_b if later is region_a else region_a
            version = self._region_versions[region_key(later)]
            cached = (
                self._image.lazy_view(
                    version, frozenset((region_key(earlier),))
                ),
                self._freed_at(version),
            )
            self._pair_views[key] = cached
        return cached

    def access_index(self):
        """The execution's columnar :class:`AccessIndex`, built on first use.

        Shared by the happens-before detector and the classification
        engine: one pass over the thread replays feeds every later
        per-region or per-address query.
        """
        if self._access_index is None:
            # Local import: the index lives in the analysis layer, which
            # imports replay at module scope.
            from ..analysis.access_index import AccessIndex

            self._access_index = AccessIndex(self)
        return self._access_index

    def invalidate_access_index(self) -> None:
        """Drop the cached index (benchmarks re-time the build with this)."""
        self._access_index = None

    def region_accesses(self, region: SequencingRegion) -> List[ReplayedAccess]:
        """Plain (non-sync) memory accesses inside ``region``.

        Served as an O(1) slice of the columnar access index (the seed
        re-filtered the thread replay's access list on every call).
        """
        return self.access_index().region_accesses(region)

    def live_in_registers(self, region: SequencingRegion) -> Tuple[int, ...]:
        replay = self.thread_replays[region.thread_name]
        try:
            return replay.region_start_registers[region.start_step]
        except KeyError:
            raise ReplayDivergence(
                "no register snapshot at step %d of %s"
                % (region.start_step, region.thread_name)
            )

    def region_start_pc(self, region: SequencingRegion) -> int:
        replay = self.thread_replays[region.thread_name]
        try:
            return replay.region_start_pcs[region.start_step]
        except KeyError:
            raise ReplayDivergence(
                "no pc snapshot at step %d of %s"
                % (region.start_step, region.thread_name)
            )

    def final_memory(self) -> Dict[int, int]:
        """The end-of-replay memory image (exact for race-free executions)."""
        return dict(self._final_image)

    def output(self) -> List[Tuple[str, int]]:
        """Program output merged into global (sequencer) order.

        Served straight from the logged ``sys_print`` syscall records (the
        same records thread replay would copy into ``replay.output``), so
        no thread needs materializing.  A ``sys_print`` sequencer without
        a matching logged result is a divergence — a truncated or
        tampered log — and raises :class:`ReplayDivergence` instead of
        silently dropping trailing output.
        """
        entries: List[Tuple[int, str, int]] = []
        for name, thread_log in self.log.threads.items():
            step_to_ts = {
                sequencer.thread_step: sequencer.timestamp
                for sequencer in thread_log.sequencers
                if sequencer.kind == "sys_print"
            }
            for step in sorted(step_to_ts):
                record = thread_log.syscalls.get(step)
                if record is None or record.name != "sys_print":
                    raise ReplayDivergence(
                        "thread %r: sys_print sequencer at step %d has no logged "
                        "print result" % (name, step)
                    )
                entries.append((step_to_ts[step], name, record.result))
        entries.sort()
        return [(name, value) for _, name, value in entries]
