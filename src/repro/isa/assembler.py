"""Two-pass assembler for the mini-ISA.

Source grammar (line oriented; ``;`` and ``#`` start comments)::

    .equ RETRIES, 3              ; named constant
    .data                        ; data segment
    counter:  .word 0            ; one initialised word
    table:    .word 1, 2, 3      ; several words
    buf:      .space 8           ; eight zero words
    .thread main                 ; code block run by thread "main"
    .thread worker1 worker2      ; one block shared by two threads
        li   r1, RETRIES
    loop:
        subi r1, r1, 1
        bnez r1, loop
        .intent approximate      ; developer-intent tag on next instruction
        store r2, [counter]
        halt

Operand forms:

* registers ``r0`` .. ``r15``
* immediates: decimal, ``0x`` hex, negative; ``.equ`` names; a bare data
  symbol used as an immediate yields its *address* (take-address-of)
* memory: ``[r2]``, ``[r2+8]``, ``[r2-8]``, ``[counter]``, ``[counter+4]``,
  ``[0x1000]``
* labels: branch targets, resolved within the enclosing block

Data symbols are resolved file-wide (forward references allowed); code
labels resolve within their block.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import (
    AssemblyError,
    DuplicateSymbolError,
    OperandError,
    UndefinedSymbolError,
    UnknownOpcodeError,
)
from .instructions import OPCODES, Instruction, L
from .operands import Imm, Mem, NUM_REGISTERS, Operand, Reg
from .program import DATA_BASE, CodeBlock, DataItem, Program, StaticInstructionId

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):(.*)$")
_REGISTER_RE = re.compile(r"^r(\d+)$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_RE = re.compile(r"^\[([^\]]+)\]$")


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas that are not inside brackets."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [part for part in parts if part]


@dataclass
class _PendingInstruction:
    opcode: str
    operand_texts: List[str]
    line: int
    text: str
    intent: Optional[str] = None


@dataclass
class _PendingBlock:
    name: str
    thread_names: List[str]
    instructions: List[_PendingInstruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)


class Assembler:
    """Assembles source text into a :class:`~repro.isa.program.Program`."""

    def __init__(self) -> None:
        self._constants: Dict[str, int] = {}
        self._data: Dict[str, DataItem] = {}
        self._next_data_address = DATA_BASE

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` into a named :class:`Program`.

        Raises :class:`AssemblyError` subclasses with line numbers on any
        syntactic or semantic problem.
        """
        lines = source.splitlines()
        self._collect_data_and_constants(lines)
        blocks = self._collect_blocks(lines)
        if not blocks:
            raise AssemblyError("no .thread blocks defined")

        program_blocks: Dict[str, CodeBlock] = {}
        threads: Dict[str, str] = {}
        intents: Dict[StaticInstructionId, str] = {}
        for pending in blocks:
            instructions = tuple(
                self._resolve(entry, pending) for entry in pending.instructions
            )
            block = CodeBlock(pending.name, instructions, dict(pending.labels))
            program_blocks[pending.name] = block
            for thread_name in pending.thread_names:
                if thread_name in threads:
                    raise DuplicateSymbolError(
                        "thread %r defined twice" % thread_name
                    )
                threads[thread_name] = pending.name
            for index, entry in enumerate(pending.instructions):
                if entry.intent is not None:
                    intents[StaticInstructionId(pending.name, index)] = entry.intent

        return Program(
            name=name,
            blocks=program_blocks,
            threads=threads,
            data=dict(self._data),
            intents=intents,
            source=source,
        )

    # ------------------------------------------------------------------
    # Pass 1: data segment and constants (file-wide, forward-referencable).
    # ------------------------------------------------------------------

    def _collect_data_and_constants(self, lines: List[str]) -> None:
        in_data = False
        for line_number, raw in enumerate(lines, start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            if line.startswith(".equ"):
                self._parse_equ(line, line_number)
                continue
            if line.startswith(".data"):
                in_data = True
                continue
            if line.startswith(".thread"):
                in_data = False
                continue
            if in_data:
                self._parse_data_line(line, line_number)

    def _parse_equ(self, line: str, line_number: int) -> None:
        body = line[len(".equ"):].strip()
        parts = _split_operands(body)
        if len(parts) != 2:
            raise AssemblyError(".equ expects NAME, VALUE", line_number)
        name, value_text = parts
        if not _IDENT_RE.match(name):
            raise AssemblyError(".equ name %r is not an identifier" % name, line_number)
        if name in self._constants:
            raise DuplicateSymbolError(".equ %r defined twice" % name, line_number)
        self._constants[name] = self._parse_integer(value_text, line_number)

    def _parse_data_line(self, line: str, line_number: int) -> None:
        match = _LABEL_RE.match(line)
        if not match:
            raise AssemblyError("data line must be 'name: .word ...' or 'name: .space N'", line_number)
        name, rest = match.group(1), match.group(2).strip()
        if name in self._data:
            raise DuplicateSymbolError("data symbol %r defined twice" % name, line_number)
        if rest.startswith(".word"):
            value_texts = _split_operands(rest[len(".word"):].strip())
            if not value_texts:
                raise AssemblyError(".word needs at least one value", line_number)
            values = tuple(self._parse_integer(text, line_number) for text in value_texts)
        elif rest.startswith(".space"):
            count = self._parse_integer(rest[len(".space"):].strip(), line_number)
            if count <= 0:
                raise AssemblyError(".space size must be positive", line_number)
            values = (0,) * count
        else:
            raise AssemblyError("unknown data directive in %r" % rest, line_number)
        item = DataItem(name=name, address=self._next_data_address, values=values)
        self._data[name] = item
        self._next_data_address += item.size

    # ------------------------------------------------------------------
    # Pass 2: code blocks.
    # ------------------------------------------------------------------

    def _collect_blocks(self, lines: List[str]) -> List[_PendingBlock]:
        blocks: List[_PendingBlock] = []
        block_names: Dict[str, int] = {}
        current: Optional[_PendingBlock] = None
        pending_intent: Optional[str] = None
        in_data = False
        for line_number, raw in enumerate(lines, start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            if line.startswith(".equ"):
                continue
            if line.startswith(".data"):
                in_data = True
                current = None
                continue
            if line.startswith(".thread"):
                in_data = False
                thread_names = line[len(".thread"):].split()
                if not thread_names:
                    raise AssemblyError(".thread needs at least one thread name", line_number)
                for thread_name in thread_names:
                    if not _IDENT_RE.match(thread_name):
                        raise AssemblyError(
                            "thread name %r is not an identifier" % thread_name,
                            line_number,
                        )
                block_name = thread_names[0]
                if block_name in block_names:
                    raise DuplicateSymbolError(
                        "code block %r defined twice" % block_name, line_number
                    )
                block_names[block_name] = line_number
                current = _PendingBlock(name=block_name, thread_names=thread_names)
                blocks.append(current)
                pending_intent = None
                continue
            if in_data:
                continue
            if current is None:
                raise AssemblyError(
                    "instruction outside of a .thread block: %r" % line, line_number
                )
            if line.startswith(".intent"):
                tag = line[len(".intent"):].strip().strip('"')
                if not tag:
                    raise AssemblyError(".intent needs a tag", line_number)
                pending_intent = tag
                continue
            while True:
                match = _LABEL_RE.match(line)
                if not match or _MEM_RE.match(line):
                    break
                label, line = match.group(1), match.group(2).strip()
                if label in current.labels:
                    raise DuplicateSymbolError(
                        "label %r defined twice in block %r" % (label, current.name),
                        line_number,
                    )
                current.labels[label] = len(current.instructions)
                if not line:
                    break
            if not line:
                continue
            entry = self._parse_instruction_line(line, line_number)
            entry.intent = pending_intent
            pending_intent = None
            current.instructions.append(entry)
        for block in blocks:
            if not block.instructions:
                raise AssemblyError(
                    "block %r contains no instructions" % block.name,
                    block_names[block.name],
                )
            for label, index in block.labels.items():
                if index >= len(block.instructions):
                    raise AssemblyError(
                        "label %r points past the end of block %r" % (label, block.name)
                    )
        return blocks

    def _parse_instruction_line(self, line: str, line_number: int) -> _PendingInstruction:
        parts = line.split(None, 1)
        opcode = parts[0].lower()
        if opcode not in OPCODES:
            raise UnknownOpcodeError("unknown opcode %r" % opcode, line_number)
        operand_texts = _split_operands(parts[1]) if len(parts) > 1 else []
        return _PendingInstruction(opcode, operand_texts, line_number, line)

    # ------------------------------------------------------------------
    # Operand resolution.
    # ------------------------------------------------------------------

    def _resolve(self, entry: _PendingInstruction, block: _PendingBlock) -> Instruction:
        spec = OPCODES[entry.opcode]
        if len(entry.operand_texts) != len(spec.signature):
            raise OperandError(
                "%s expects %d operand(s), got %d"
                % (spec.name, len(spec.signature), len(entry.operand_texts)),
                entry.line,
            )
        operands: List[Operand] = []
        for atom, text in zip(spec.signature, entry.operand_texts):
            operands.append(self._resolve_operand(atom, text, entry.line, block))
        return Instruction(
            opcode=entry.opcode,
            operands=tuple(operands),
            source_line=entry.line,
            source_text=entry.text,
        )

    def _resolve_operand(
        self, atom: str, text: str, line_number: int, block: _PendingBlock
    ) -> Operand:
        if atom == "reg":
            return self._parse_register(text, line_number)
        if atom == "imm":
            return Imm(self._parse_immediate(text, line_number))
        if atom == "mem":
            return self._parse_mem(text, line_number)
        if atom == L:
            if text not in block.labels:
                raise UndefinedSymbolError(
                    "undefined label %r in block %r" % (text, block.name), line_number
                )
            return Imm(block.labels[text])
        raise AssemblyError("internal: unknown signature atom %r" % atom, line_number)

    def _parse_register(self, text: str, line_number: int) -> Reg:
        match = _REGISTER_RE.match(text)
        if not match:
            raise OperandError("expected a register, got %r" % text, line_number)
        index = int(match.group(1))
        if index >= NUM_REGISTERS:
            raise OperandError(
                "register r%d out of range (max r%d)" % (index, NUM_REGISTERS - 1),
                line_number,
            )
        return Reg(index)

    def _parse_immediate(self, text: str, line_number: int) -> int:
        if _IDENT_RE.match(text):
            if text in self._constants:
                return self._constants[text]
            if text in self._data:
                return self._data[text].address
            raise UndefinedSymbolError("undefined symbol %r" % text, line_number)
        return self._parse_integer(text, line_number)

    def _parse_integer(self, text: str, line_number: int) -> int:
        text = text.strip()
        if _IDENT_RE.match(text) and text in self._constants:
            return self._constants[text]
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblyError("invalid integer %r" % text, line_number)

    def _parse_mem(self, text: str, line_number: int) -> Mem:
        match = _MEM_RE.match(text)
        if not match:
            raise OperandError("expected a memory operand [..], got %r" % text, line_number)
        body = match.group(1).strip()
        base_text, offset_text, sign = body, "", 1
        for position, char in enumerate(body):
            if char in "+-" and position > 0:
                base_text = body[:position].strip()
                offset_text = body[position + 1 :].strip()
                sign = 1 if char == "+" else -1
                break
        offset = sign * self._parse_integer(offset_text, line_number) if offset_text else 0
        register = _REGISTER_RE.match(base_text)
        if register:
            index = int(register.group(1))
            if index >= NUM_REGISTERS:
                raise OperandError(
                    "register r%d out of range in memory operand" % index, line_number
                )
            return Mem(base=index, offset=offset)
        if _IDENT_RE.match(base_text):
            if base_text in self._data:
                return Mem(
                    base=None,
                    offset=self._data[base_text].address + offset,
                    # Keep the symbol tag only for exact references; an
                    # offset form would render misleadingly otherwise.
                    symbol=base_text if offset == 0 else None,
                )
            if base_text in self._constants:
                return Mem(base=None, offset=self._constants[base_text] + offset)
            raise UndefinedSymbolError(
                "undefined symbol %r in memory operand" % base_text, line_number
            )
        absolute = self._parse_integer(base_text, line_number)
        return Mem(base=None, offset=absolute + offset)


def assemble(source: str, name: str = "program") -> Program:
    """Convenience wrapper: assemble ``source`` into a :class:`Program`."""
    return Assembler().assemble(source, name=name)
