"""Happens-before data race detection over sequencing regions (Section 3.4).

Two memory operations race when they execute in *overlapping* sequencing
regions of different threads, touch the same address, and at least one is
a write.  Because "overlapping" literally means no sequencer separates the
two operations in the global synchronization order, every reported pair is
a true unordered conflict — **no false positives**, the property the paper
chose the happens-before algorithm for.

Two detectors implement the same definition:

* :class:`HappensBeforeDetector` — the production engine: a **sweep line**
  over region opening/closing sequencer timestamps.  Regions enter an
  active set at their opening timestamp and expire at their closing one,
  so only genuinely overlapping pairs are ever examined; within the
  active set, candidate partners are found through the per-address
  postings of the shared columnar :class:`AccessIndex` instead of
  scanning every active region.  Work is proportional to overlap and
  address sharing, not to the square of the region count.
* :class:`NaiveHappensBeforeDetector` — the seed's quadratic region-pair
  loop with an ``overlaps`` check per pair, retained verbatim as the
  executable reference.  The equivalence tests and
  ``benchmarks/bench_detect_scaling.py`` hold the sweep line to
  byte-identical output (instances, ordering, truncation counters)
  against it.

The sweep-line detector consumes only ``ordered.access_index()``, so its
``ordered`` argument may be a full :class:`OrderedReplay` *or* the
zero-replay :class:`~repro.replay.log_view.LogView` — race sets are
byte-identical either way (the equivalence suite enforces it).  The
naive reference additionally needs ``thread_replays`` and therefore
always takes a real :class:`OrderedReplay`; the test suite
cross-validates both against the full machine trace.
"""

from __future__ import annotations

from collections import defaultdict
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from ..replay.events import ReplayedAccess
from ..replay.log_view import LogView
from ..replay.ordered_replay import OrderedReplay
from ..replay.regions import SequencingRegion, overlaps
from .model import RaceAccess, RaceInstance


class _DetectorBase:
    """Shared conflict enumeration and canonical output ordering.

    ``max_pairs_per_location`` caps the number of instance pairs reported
    per (region pair, address) so that adversarial loops cannot explode
    the instance count; the cap is reported via ``truncated_locations``.
    Both detectors share this code, so the cap semantics cannot drift
    between the sweep line and the reference.
    """

    def __init__(
        self,
        ordered: "OrderedReplay | LogView",
        max_pairs_per_location: Optional[int] = 256,
    ):
        self.ordered = ordered
        self.max_pairs_per_location = max_pairs_per_location
        self.truncated_locations = 0

    def detect(self) -> List[RaceInstance]:  # pragma: no cover - interface
        raise NotImplementedError

    @staticmethod
    def _sort_canonically(instances: List[RaceInstance]) -> List[RaceInstance]:
        instances.sort(
            key=lambda instance: (
                instance.region_a.start_ts,
                instance.region_b.start_ts,
                instance.access_a.thread_step,
                instance.access_b.thread_step,
                instance.address,
            )
        )
        return instances

    def _conflicts(
        self,
        region_a: SequencingRegion,
        accesses_a: Dict[int, List[ReplayedAccess]],
        region_b: SequencingRegion,
        accesses_b: Dict[int, List[ReplayedAccess]],
    ) -> List[RaceInstance]:
        # Canonical side ordering: earlier-opening region is side A.
        if (region_b.start_ts, region_b.tid) < (region_a.start_ts, region_a.tid):
            region_a, region_b = region_b, region_a
            accesses_a, accesses_b = accesses_b, accesses_a
        instances: List[RaceInstance] = []
        common = set(accesses_a) & set(accesses_b)
        for address in sorted(common):
            emitted = 0
            for access_a in accesses_a[address]:
                for access_b in accesses_b[address]:
                    if not (access_a.is_write or access_b.is_write):
                        continue
                    if (
                        self.max_pairs_per_location is not None
                        and emitted >= self.max_pairs_per_location
                    ):
                        self.truncated_locations += 1
                        break
                    instances.append(
                        RaceInstance(
                            access_a=self._to_race_access(region_a, access_a),
                            access_b=self._to_race_access(region_b, access_b),
                            region_a=region_a,
                            region_b=region_b,
                        )
                    )
                    emitted += 1
                else:
                    continue
                break
        return instances

    def _to_race_access(
        self, region: SequencingRegion, access: ReplayedAccess
    ) -> RaceAccess:
        return RaceAccess(
            thread_name=region.thread_name,
            tid=region.tid,
            thread_step=access.thread_step,
            static_id=access.static_id,
            address=access.address,
            value=access.value,
            is_write=access.is_write,
        )


class HappensBeforeDetector(_DetectorBase):
    """Sweep-line happens-before detector over the columnar access index.

    Regions are visited in opening-timestamp order (the access index's
    ordinal order).  A region expires from the active set once its closing
    timestamp is at or before the sweep position — exactly the negation of
    the strict :func:`overlaps` definition — so the active set holds
    precisely the earlier-opening regions that overlap the entering one.
    Candidate partners are the active regions sharing at least one address
    with the entering region, found by union over the entering region's
    addresses in the active per-address index.

    ``perf`` (a :class:`repro.analysis.perf.PerfStats`) receives the
    detect-stage breakdown: index/sweep wall time, regions swept, pairs
    examined vs. the quadratic pair count the naive loop would have
    visited.
    """

    def __init__(
        self,
        ordered: "OrderedReplay | LogView",
        max_pairs_per_location: Optional[int] = 256,
        perf=None,
    ):
        super().__init__(ordered, max_pairs_per_location)
        self.perf = perf

    def detect(self) -> List[RaceInstance]:
        """All race instances in the replayed execution, canonically ordered."""
        perf = self.perf
        if perf is not None:
            with perf.stage("detect.index"):
                index = self.ordered.access_index()
            with perf.stage("detect.sweep"):
                instances = self._sweep(index)
        else:
            index = self.ordered.access_index()
            instances = self._sweep(index)
        return self._sort_canonically(instances)

    def _sweep(self, index) -> List[RaceInstance]:
        instances: List[RaceInstance] = []
        #: Min-heap of (end_ts, ordinal) over currently active regions.
        expiry: List[Tuple[int, int]] = []
        #: address -> ordinals of active regions touching it.
        active_by_address: Dict[int, Set[int]] = defaultdict(set)
        regions = index.regions
        swept = 0
        examined = 0
        for ordinal, region in enumerate(regions):
            addresses = index.addresses_of(ordinal)
            if not addresses:
                continue
            swept += 1
            start_ts = region.start_ts
            # Expire: closed at or before the sweep position means ordered
            # (happens-before), mirroring the strict overlap definition.
            while expiry and expiry[0][0] <= start_ts:
                _, expired = heappop(expiry)
                for address in index.addresses_of(expired):
                    active_by_address[address].discard(expired)
            candidates: Set[int] = set()
            for address in addresses:
                candidates |= active_by_address[address]
            tid = region.tid
            grouped = None
            for other in sorted(candidates):
                other_region = regions[other]
                if other_region.tid == tid:
                    continue
                examined += 1
                if grouped is None:
                    grouped = index.by_address(ordinal)
                instances.extend(
                    self._conflicts(
                        other_region,
                        index.by_address(other),
                        region,
                        grouped,
                    )
                )
            heappush(expiry, (region.end_ts, ordinal))
            for address in addresses:
                active_by_address[address].add(ordinal)
        if self.perf is not None:
            self.perf.detect_regions += swept
            self.perf.detect_pairs_examined += examined
            self.perf.detect_pairs_pruned += swept * (swept - 1) // 2 - examined
        return instances


class NaiveHappensBeforeDetector(_DetectorBase):
    """The seed's quadratic region-pair detector, kept as the reference.

    Every region pair is tested with :func:`overlaps`; per-region access
    lists are re-materialized from the thread replays on every call,
    exactly as the seed did (it deliberately does not touch the columnar
    index, so benchmarks compare genuine before/after costs).
    """

    def detect(self) -> List[RaceInstance]:
        """All race instances in the replayed execution, canonically ordered."""
        regions = [
            region for region in self.ordered.all_regions() if not region.is_empty
        ]
        indexed = [
            (region, self._index_accesses(region))
            for region in regions
        ]
        instances: List[RaceInstance] = []
        for position_a in range(len(indexed)):
            region_a, accesses_a = indexed[position_a]
            if not accesses_a:
                continue
            for position_b in range(position_a + 1, len(indexed)):
                region_b, accesses_b = indexed[position_b]
                if not accesses_b or not overlaps(region_a, region_b):
                    continue
                instances.extend(
                    self._conflicts(region_a, accesses_a, region_b, accesses_b)
                )
        return self._sort_canonically(instances)

    def _index_accesses(
        self, region: SequencingRegion
    ) -> Dict[int, List[ReplayedAccess]]:
        replay = self.ordered.thread_replays[region.thread_name]
        by_address: Dict[int, List[ReplayedAccess]] = defaultdict(list)
        for access in replay.accesses_in_steps(region.start_step, region.end_step):
            if not access.is_sync:
                by_address[access.address].append(access)
        return dict(by_address)


class StreamingHappensBeforeDetector(_DetectorBase):
    """The sweep line, fed one region at a time in sweep order.

    The incremental twin of :class:`HappensBeforeDetector._sweep`: the
    segment cursor hands regions over in opening-timestamp order (with
    their captured rows), :meth:`add_region` runs exactly one iteration
    of the batch sweep loop — expire, candidate union, conflict
    enumeration, activate — and *returns the instances that iteration
    produced*, so races surface while later segments are still being
    read (or recorded).  Expired regions are immediately retired from
    the :class:`StreamingAccessWindow`, which is what bounds resident
    state by the active overlap window.

    :meth:`finish` returns the complete canonically-ordered race set —
    byte-identical to the batch detector's (the same region order, the
    same candidate sets, the same per-location cap arithmetic, and the
    canonical sort key is total, so enumeration order cannot leak into
    the output).
    """

    def __init__(
        self,
        max_pairs_per_location: Optional[int] = 256,
        perf=None,
    ):
        super().__init__(None, max_pairs_per_location)
        from ..analysis.access_index import StreamingAccessWindow

        self.window = StreamingAccessWindow(perf=perf)
        self.perf = perf
        self._expiry: List[Tuple[int, int]] = []
        self._active_by_address: Dict[int, Set[int]] = defaultdict(set)
        self._instances: List[RaceInstance] = []
        self._swept = 0
        self._examined = 0
        self._last_start_ts: Optional[int] = None
        self._finished = False

    def add_region(self, region: SequencingRegion, rows) -> List[RaceInstance]:
        """Sweep one region; returns the race instances it completed.

        ``rows`` are the region's captured ``(step, flag, address,
        value, static_id)`` tuples (sync rows filtered by the window).
        Regions must arrive in strictly increasing ``start_ts`` order —
        the segment cursor's release order.
        """
        if self._last_start_ts is not None and region.start_ts <= self._last_start_ts:
            raise ValueError(
                "streaming sweep fed out of order: region %s opens at ts %d, "
                "after ts %d was already swept"
                % (region, region.start_ts, self._last_start_ts)
            )
        self._last_start_ts = region.start_ts
        window = self.window
        ordinal = window.admit(region, rows)
        if ordinal is None:
            return []
        self._swept += 1
        start_ts = region.start_ts
        expiry = self._expiry
        active_by_address = self._active_by_address
        while expiry and expiry[0][0] <= start_ts:
            _, expired = heappop(expiry)
            for address in window.addresses_of(expired):
                active_by_address[address].discard(expired)
            window.retire(expired)
        addresses = window.addresses_of(ordinal)
        candidates: Set[int] = set()
        for address in addresses:
            candidates |= active_by_address[address]
        tid = region.tid
        grouped = None
        fresh: List[RaceInstance] = []
        for other in sorted(candidates):
            other_region = window.region(other)
            if other_region.tid == tid:
                continue
            self._examined += 1
            if grouped is None:
                grouped = window.by_address(ordinal)
            fresh.extend(
                self._conflicts(
                    other_region,
                    window.by_address(other),
                    region,
                    grouped,
                )
            )
        heappush(expiry, (region.end_ts, ordinal))
        for address in addresses:
            active_by_address[address].add(ordinal)
        self._instances.extend(fresh)
        return fresh

    def finish(self) -> List[RaceInstance]:
        """Retire the remaining window and return the canonical race set."""
        if not self._finished:
            self._finished = True
            while self._expiry:
                _, expired = heappop(self._expiry)
                self.window.retire(expired)
            self._active_by_address.clear()
            if self.perf is not None:
                self.perf.detect_regions += self._swept
                self.perf.detect_pairs_examined += self._examined
                self.perf.detect_pairs_pruned += (
                    self._swept * (self._swept - 1) // 2 - self._examined
                )
        return self._sort_canonically(self._instances)


def find_races(
    ordered: "OrderedReplay | LogView",
    max_pairs_per_location: Optional[int] = 256,
) -> List[RaceInstance]:
    """Convenience wrapper around :class:`HappensBeforeDetector`."""
    return HappensBeforeDetector(
        ordered, max_pairs_per_location=max_pairs_per_location
    ).detect()
