"""Replay-log validation: catch corrupt or inconsistent logs up front.

A replay log is a contract between the recorder and every downstream
analysis; a silently corrupt log (truncated file, hand-edited JSON,
version skew) would otherwise surface as a confusing
:class:`~repro.replay.errors.ReplayDivergence` deep inside replay.  The
validator checks the structural invariants the rest of the system relies
on and reports every violation with its location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa.errors import IsaError
from .log import ReplayLog


@dataclass(frozen=True)
class ValidationIssue:
    """One structural problem found in a replay log."""

    thread: Optional[str]
    field: str
    message: str

    def __str__(self) -> str:
        location = "thread %r, %s" % (self.thread, self.field) if self.thread else self.field
        return "%s: %s" % (location, self.message)


class InvalidLogError(Exception):
    """Raised by :func:`validate_log` in strict mode."""

    def __init__(self, issues: List[ValidationIssue]):
        self.issues = issues
        super().__init__(
            "replay log failed validation with %d issue(s):\n%s"
            % (len(issues), "\n".join("  - %s" % issue for issue in issues))
        )


def validate_log(log: ReplayLog, strict: bool = False) -> List[ValidationIssue]:
    """Check every structural invariant of a replay log.

    Returns the list of issues found (empty when the log is well formed);
    with ``strict`` a non-empty result raises :class:`InvalidLogError`.
    """
    issues: List[ValidationIssue] = []

    def issue(thread: Optional[str], field: str, message: str) -> None:
        issues.append(ValidationIssue(thread=thread, field=field, message=message))

    # -- the embedded program must assemble and cover every thread -------
    program = None
    try:
        program = log.reassemble_program()
    except IsaError as error:
        issue(None, "program_source", "does not assemble: %s" % error)

    if not log.threads:
        issue(None, "threads", "log contains no threads")

    seen_timestamps = {}
    for name, thread in log.threads.items():
        if thread.name != name:
            issue(name, "name", "key %r does not match thread name %r" % (name, thread.name))
        if thread.steps < 0:
            issue(name, "steps", "negative step count %d" % thread.steps)
        if len(thread.initial_registers) != 16:
            issue(
                name,
                "initial_registers",
                "expected 16 registers, got %d" % len(thread.initial_registers),
            )

        # -- sequencers -------------------------------------------------
        if not thread.sequencers:
            issue(name, "sequencers", "no sequencers (thread start/end missing)")
        else:
            ordered = sorted(thread.sequencers, key=lambda s: s.timestamp)
            if ordered[0].kind != "thread_start":
                issue(name, "sequencers", "first sequencer is %r, not thread_start" % ordered[0].kind)
            elif ordered[0].thread_step != -1:
                issue(name, "sequencers", "thread_start at step %d, expected -1" % ordered[0].thread_step)
            if ordered[-1].kind != "thread_end":
                issue(name, "sequencers", "last sequencer is %r, not thread_end" % ordered[-1].kind)
            elif ordered[-1].thread_step != thread.steps:
                issue(
                    name,
                    "sequencers",
                    "thread_end at step %d, expected %d" % (ordered[-1].thread_step, thread.steps),
                )
            previous_step = -2
            for sequencer in ordered:
                if sequencer.timestamp in seen_timestamps:
                    issue(
                        name,
                        "sequencers",
                        "timestamp %d reused (also in thread %r)"
                        % (sequencer.timestamp, seen_timestamps[sequencer.timestamp]),
                    )
                seen_timestamps[sequencer.timestamp] = name
                if sequencer.thread_step < previous_step:
                    issue(
                        name,
                        "sequencers",
                        "steps not monotone: %d after %d"
                        % (sequencer.thread_step, previous_step),
                    )
                previous_step = sequencer.thread_step
                if not -1 <= sequencer.thread_step <= thread.steps:
                    issue(
                        name,
                        "sequencers",
                        "step %d outside [-1, %d]" % (sequencer.thread_step, thread.steps),
                    )

        # -- load and syscall records ------------------------------------
        for step, record in thread.loads.items():
            if step != record.thread_step:
                issue(name, "loads", "key %d does not match record step %d" % (step, record.thread_step))
            if not 0 <= step < thread.steps:
                issue(name, "loads", "load at step %d outside [0, %d)" % (step, thread.steps))
            if record.address <= 0:
                issue(name, "loads", "load record with non-positive address %#x" % record.address)
        for step, record in thread.syscalls.items():
            if not 0 <= step < thread.steps:
                issue(name, "syscalls", "syscall at step %d outside [0, %d)" % (step, thread.steps))
            if not record.name.startswith("sys_"):
                issue(name, "syscalls", "record name %r is not a syscall" % record.name)

        # -- footprint and block ----------------------------------------
        if program is not None:
            if thread.block not in program.blocks:
                issue(name, "block", "block %r not in the embedded program" % thread.block)
            else:
                block_length = len(program.blocks[thread.block])
                for pc in thread.pc_footprint:
                    if not 0 <= pc < block_length:
                        issue(name, "pc_footprint", "pc %d outside block of length %d" % (pc, block_length))
            if name not in program.threads:
                issue(name, "name", "thread not declared by the embedded program")

        if thread.end is None:
            issue(name, "end", "missing end record")
        elif thread.end.reason == "fault" and not thread.end.fault_kind:
            issue(name, "end", "faulted thread without a fault kind")

    # -- global order ----------------------------------------------------
    if log.global_order is not None:
        if len(log.global_order) != log.total_instructions:
            issue(
                None,
                "global_order",
                "covers %d steps but threads executed %d"
                % (len(log.global_order), log.total_instructions),
            )
        tids = {thread.tid for thread in log.threads.values()}
        for tid, step in log.global_order:
            if tid not in tids:
                issue(None, "global_order", "unknown tid %d" % tid)
                break

    if strict and issues:
        raise InvalidLogError(issues)
    return issues
