"""Unit tests for the workload corpus and its ground-truth labels."""

import pytest

from repro.isa.program import HEAP_BASE
from repro.race.heuristics import BenignCategory
from repro.vm import RandomScheduler, run_program
from repro.workloads import (
    GroundTruth,
    all_workloads,
    atomic_handoff,
    clean_suite,
    disjoint_bits,
    flag_publish,
    lost_update,
    mixed_service,
    paper_suite,
    refcount_free,
    stats_counter,
    toctou_handle,
    unsafe_publish,
    workload_for_execution,
)
from repro.workloads.composite import combine_workloads


class TestCorpusIntegrity:
    def test_every_workload_assembles(self):
        for name, workload in all_workloads().items():
            program = workload.program()
            assert program.threads, name

    def test_workload_names_unique(self):
        names = [e.workload.name for e in paper_suite()]
        # The same workload may appear under several seeds; names must be
        # consistent per workload, and execution ids unique.
        ids = [e.execution_id for e in paper_suite()]
        assert len(set(ids)) == len(ids)

    def test_block_names_globally_unique(self):
        """Two different workloads must never share a code-block name —
        otherwise their unique races would be conflated when merged."""
        seen = {}
        for name, workload in all_workloads().items():
            for block in workload.program().blocks:
                assert block not in seen, (
                    "block %r in both %s and %s" % (block, seen[block], name)
                )
                seen[block] = name

    def test_every_racy_workload_has_expectations(self):
        for execution in paper_suite():
            assert execution.workload.expectations, execution.workload.name

    def test_clean_workloads_declare_race_free(self):
        for execution in clean_suite():
            assert execution.workload.expect_race_free

    def test_workload_for_execution(self):
        execution = paper_suite()[0]
        found = workload_for_execution(execution.execution_id)
        assert found is not None and found.name == execution.workload.name
        assert workload_for_execution("nonsense") is None


class TestGroundTruthResolution:
    def test_symbol_expectation(self):
        workload = flag_publish(9)
        program = workload.program()
        address = program.data_address("flag_fp9")
        expectation = workload.expectation_for_address(address)
        assert expectation is not None
        assert expectation.truth is GroundTruth.BENIGN
        assert expectation.category is BenignCategory.USER_CONSTRUCTED_SYNC

    def test_heap_expectation(self):
        workload = refcount_free(9)
        expectation = workload.expectation_for_address(HEAP_BASE + 5)
        assert expectation is not None
        assert expectation.truth is GroundTruth.HARMFUL

    def test_unknown_address(self):
        workload = flag_publish(9)
        assert workload.expectation_for_address(0xDEAD) is None

    def test_multi_word_symbol_covered(self):
        from repro.workloads.benign_both_values import producer_consumer

        workload = producer_consumer(9, slots=4)
        program = workload.program()
        base = program.data_address("buf_pc9")
        for offset in range(4):
            assert workload.ground_truth_for_address(base + offset) is GroundTruth.BENIGN

    def test_has_harmful_races_flag(self):
        assert lost_update(9).has_harmful_races
        assert not stats_counter(9).has_harmful_races


class TestWorkloadBehaviour:
    def test_lost_update_actually_loses_updates(self):
        workload = lost_update(8, iters=10)
        program = workload.program()
        finals = set()
        for seed in range(8):
            result = run_program(
                program.__class__(**vars(program))
                if False
                else workload.program(),
                scheduler=RandomScheduler(seed=seed, switch_probability=0.6),
                seed=seed,
            )
            finals.add(result.memory[program.data_address("balance_lu8")])
        correct = 100 + 10 * 10 + 30 * 10
        assert correct in finals or len(finals) > 1
        assert any(value < correct for value in finals)  # money was lost

    def test_refcount_can_double_free(self):
        workload = refcount_free(8)
        program = workload.program()
        faults = []
        for seed in range(40):
            result = run_program(
                workload.program(),
                scheduler=RandomScheduler(seed=seed, switch_probability=0.3),
                seed=seed,
            )
            faults.extend(
                outcome.fault_kind
                for outcome in result.threads.values()
                if outcome.fault_kind
            )
        assert any("free" in kind for kind in faults), faults

    def test_unsafe_publish_mostly_survives_recording(self):
        workload = unsafe_publish(8)
        result = run_program(
            workload.program(),
            scheduler=RandomScheduler(seed=16, switch_probability=0.3),
            seed=16,
        )
        assert result.threads["upr_up8"].status == "halted"

    def test_clean_workloads_run_clean(self):
        for execution in clean_suite():
            result = run_program(
                execution.workload.program(),
                scheduler=RandomScheduler(seed=execution.seed),
                seed=execution.seed,
            )
            assert not result.faulted_threads

    def test_mixed_service_runs(self):
        workload = mixed_service(8, iters=5, moniters=3)
        result = run_program(
            workload.program(), scheduler=RandomScheduler(seed=1), seed=1
        )
        assert not result.faulted_threads
        assert len(result.output) == 2  # one sys_print per service thread


class TestComposite:
    def test_combined_workload_assembles(self):
        combined = combine_workloads(
            "combo_test",
            "test combo",
            flag_publish(8),
            disjoint_bits(8),
        )
        program = combined.program()
        assert set(program.threads) >= {"pub_fp8", "sub_fp8", "bitw_db8", "bitr_db8"}

    def test_combined_expectations_union(self):
        combined = combine_workloads(
            "combo_test2", "test", flag_publish(6), lost_update(6)
        )
        assert len(combined.expectations) == (
            len(flag_publish(6).expectations) + len(lost_update(6).expectations)
        )
        assert combined.has_harmful_races

    def test_combined_may_fault_propagates(self):
        combined = combine_workloads("combo_test3", "test", toctou_handle(6))
        assert combined.may_fault

    def test_empty_combination_rejected(self):
        with pytest.raises(ValueError):
            combine_workloads("empty", "nothing")
