"""Persistent job store: states, idempotent submission, crash recovery.

A *job* is one unit of analysis work: either a suite workload to record
and analyse (``workload`` jobs, named into the labelled corpus) or an
uploaded replay log to analyse (``log`` jobs).  Jobs move through::

    queued ──► running ──► done
       │          │  └───► failed     (after the retry policy gives up)
       └──────────┴──────► cancelled

Submission is **idempotent, keyed by content address**: a workload job's
key is exactly the :class:`repro.analysis.cache.SuiteCache` content hash
of the recording it would produce (:func:`execution_cache_key`), and a
log job's key hashes the uploaded bytes plus the analysis parameters.
Submitting work the service already has — queued, running, or finished —
returns the existing job instead of creating a duplicate, so a client
retrying over a flaky connection (or a restarted server re-submitting)
never causes the same analysis to run twice.

The store journals every transition to an append-only JSON-lines file.
:meth:`JobStore.open` replays the journal on startup: finished jobs come
back with their reports, queued jobs come back queued, and jobs that were
*running* when the process died are re-queued (their attempt counters
preserved) — crash recovery without a database.  A torn trailing line
(the crash happened mid-append) is ignored, mirroring the suite cache's
torn-file tolerance.
"""

from __future__ import annotations

import base64
import hashlib
import json
import threading
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.cache import execution_cache_key
from ..workloads.base import Workload
from ..workloads.suite import Execution

#: Bump when the journal line schema changes (old journals are ignored).
JOURNAL_SCHEMA_VERSION = 1


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def __str__(self) -> str:
        return self.value

    @property
    def is_final(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """What one job analyses.

    ``kind`` is ``"workload"`` (record + analyse a named suite workload
    under a seed) or ``"log"`` (analyse uploaded replay-log bytes).
    ``mode`` selects the pipeline depth: ``"full"`` runs the whole
    detect-and-classify funnel; ``"detect"`` stops after detection and
    — for logs with captured columns — runs the zero-replay log-native
    path, so triage jobs never pay for replay or classification;
    ``"stream"`` runs the full funnel with streaming detection and
    eager per-window classification (same report bytes as ``"full"``,
    first verdicts land before the sweep finishes).
    """

    kind: str
    workload: Optional[str] = None
    seed: int = 0
    switch_probability: float = 0.3
    log_data: Optional[bytes] = None
    mode: str = "full"

    @classmethod
    def for_workload(
        cls,
        name: str,
        seed: int = 0,
        switch_probability: float = 0.3,
        mode: str = "full",
    ) -> "JobSpec":
        return cls(
            kind="workload",
            workload=name,
            seed=seed,
            switch_probability=switch_probability,
            mode=mode,
        )

    @classmethod
    def for_log(cls, data: bytes, mode: str = "full") -> "JobSpec":
        return cls(kind="log", log_data=data, mode=mode)

    def execution(self, workload: Workload) -> Execution:
        """The suite :class:`Execution` a workload job records."""
        return Execution(
            execution_id="%s#s%d" % (workload.name, self.seed),
            workload=workload,
            seed=self.seed,
            switch_probability=self.switch_probability,
        )

    def to_json(self) -> dict:
        payload: dict = {"kind": self.kind}
        if self.kind == "workload":
            payload["workload"] = self.workload
            payload["seed"] = self.seed
            payload["switch_probability"] = self.switch_probability
        else:
            payload["log_b64"] = base64.b64encode(self.log_data or b"").decode("ascii")
        # Absent means "full" so journals written before modes existed
        # replay unchanged (and full jobs keep their old journal lines).
        if self.mode != "full":
            payload["mode"] = self.mode
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "JobSpec":
        mode = payload.get("mode", "full")
        if payload["kind"] == "workload":
            return cls.for_workload(
                payload["workload"],
                seed=int(payload.get("seed", 0)),
                switch_probability=float(payload.get("switch_probability", 0.3)),
                mode=mode,
            )
        return cls.for_log(base64.b64decode(payload["log_b64"]), mode=mode)


def content_key_for(
    spec: JobSpec,
    workload: Optional[Workload],
    max_steps: int,
    capture_global_order: bool,
    max_pairs_per_location: Optional[int],
) -> str:
    """The idempotency key of one job.

    Workload jobs reuse the suite cache's content address — the sha256
    of everything the recording depends on — extended with the detect
    parameter, so "same job" and "same cache entry" agree by
    construction.  Log jobs hash the uploaded bytes with the same
    analysis parameters.
    """
    if spec.kind == "workload":
        assert workload is not None
        base = execution_cache_key(
            spec.execution(workload), max_steps, capture_global_order
        )
    else:
        base = hashlib.sha256(spec.log_data or b"").hexdigest()
    material_fields = [JOURNAL_SCHEMA_VERSION, spec.kind, base, max_pairs_per_location]
    # Non-default modes extend the material; full-mode keys are unchanged
    # so pre-mode journals and caches still dedup against new submissions.
    if spec.mode != "full":
        material_fields.append(spec.mode)
    material = json.dumps(material_fields, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One job's full lifecycle state."""

    job_id: str
    spec: JobSpec
    content_key: str
    priority: int = 0
    state: JobState = JobState.QUEUED
    #: Finished (or started) run attempts; compared against the retry policy.
    attempts: int = 0
    error: Optional[str] = None
    #: The canonical report document (see ``pipeline.execution_report``).
    report: Optional[dict] = None
    #: Merged ``PerfStats.to_json()`` of the analysing worker.
    perf: Optional[dict] = None
    #: Wall seconds the successful attempt took.
    elapsed_s: Optional[float] = None
    #: Monotonic submission sequence (order of first submission).
    seq: int = 0
    #: True when journal recovery re-queued this job after a crash.
    recovered: bool = False

    def status_json(self) -> dict:
        """The public status document (``GET /jobs/<id>``)."""
        return {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "mode": self.spec.mode,
            "workload": self.spec.workload,
            "seed": self.spec.seed if self.spec.kind == "workload" else None,
            "content_key": self.content_key,
            "priority": self.priority,
            "state": str(self.state),
            "attempts": self.attempts,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "recovered": self.recovered,
            "has_report": self.report is not None,
        }


class JobStore:
    """Thread-safe job table with an append-only JSON-lines journal."""

    def __init__(self, journal_path: Optional[Union[str, Path]] = None):
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._seq = 0
        self._journal_path = Path(journal_path) if journal_path else None
        self._journal_file = None
        if self._journal_path is not None:
            self._journal_path.parent.mkdir(parents=True, exist_ok=True)
            self._journal_file = open(self._journal_path, "a", encoding="utf-8")

    # -- construction / recovery ---------------------------------------

    @classmethod
    def open(cls, journal_path: Union[str, Path]) -> "JobStore":
        """Load (or create) a journaled store, recovering prior state.

        Jobs that were ``running`` at crash time come back ``queued``
        with ``recovered=True`` — the caller re-enqueues everything
        :meth:`pending` returns.  Torn trailing lines are skipped.
        """
        path = Path(journal_path)
        events: List[dict] = []
        if path.exists():
            for line in path.read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError:
                    # A torn line can only be the crash-interrupted tail.
                    break
        store = cls.__new__(cls)
        store._lock = threading.RLock()
        store._jobs = {}
        store._by_key = {}
        store._seq = 0
        store._journal_path = path
        store._journal_file = None
        store._replay_events(events)
        path.parent.mkdir(parents=True, exist_ok=True)
        store._journal_file = open(path, "a", encoding="utf-8")
        # Re-journal recovery transitions (running -> queued) so a second
        # crash before the re-run still recovers correctly.
        for job in store._jobs.values():
            if job.recovered:
                store._append(
                    {
                        "event": "state",
                        "job_id": job.job_id,
                        "state": str(JobState.QUEUED),
                        "attempts": job.attempts,
                        "recovered": True,
                    }
                )
        return store

    def _replay_events(self, events: List[dict]) -> None:
        for event in events:
            kind = event.get("event")
            if kind == "submit":
                if event.get("schema") != JOURNAL_SCHEMA_VERSION:
                    continue
                job = Job(
                    job_id=event["job_id"],
                    spec=JobSpec.from_json(event["spec"]),
                    content_key=event["content_key"],
                    priority=int(event.get("priority", 0)),
                    seq=self._seq,
                )
                self._seq += 1
                self._jobs[job.job_id] = job
                self._by_key[job.content_key] = job.job_id
            elif kind == "state":
                job = self._jobs.get(event.get("job_id"))
                if job is None:
                    continue
                job.state = JobState(event["state"])
                job.attempts = int(event.get("attempts", job.attempts))
                job.error = event.get("error")
            elif kind == "done":
                job = self._jobs.get(event.get("job_id"))
                if job is None:
                    continue
                job.state = JobState.DONE
                job.report = event.get("report")
                job.perf = event.get("perf")
                job.elapsed_s = event.get("elapsed_s")
                job.error = None
            elif kind == "discard":
                job = self._jobs.pop(event.get("job_id"), None)
                if job is not None:
                    self._by_key.pop(job.content_key, None)
        for job in self._jobs.values():
            # Anything non-final at crash time is recovered work: jobs
            # caught mid-run go back to the queue (attempts preserved),
            # queued jobs stay queued — both get re-enqueued on startup.
            if job.state in (JobState.RUNNING, JobState.QUEUED):
                job.state = JobState.QUEUED
                job.recovered = True

    # -- journalling ---------------------------------------------------

    def _append(self, event: dict) -> None:
        if self._journal_file is None:
            return
        self._journal_file.write(json.dumps(event, sort_keys=True) + "\n")
        self._journal_file.flush()

    def close(self) -> None:
        with self._lock:
            if self._journal_file is not None:
                self._journal_file.close()
                self._journal_file = None

    # -- submission and lookup -----------------------------------------

    def submit(
        self, spec: JobSpec, content_key: str, priority: int = 0
    ) -> Tuple[Job, bool]:
        """Add a job (idempotently); returns ``(job, created)``.

        An existing job in any non-``failed``/non-``cancelled`` state is
        returned as-is — same content, same job, no duplicate work.  A
        failed or cancelled job is revived: re-queued under the same id
        with a fresh attempt budget.
        """
        with self._lock:
            existing_id = self._by_key.get(content_key)
            if existing_id is not None:
                job = self._jobs[existing_id]
                if job.state in (JobState.FAILED, JobState.CANCELLED):
                    job.state = JobState.QUEUED
                    job.attempts = 0
                    job.error = None
                    self._append(
                        {
                            "event": "state",
                            "job_id": job.job_id,
                            "state": str(JobState.QUEUED),
                            "attempts": 0,
                        }
                    )
                    return job, True
                return job, False
            job = Job(
                job_id="j-%s" % content_key[:16],
                spec=spec,
                content_key=content_key,
                priority=priority,
                seq=self._seq,
            )
            self._seq += 1
            self._jobs[job.job_id] = job
            self._by_key[content_key] = job.job_id
            self._append(
                {
                    "event": "submit",
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "job_id": job.job_id,
                    "content_key": content_key,
                    "priority": priority,
                    "spec": spec.to_json(),
                }
            )
            return job, True

    def rollback_submit(
        self,
        job_id: str,
        prior_state: Optional[JobState] = None,
        prior_error: Optional[str] = None,
    ) -> None:
        """Undo a :meth:`submit` whose queue admission was rejected.

        A brand-new job (``prior_state=None``) is discarded outright —
        journaled, so a restart does not revive work the client was told
        was rejected.  A revived failed/cancelled job is put back in the
        prior state the caller captured before resubmitting.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return
            if prior_state is None:
                del self._jobs[job_id]
                self._by_key.pop(job.content_key, None)
                self._append({"event": "discard", "job_id": job_id})
            else:
                self._transition(job_id, prior_state, error=prior_error)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def by_content_key(self, content_key: str) -> Optional[Job]:
        with self._lock:
            job_id = self._by_key.get(content_key)
            return self._jobs.get(job_id) if job_id else None

    def pending(self) -> List[Job]:
        """Queued jobs in submission order (for startup re-enqueue)."""
        with self._lock:
            queued = [j for j in self._jobs.values() if j.state is JobState.QUEUED]
            return sorted(queued, key=lambda job: job.seq)

    def finished(self) -> List[Job]:
        """DONE jobs in submission order (for fleet heal-on-start)."""
        with self._lock:
            done = [j for j in self._jobs.values() if j.state is JobState.DONE]
            return sorted(done, key=lambda job: job.seq)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                counts[job.state.value] += 1
            return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # -- state transitions ---------------------------------------------

    def _transition(
        self, job_id: str, state: JobState, error: Optional[str] = None
    ) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            job.state = state
            job.error = error
            self._append(
                {
                    "event": "state",
                    "job_id": job_id,
                    "state": str(state),
                    "attempts": job.attempts,
                    "error": error,
                }
            )
            return job

    def mark_running(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            job.attempts += 1
            return self._transition(job_id, JobState.RUNNING)

    def mark_requeued(self, job_id: str, error: Optional[str] = None) -> Job:
        """A failed attempt that the retry policy sends around again."""
        return self._transition(job_id, JobState.QUEUED, error=error)

    def mark_failed(self, job_id: str, error: str) -> Job:
        return self._transition(job_id, JobState.FAILED, error=error)

    def mark_cancelled(self, job_id: str) -> Job:
        return self._transition(job_id, JobState.CANCELLED)

    def mark_done(
        self,
        job_id: str,
        report: dict,
        perf: Optional[dict] = None,
        elapsed_s: Optional[float] = None,
    ) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            job.report = report
            job.perf = perf
            job.elapsed_s = elapsed_s
            job.error = None
            # State last: HTTP handlers read state/report without the
            # lock, and an observed DONE must imply a visible report.
            job.state = JobState.DONE
            self._append(
                {
                    "event": "done",
                    "job_id": job_id,
                    "report": report,
                    "perf": perf,
                    "elapsed_s": elapsed_s,
                }
            )
            return job
