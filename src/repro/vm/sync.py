"""Lock table: blocking mutexes addressed by memory location.

A ``lock [addr]`` instruction acquires the mutex whose identity *is* the
memory address; while held, the word at ``addr`` reads as 1, and 0 when
free, so the lock state is an ordinary part of the shared-memory image
(mirroring an x86 spinlock word updated by lock-prefixed instructions).

Acquisition order is the order in which the machine grants the lock — each
grant is a sequencer point, which is exactly what gives iDNA its total
order over synchronization operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import FaultKind, MemoryFault


class LockTable:
    """Tracks lock ownership and FIFO waiters per lock address."""

    def __init__(self) -> None:
        self._owners: Dict[int, int] = {}
        self._waiters: Dict[int, List[int]] = {}

    def owner(self, address: int) -> Optional[int]:
        return self._owners.get(address)

    def is_held(self, address: int) -> bool:
        return address in self._owners

    def try_acquire(self, tid: int, address: int) -> bool:
        """Acquire if free; returns False (caller should block) when held."""
        current = self._owners.get(address)
        if current is None:
            self._owners[address] = tid
            return True
        if current == tid:
            raise MemoryFault(
                FaultKind.LOCK_MISUSE, address, "recursive acquire by thread %d" % tid
            )
        return False

    def add_waiter(self, tid: int, address: int) -> None:
        waiters = self._waiters.setdefault(address, [])
        if tid not in waiters:
            waiters.append(tid)

    def release(self, tid: int, address: int) -> Optional[int]:
        """Release the lock; returns the next FIFO waiter to wake, if any."""
        current = self._owners.get(address)
        if current != tid:
            raise MemoryFault(
                FaultKind.LOCK_MISUSE,
                address,
                "release by thread %d but owner is %s" % (tid, current),
            )
        del self._owners[address]
        waiters = self._waiters.get(address)
        if waiters:
            return waiters.pop(0)
        return None

    def waiters(self, address: int) -> List[int]:
        return list(self._waiters.get(address, []))

    def drop_waiter(self, tid: int, address: int) -> None:
        waiters = self._waiters.get(address)
        if waiters and tid in waiters:
            waiters.remove(tid)
