"""The classification engine: parallel, memoized execution analysis.

This layer sits between :mod:`repro.analysis.pipeline` (one execution →
one :class:`ExecutionAnalysis`) and the suite/experiment drivers.  It adds
two things the per-execution pipeline does not have:

* **fan-out** — executions are independent, so the engine can dispatch
  them across a ``ProcessPoolExecutor`` (``jobs`` workers) and reassemble
  the results in submission order;
* **verdict memoization** — race instances that are structurally identical
  replays (same racing code, same in-region offsets, same recorded
  prefix/suffix content, same live-in values *where the replay actually
  looked*) must produce the same verdict, so the engine caches verdicts
  and serves repeats without touching the virtual processor.

Cache-key soundness (the full argument is in ``docs/performance.md``): a
verdict is a deterministic function of (a) the two racing regions'
recorded content — start pc, live-in registers, executed static ids and
every recorded access with its value, region-end state, (b) the racing
ops' in-region step offsets and owning thread names, (c) which racing op
was originally first, (d) the freed-range set, and (e) the pair-snapshot
live-in values the replay *reads*.  Components (a)–(c) form the structural
key — (a) is interned once per region so per-instance keys are tuples of
small ints; (d)–(e) cannot be known up front, so the first classification
runs with a :class:`TrackingImage` that records every live-in probe
(including misses), and the probe set + values are stored with the
verdict.  A later instance hits only when its own live-in agrees on every
probed address — and since the replay is deterministic in exactly those
inputs, it would have probed the same addresses and produced the same
verdict.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..race.classifier import ClassifierConfig, RaceClassifier
from ..race.model import RaceInstance
from ..race.outcomes import ClassifiedInstance, InstanceOutcome
from ..replay.errors import ReplayFailureKind
from ..replay.regions import SequencingRegion
from ..workloads.suite import Execution
from . import batching
from .batching import VERDICT_INDEX_VERSION, PlannedBatch, plan_batches
from .perf import PerfStats
from .pipeline import (
    ExecutionAnalysis,
    analyze_execution,
    analyze_log,
    analyze_log_stream,
)


class TrackingImage(dict):
    """A live-in image that records every probe, *including misses*.

    The classifier and virtual processor only ever read the live-in image
    (``in``, ``[]``, ``.get``); every such probe lands in :attr:`probes`
    as ``address -> value`` (``None`` for a miss — memory values are
    non-negative ints, so ``None`` is unambiguous).  Misses matter: a
    replay that faulted on an absent address must not hit a cached verdict
    computed when the address was present, and vice versa.
    """

    __slots__ = ("probes",)

    _MISS = object()

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.probes: Dict[int, Optional[int]] = {}

    def _probe(self, key):
        value = super().get(key, self._MISS)
        self.probes[key] = None if value is self._MISS else value
        return value

    def get(self, key, default=None):
        value = self._probe(key)
        return default if value is self._MISS else value

    def __contains__(self, key) -> bool:
        return self._probe(key) is not self._MISS

    def __getitem__(self, key):
        value = self._probe(key)
        if value is self._MISS:
            raise KeyError(key)
        return value


class TrackingView:
    """A :class:`TrackingImage` over a lazy live-in reader.

    Same probe-recording contract, but backed by any read-only mapping
    (``.get`` suffices — misses stay misses) instead of a materialized
    dict, so the batched classifier can track probes against
    :meth:`OrderedReplay.pair_live_in`'s lazy view without copying or
    reconstructing the pair image.
    """

    __slots__ = ("_backing", "probes")

    _MISS = TrackingImage._MISS

    def __init__(self, backing) -> None:
        self._backing = backing
        self.probes: Dict[int, Optional[int]] = {}

    def _probe(self, key):
        value = self._backing.get(key, self._MISS)
        self.probes[key] = None if value is self._MISS else value
        return value

    def get(self, key, default=None):
        value = self._probe(key)
        return default if value is self._MISS else value

    def __contains__(self, key) -> bool:
        return self._probe(key) is not self._MISS

    def __getitem__(self, key):
        value = self._probe(key)
        if value is self._MISS:
            raise KeyError(key)
        return value


#: What the cache stores per verdict: everything needed to rebuild a
#: ClassifiedInstance around a *different* RaceInstance object.
#: (outcome, original-first-was-side-a, pre_value, failure_kind, detail)
_VerdictTemplate = Tuple[InstanceOutcome, bool, int, object, str]


def _template_to_json(template: _VerdictTemplate) -> list:
    outcome, first_is_a, pre_value, failure_kind, failure_detail = template
    return [
        outcome.value,
        bool(first_is_a),
        pre_value,
        None if failure_kind is None else failure_kind.value,
        failure_detail,
    ]


def _template_from_json(raw) -> _VerdictTemplate:
    outcome, first_is_a, pre_value, failure_kind, failure_detail = raw
    if failure_detail is not None and not isinstance(failure_detail, str):
        raise ValueError("malformed failure detail %r" % (failure_detail,))
    return (
        InstanceOutcome(outcome),
        bool(first_is_a),
        int(pre_value),
        None if failure_kind is None else ReplayFailureKind(failure_kind),
        failure_detail,
    )


class VerdictCache:
    """Memoized verdicts keyed by structural key + live-in probe set.

    One structural key maps to a list of candidates because the same
    structural replay can behave differently under different live-in
    images; each candidate carries the probe set its verdict was computed
    under and matches only a live-in that agrees everywhere it looked.

    Beyond the in-process cache, verdicts travel across engine lifetimes
    as a **portable index**: :meth:`export_portable` replaces the
    process-local interned content ids with stable sha256 content digests
    (plus a shape fingerprint as a collision guard), and
    :meth:`absorb_portable` loads such an index so that a later analysis
    of content-identical regions *splices* the stored verdicts instead of
    replaying — the incremental re-analysis path.  Absorbed entries only
    ever match through the same probe/freed agreement as local ones, so
    splicing cannot change a verdict, only skip recomputing it.
    """

    def __init__(self) -> None:
        self._entries: Dict[
            tuple, List[Tuple[Tuple[Tuple[int, Optional[int]], ...], tuple, _VerdictTemplate]]
        ] = {}
        self._interned: Dict[tuple, int] = {}
        #: id -> content tuple (for digesting on export/splice).
        self._contents: List[tuple] = []
        #: id -> lazily computed sha256 digest / shape fingerprint.
        self._digests: List[Optional[str]] = []
        self._shapes: List[Optional[tuple]] = []
        #: portable key -> [(shapes, probe items, freed fp, template)].
        self._imported: Dict[tuple, List[tuple]] = {}
        #: normalized absorbed entries, kept for lossless re-export.
        self._imported_raw: List[dict] = []
        #: canonical-JSON fingerprints of absorbed entries (idempotency).
        self._absorbed: Set[str] = set()
        self.hits = 0
        self.misses = 0
        #: Hits served by promoting an absorbed (imported) entry.
        self.spliced = 0
        #: Entries accepted by :meth:`absorb_portable` over the lifetime.
        self.absorbed = 0

    def intern(self, content: tuple) -> int:
        """Map a (possibly large) content tuple to a stable small id.

        Region content is hashed once here, at interning time; the
        per-instance structural keys then carry only the id, so repeated
        lookups never re-hash whole region transcripts.
        """
        interned = self._interned.get(content)
        if interned is None:
            interned = len(self._interned)
            self._interned[content] = interned
            self._contents.append(content)
            self._digests.append(None)
            self._shapes.append(None)
        return interned

    def _digest_of(self, content_id: int) -> str:
        digest = self._digests[content_id]
        if digest is None:
            # Through the module so tests can monkeypatch the digest
            # function and exercise the collision guard.
            digest = batching.content_digest(self._contents[content_id])
            self._digests[content_id] = digest
        return digest

    def _shape_of(self, content_id: int) -> tuple:
        shape = self._shapes[content_id]
        if shape is None:
            shape = batching.content_shape(self._contents[content_id])
            self._shapes[content_id] = shape
        return shape

    def __len__(self) -> int:
        return sum(len(candidates) for candidates in self._entries.values())

    def lookup(
        self, key: tuple, live_in: Dict[int, int], freed: Dict[int, int]
    ) -> Optional[_VerdictTemplate]:
        freed_fp = tuple(sorted(freed.items()))
        for probe_items, candidate_freed, template in self._entries.get(key, ()):
            if candidate_freed != freed_fp:
                continue
            if all(
                live_in.get(address, None) == value
                for address, value in probe_items
            ):
                self.hits += 1
                return template
        if self._imported:
            template = self._splice_imported(key, live_in, freed_fp)
            if template is not None:
                self.hits += 1
                self.spliced += 1
                return template
        self.misses += 1
        return None

    def _splice_imported(
        self, key: tuple, live_in: Dict[int, int], freed_fp: tuple
    ) -> Optional[_VerdictTemplate]:
        """Serve a verdict from an absorbed portable index, if one matches.

        Digesting the interned contents happens lazily here (and is cached
        per content id), so analyses that never splice pay nothing.  A
        match is promoted into the local entries so later instances of the
        same key hit without re-digesting.
        """
        program, offset_a, id_a, offset_b, id_b, first_is_a = key
        portable_key = (
            program,
            offset_a,
            self._digest_of(id_a),
            offset_b,
            self._digest_of(id_b),
            first_is_a,
        )
        candidates = self._imported.get(portable_key)
        if not candidates:
            return None
        shapes = (self._shape_of(id_a), self._shape_of(id_b))
        for entry_shapes, probe_items, candidate_freed, template in candidates:
            if entry_shapes != shapes:
                continue  # digest collision guard: recompute instead
            if candidate_freed != freed_fp:
                continue
            if all(
                live_in.get(address, None) == value
                for address, value in probe_items
            ):
                self._entries.setdefault(key, []).append(
                    (probe_items, candidate_freed, template)
                )
                return template
        return None

    def store(
        self,
        key: tuple,
        probes: Dict[int, Optional[int]],
        freed: Dict[int, int],
        template: _VerdictTemplate,
    ) -> None:
        self._entries.setdefault(key, []).append(
            (
                tuple(sorted(probes.items())),
                tuple(sorted(freed.items())),
                template,
            )
        )

    # ------------------------------------------------------------------
    # The portable verdict index.
    # ------------------------------------------------------------------

    def export_portable(self, program: Optional[str] = None) -> Dict:
        """The cache as a portable JSON-able verdict index.

        Interned content ids become content digests; every local entry
        and every absorbed entry is included (deduplicated by canonical
        JSON), so absorb → export round-trips losslessly and repeated
        export/absorb cycles converge.  ``program`` filters to one
        program's entries.
        """
        entries: List[dict] = []
        seen: Set[str] = set()

        def add(entry: dict) -> None:
            fingerprint = json.dumps(entry, sort_keys=True)
            if fingerprint not in seen:
                seen.add(fingerprint)
                entries.append(entry)

        for key, candidates in self._entries.items():
            if program is not None and key[0] != program:
                continue
            portable_key = [
                key[0],
                key[1],
                self._digest_of(key[2]),
                key[3],
                self._digest_of(key[4]),
                key[5],
            ]
            shapes = [list(self._shape_of(key[2])), list(self._shape_of(key[4]))]
            for probe_items, freed_fp, template in candidates:
                add(
                    {
                        "key": portable_key,
                        "shapes": shapes,
                        "probes": [[a, v] for a, v in probe_items],
                        "freed": [[a, s] for a, s in freed_fp],
                        "template": _template_to_json(template),
                    }
                )
        for raw in self._imported_raw:
            if program is not None and raw["key"][0] != program:
                continue
            add(raw)
        return {"verdict_index_version": VERDICT_INDEX_VERSION, "entries": entries}

    def absorb_portable(self, index) -> int:
        """Load a portable verdict index; returns how many entries stuck.

        Defensive by design — indexes come from cache files and user
        ``--incremental-from`` arguments: an unknown version or a
        non-document absorbs nothing, and each malformed entry is skipped
        individually.  Absorbing the same index twice is a no-op.
        """
        if not isinstance(index, dict):
            return 0
        if index.get("verdict_index_version") != VERDICT_INDEX_VERSION:
            return 0
        entries = index.get("entries")
        if not isinstance(entries, list):
            return 0
        accepted = 0
        for raw in entries:
            try:
                parsed = self._parse_portable_entry(raw)
            except (KeyError, ValueError, TypeError, IndexError):
                continue
            if parsed is None:
                continue
            normalized, portable_key, candidate = parsed
            fingerprint = json.dumps(normalized, sort_keys=True)
            if fingerprint in self._absorbed:
                continue
            self._absorbed.add(fingerprint)
            self._imported.setdefault(portable_key, []).append(candidate)
            self._imported_raw.append(normalized)
            self.absorbed += 1
            accepted += 1
        return accepted

    @staticmethod
    def _parse_portable_entry(raw):
        """Normalize one index entry; raise/return None when malformed."""
        program, offset_a, digest_a, offset_b, digest_b, first_is_a = raw["key"]
        if not (
            isinstance(program, str)
            and isinstance(offset_a, int)
            and isinstance(digest_a, str)
            and isinstance(offset_b, int)
            and isinstance(digest_b, str)
            and isinstance(first_is_a, bool)
        ):
            return None
        shapes = tuple(
            tuple(int(part) for part in shape) for shape in raw["shapes"]
        )
        if len(shapes) != 2 or any(len(shape) != 3 for shape in shapes):
            return None
        probes = tuple(
            sorted(
                (int(address), None if value is None else int(value))
                for address, value in raw["probes"]
            )
        )
        freed = tuple(
            sorted((int(address), int(size)) for address, size in raw["freed"])
        )
        template = _template_from_json(raw["template"])
        portable_key = (
            program, offset_a, digest_a, offset_b, digest_b, first_is_a,
        )
        normalized = {
            "key": list(portable_key),
            "shapes": [list(shape) for shape in shapes],
            "probes": [[a, v] for a, v in probes],
            "freed": [[a, s] for a, s in freed],
            "template": _template_to_json(template),
        }
        return normalized, portable_key, (shapes, probes, freed, template)


class MemoizingClassifier(RaceClassifier):
    """A :class:`RaceClassifier` that consults a shared verdict cache."""

    def __init__(self, *args, cache: Optional[VerdictCache] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.cache = cache if cache is not None else VerdictCache()
        #: (tid, region index) -> interned region-content id.
        self._region_ids: Dict[Tuple[int, int], int] = {}

    def classify_instance(self, instance: RaceInstance) -> ClassifiedInstance:
        if self.config.store_replay_outcomes:
            # Callers wanting the raw VPOutcomes need the real replay.
            return super().classify_instance(instance)
        instance = self._canonicalize(instance)
        live_in, freed = self.ordered.pair_snapshot(
            instance.region_a, instance.region_b
        )
        key = self._structural_key(instance)
        template = self.cache.lookup(key, live_in, freed)
        if template is not None:
            return self._from_template(instance, template)
        tracking = TrackingImage(live_in)
        result = self._classify_with_state(instance, tracking, freed)
        self.cache.store(
            key,
            tracking.probes,
            freed,
            (
                result.outcome,
                result.original_first == instance.access_a.thread_name,
                result.pre_value,
                result.failure_kind,
                result.failure_detail,
            ),
        )
        return result

    def _from_template(
        self, instance: RaceInstance, template: _VerdictTemplate
    ) -> ClassifiedInstance:
        outcome, first_is_a, pre_value, failure_kind, failure_detail = template
        return ClassifiedInstance(
            instance=instance,
            outcome=outcome,
            original_first=(
                instance.access_a.thread_name
                if first_is_a
                else instance.access_b.thread_name
            ),
            pre_value=pre_value,
            failure_kind=failure_kind,
            failure_detail=failure_detail,
            execution_id=self.execution_id,
        )

    # ------------------------------------------------------------------
    # The structural key.
    # ------------------------------------------------------------------

    def _region_content_id(
        self, thread_name: str, region: SequencingRegion
    ) -> int:
        """Interned id of everything the recording says about ``region``.

        Every input the replay draws from one side — start pc, live-in
        registers, the executed static-id trajectory, every recorded
        access (loads seed values, stores and their values, sync ops) and
        the region-end state — is a function of this tuple, so two regions
        with equal content ids are interchangeable for classification.
        Content is hashed once at interning; instances carry the int.
        """
        region_key = (region.tid, region.index)
        interned = self._region_ids.get(region_key)
        if interned is None:
            content = batching.region_content(
                self.ordered,
                thread_name,
                region,
                footprint=tuple(sorted(self._pc_footprint(thread_name))),
            )
            interned = self.cache.intern(content)
            self._region_ids[region_key] = interned
        return interned

    def _structural_key(self, instance: RaceInstance) -> tuple:
        access_a, access_b = instance.access_a, instance.access_b
        region_a, region_b = instance.region_a, instance.region_b
        return (
            self.log.program_name,
            access_a.thread_step - region_a.start_step,
            self._region_content_id(access_a.thread_name, region_a),
            access_b.thread_step - region_b.start_step,
            self._region_content_id(access_b.thread_name, region_b),
            self._original_first(instance) == access_a.thread_name,
        )


class BatchingClassifier(MemoizingClassifier):
    """A memoizing classifier that plans whole batches up front.

    :meth:`classify_all` groups the instances by full structural key
    (:func:`repro.analysis.batching.plan_batches`) and walks each batch:
    the first member that misses the verdict cache replays (the batch
    *leader*), and every later member is served by the same cache lookup
    the per-instance memoized path would do — from the leader's stored
    verdict when its live-in agrees on the probed addresses
    (``batch_fanout``), or by its own replay through the leader's rebound
    processor on probe divergence (``batch_fallbacks``).  Because members
    share the full structural key and the cache-store order matches the
    per-instance path's, verdicts are byte-identical to
    :class:`MemoizingClassifier` — the equivalence tests assert it.

    The win over plain memoization is constant-factor but large on
    instance-heavy regions: per fanned-out member the batch path skips
    the pair-snapshot dict copies (``pair_snapshot_view``), and fallback
    members reuse the leader's thread specs and seeded prefix image
    instead of re-deriving them.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.batches_planned = 0
        self.batch_fanout = 0
        self.batch_fallbacks = 0
        #: batch size -> number of batches of that size (this classifier).
        self.batch_sizes: Dict[int, int] = {}

    def classify_all(self, instances: List[RaceInstance]) -> List[ClassifiedInstance]:
        if self.config.store_replay_outcomes or not instances:
            # Raw-outcome callers need real replays; defer to the base.
            return super().classify_all(instances)
        plan = plan_batches(self, instances)
        self.batches_planned += plan.batch_count
        for size, count in plan.size_histogram().items():
            self.batch_sizes[size] = self.batch_sizes.get(size, 0) + count
        results: List[Optional[ClassifiedInstance]] = [None] * len(instances)
        for batch in plan.batches:
            self._classify_batch(batch, results)
        return results

    def collect_perf(self, stats) -> None:
        super().collect_perf(stats)
        stats.classify_batches += self.batches_planned
        stats.batch_fanout += self.batch_fanout
        stats.batch_fallbacks += self.batch_fallbacks
        for size, count in self.batch_sizes.items():
            stats.batch_sizes[size] = stats.batch_sizes.get(size, 0) + count

    def _classify_batch(
        self, batch: PlannedBatch, results: List[Optional[ClassifiedInstance]]
    ) -> None:
        computed = False
        for position, member in batch.members:
            # Lazy pair live-in: cache probes and virtual-processor loads
            # resolve one address at a time, so no member ever pays for a
            # full pair-image reconstruction or copy.  Values are
            # address-identical to ``pair_snapshot``'s, so the stored
            # probes — and hence every verdict — match the per-instance
            # path byte for byte.
            live_in, freed = self.ordered.pair_live_in(
                member.region_a, member.region_b
            )
            template = self.cache.lookup(batch.key, live_in, freed)
            if template is not None:
                if computed:
                    self.batch_fanout += 1
                results[position] = self._from_template(member, template)
                continue
            # Cache miss: this member replays.  The first replay of the
            # batch builds the shared processor; probe-divergence
            # fallbacks rebind it to their own live-in (sharing specs and
            # the seeded prefix image — both functions of the batch key).
            if computed:
                self.batch_fallbacks += 1
            tracking = TrackingView(live_in)
            if batch.processor is None:
                batch.processor = self.batch_processor(member, tracking, freed)
                processor = batch.processor
            else:
                processor = batch.processor.rebind(tracking, freed)
            result = self._classify_with_state(
                member, tracking, freed, processor=processor
            )
            computed = True
            self.cache.store(
                batch.key,
                tracking.probes,
                freed,
                (
                    result.outcome,
                    result.original_first == member.access_a.thread_name,
                    result.pre_value,
                    result.failure_kind,
                    result.failure_detail,
                ),
            )
            results[position] = result


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------


@dataclass
class EngineConfig:
    """Configuration of a :class:`ClassificationEngine`."""

    #: Worker processes; 1 analyses in-process (no pool).
    jobs: int = 1
    #: Serve structurally identical race instances from the verdict cache.
    memoize: bool = True
    #: Plan classification in batches of structurally identical instances
    #: (one replay per batch, fanned out).  Requires ``memoize``; verdicts
    #: are byte-identical either way.
    batching: bool = True
    #: Splice verdicts from a prior analysis of the same program: absorb
    #: the ``prior=`` index passed to :meth:`analyze_execution` /
    #: :meth:`analyze_log`, and (with ``cache_dir``) persist and reload
    #: the portable verdict index through the suite cache so warm
    #: re-submissions replay almost nothing.
    incremental: bool = True
    classifier_config: Optional[ClassifierConfig] = None
    max_pairs_per_location: Optional[int] = 256
    max_steps: int = 200_000
    capture_global_order: bool = True
    #: Directory of the content-addressed record cache (None = no cache).
    #: A string (not a Path) so the config pickles cheaply to pool workers.
    cache_dir: Optional[str] = None
    #: Replay threads through the predecoded fast path (False forces the
    #: generic reference replayer; equivalence tests compare both).
    replay_fast_path: bool = True


class ClassificationEngine:
    """Analyses batches of executions, in parallel and with verdict reuse.

    The verdict cache is engine-lifetime: with ``jobs == 1`` every
    execution in every :meth:`analyze_executions` call shares it; with a
    pool each worker process keeps its own engine (and cache) alive across
    the executions it is handed, and the per-worker statistics are merged
    back into the caller's :class:`PerfStats`.
    """

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self.cache = VerdictCache()
        self._record_cache = None
        if self.config.cache_dir is not None:
            from .cache import SuiteCache

            self._record_cache = SuiteCache(self.config.cache_dir)

    # -- classifier construction (pipeline hook) -----------------------

    def _classifier_factory(
        self, ordered, classifier_config, execution_id
    ) -> RaceClassifier:
        if not self.config.memoize:
            return RaceClassifier(
                ordered, config=classifier_config, execution_id=execution_id
            )
        classifier_class = (
            BatchingClassifier if self.config.batching else MemoizingClassifier
        )
        return classifier_class(
            ordered,
            config=classifier_config,
            execution_id=execution_id,
            cache=self.cache,
        )

    # -- incremental re-analysis plumbing ------------------------------

    def _verdict_index_key(self, program_name: str, source: str) -> str:
        from .cache import verdict_index_key

        classifier_config = self.config.classifier_config or ClassifierConfig()
        return verdict_index_key(
            program_name,
            source,
            step_limit=classifier_config.step_limit,
            allow_unrecorded_control_flow=(
                classifier_config.allow_unrecorded_control_flow
            ),
            allow_unknown_addresses=classifier_config.allow_unknown_addresses,
            max_pairs_per_location=self.config.max_pairs_per_location,
        )

    def _absorb_prior(self, prior, program_name: str, source: str) -> Optional[str]:
        """Load every verdict source an incremental analysis may splice
        from; returns the suite-cache verdict key when one applies.

        ``prior`` is a previous :class:`ExecutionAnalysis` (its
        ``verdict_index``) or a raw portable index document.  With a
        ``cache_dir`` and ``incremental`` on, the persisted index of the
        same program/config is absorbed too — the near-miss resubmission
        path: a changed seed or scheduler records a different execution,
        but regions whose content didn't change splice their verdicts.
        """
        if not self.config.memoize:
            return None
        if prior is not None:
            index = getattr(prior, "verdict_index", prior)
            self.cache.absorb_portable(index)
        if not self.config.incremental or self._record_cache is None:
            return None
        verdict_key = self._verdict_index_key(program_name, source)
        stored = self._record_cache.load_verdicts(verdict_key)
        if stored is not None:
            self.cache.absorb_portable(stored)
        return verdict_key

    def _finish_analysis(
        self,
        analysis: ExecutionAnalysis,
        stats: PerfStats,
        snapshot: Tuple[int, int, int, int],
        verdict_key: Optional[str],
    ) -> None:
        hits, misses, spliced, absorbed = snapshot
        stats.cache_hits += self.cache.hits - hits
        stats.cache_misses += self.cache.misses - misses
        stats.incremental_spliced += self.cache.spliced - spliced
        stats.incremental_absorbed += self.cache.absorbed - absorbed
        if self.config.memoize:
            analysis.verdict_index = self.cache.export_portable(
                program=analysis.log.program_name
            )
            if verdict_key is not None:
                # export_portable includes absorbed entries, so storing it
                # unions this run's verdicts with everything loaded.
                self._record_cache.store_verdicts(
                    verdict_key, analysis.verdict_index
                )

    def _cache_snapshot(self) -> Tuple[int, int, int, int]:
        return (
            self.cache.hits,
            self.cache.misses,
            self.cache.spliced,
            self.cache.absorbed,
        )

    # -- public API ----------------------------------------------------

    def analyze_execution(
        self,
        execution: Execution,
        perf: Optional[PerfStats] = None,
        prior=None,
    ) -> ExecutionAnalysis:
        """Analyse one execution in-process (the pool is for batches).

        ``prior`` — a previous :class:`ExecutionAnalysis` of the same
        program (or its portable verdict index) — turns this into an
        incremental re-analysis: instances whose region contents are
        unchanged splice the prior verdicts and only changed regions
        replay.  With a ``cache_dir`` the persisted verdict index of the
        program is used the same way automatically.
        """
        snapshot = self._cache_snapshot()
        stats = perf if perf is not None else PerfStats()
        workload = execution.workload
        verdict_key = self._absorb_prior(prior, workload.name, workload.source)
        analysis = analyze_execution(
            execution,
            classifier_config=self.config.classifier_config,
            max_pairs_per_location=self.config.max_pairs_per_location,
            max_steps=self.config.max_steps,
            capture_global_order=self.config.capture_global_order,
            classifier_factory=self._classifier_factory,
            perf=stats,
            cache=self._record_cache,
            replay_fast_path=self.config.replay_fast_path,
        )
        self._finish_analysis(analysis, stats, snapshot, verdict_key)
        return analysis

    def analyze_log(
        self,
        log,
        execution_id: Optional[str] = None,
        perf: Optional[PerfStats] = None,
        prior=None,
        detector_factory=None,
    ) -> ExecutionAnalysis:
        """Analyse an already-recorded log through this engine.

        The engine counterpart of :func:`repro.analysis.pipeline.analyze_log`
        — same report bytes — plus the engine's verdict memoization,
        batching and incremental splicing (``prior=`` and the persisted
        per-program verdict index, exactly as in :meth:`analyze_execution`).

        ``detector_factory`` is forwarded to the pipeline; pass one built
        around :class:`repro.race.happens_before.ParallelFileDetector` to
        fan the detection sweep over v4 segments.
        """
        snapshot = self._cache_snapshot()
        stats = perf if perf is not None else PerfStats()
        verdict_key = self._absorb_prior(
            prior, log.program_name, log.program_source
        )
        analysis = analyze_log(
            log,
            execution_id=execution_id,
            classifier_config=self.config.classifier_config,
            max_pairs_per_location=self.config.max_pairs_per_location,
            classifier_factory=self._classifier_factory,
            perf=stats,
            replay_fast_path=self.config.replay_fast_path,
            detector_factory=detector_factory,
        )
        self._finish_analysis(analysis, stats, snapshot, verdict_key)
        return analysis

    def analyze_log_stream(
        self,
        source,
        execution_id: Optional[str] = None,
        perf: Optional[PerfStats] = None,
        prior=None,
        segment_bytes: Optional[int] = None,
    ) -> ExecutionAnalysis:
        """Analyse a log with streaming detection and eager per-window
        classification (:func:`repro.analysis.pipeline.analyze_log_stream`).

        Report bytes match :meth:`analyze_log` exactly; the difference is
        the cost profile — verdicts start landing after the first sealed
        window instead of after the whole sweep, and detection state is
        bounded by the active window.  Verdict memoization, batching and
        incremental splicing all apply, same as :meth:`analyze_log`.
        """
        snapshot = self._cache_snapshot()
        stats = perf if perf is not None else PerfStats()
        if isinstance(source, (bytes, bytearray, memoryview)):
            from ..record.serialization import load_log_bytes

            log = load_log_bytes(bytes(source))
        else:
            log = source
        verdict_key = self._absorb_prior(
            prior, log.program_name, log.program_source
        )
        analysis = analyze_log_stream(
            source,
            execution_id=execution_id,
            classifier_config=self.config.classifier_config,
            max_pairs_per_location=self.config.max_pairs_per_location,
            classifier_factory=self._classifier_factory,
            perf=stats,
            replay_fast_path=self.config.replay_fast_path,
            segment_bytes=segment_bytes,
            log=log,
        )
        self._finish_analysis(analysis, stats, snapshot, verdict_key)
        return analysis

    def analyze_executions(
        self, executions: Sequence[Execution], perf: Optional[PerfStats] = None
    ) -> List[ExecutionAnalysis]:
        """Analyse a batch, preserving input order in the result list."""
        stats = perf if perf is not None else PerfStats()
        stats.jobs = max(stats.jobs, self.config.jobs)
        if self.config.jobs <= 1 or len(executions) <= 1:
            return [self.analyze_execution(e, perf=stats) for e in executions]
        return self._analyze_pooled(list(executions), stats)

    def _analyze_pooled(
        self, executions: List[Execution], stats: PerfStats
    ) -> List[ExecutionAnalysis]:
        workers = min(self.config.jobs, len(executions))
        with stats.stage("pool"):
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self.config,),
            ) as pool:
                futures = [pool.submit(_worker_analyze, e) for e in executions]
                outcomes = [future.result() for future in futures]
        analyses: List[ExecutionAnalysis] = []
        for analysis, worker_stats in outcomes:
            analyses.append(analysis)
            stats.merge(worker_stats)
        stats.pool_tasks += len(executions)
        return analyses


# ----------------------------------------------------------------------
# Pool worker plumbing.  The engine (and its verdict cache) lives for the
# whole worker process, so memoization spans every execution a worker is
# handed, not just one task.
# ----------------------------------------------------------------------

_WORKER_ENGINE: Optional[ClassificationEngine] = None


def _init_worker(config: EngineConfig) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = ClassificationEngine(replace(config, jobs=1))


def _worker_analyze(execution: Execution) -> Tuple[ExecutionAnalysis, PerfStats]:
    assert _WORKER_ENGINE is not None, "worker used before initialization"
    worker_stats = PerfStats()
    analysis = _WORKER_ENGINE.analyze_execution(execution, perf=worker_stats)
    worker_stats.pool_workers.add(os.getpid())
    return analysis, worker_stats
