"""Simulated system calls.

These model the paper's "system interactions" class of nondeterminism:
results depend on machine-global state (the RNG, the global step clock, the
shared heap allocator), so two threads racing to a syscall get
schedule-dependent results.  The recorder therefore logs every syscall
result, exactly as iDNA's load-based logging captures values written by the
external system.

Syscall table:

========== ===================== ==========================================
mnemonic    result                 side effect
========== ===================== ==========================================
sys_getpid  the process id (4321)  none (same value in every thread)
sys_time    current global step    none (schedule-dependent!)
sys_rand    uniform in [0, bound)  advances the machine RNG
sys_alloc   heap base address      allocates words (schedule-dependent base)
sys_free    0                      frees an allocation (may fault)
sys_print   the printed value      appends (thread, value) to machine output
sys_yield   0                      scheduler hint: move to another thread
========== ===================== ==========================================
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from .memory import Memory


class Syscalls:
    """Executes syscalls against machine-global state."""

    #: The simulated process id — one process, many threads, so every
    #: thread sees the same value (this is what makes the paper's
    #: "redundant pid write" races genuinely redundant).
    PROCESS_ID = 4321

    def __init__(self, memory: Memory, rng: random.Random):
        self.memory = memory
        self.rng = rng
        self.output: List[Tuple[str, int]] = []

    def execute(
        self,
        name: str,
        tid: int,
        thread_name: str,
        global_step: int,
        arg: Optional[int] = None,
    ) -> int:
        """Run syscall ``name`` and return its result value.

        ``arg`` carries the single input operand for syscalls that take one
        (``sys_rand`` bound, ``sys_alloc`` size, ``sys_free`` pointer,
        ``sys_print`` value).
        """
        if name == "sys_getpid":
            return self.PROCESS_ID
        if name == "sys_time":
            return global_step
        if name == "sys_rand":
            bound = arg if arg else 1
            return self.rng.randrange(bound)
        if name == "sys_alloc":
            return self.memory.alloc(arg or 0)
        if name == "sys_free":
            self.memory.free(arg or 0)
            return 0
        if name == "sys_print":
            value = arg or 0
            self.output.append((thread_name, value))
            return value
        if name == "sys_yield":
            return 0
        raise ValueError("unknown syscall %r" % name)
