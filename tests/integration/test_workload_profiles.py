"""Integration tests: each workload's classification profile.

For every race motif in the corpus, assert the *specific* verdict profile
its design document promises — not just "some races found", but which
category of outcome each motif's races produce and why.  These are the
fine-grained versions of the Table 1 shape assertions.
"""

import pytest

from repro.analysis import analyze_execution
from repro.race.aggregate import aggregate_instances
from repro.race.outcomes import Classification, InstanceOutcome
from repro.workloads import (
    Execution,
    cache_timestamp,
    consume_then_wait,
    disjoint_bits,
    double_check_warm,
    fn_selector,
    flag_publish,
    handshake,
    lost_update,
    redundant_pid,
    refcount_free,
    stats_counter,
    torn_pair,
    unsafe_publish,
)


def profile(workload, seed):
    analysis = analyze_execution(Execution("p", workload, seed))
    results = aggregate_instances(analysis.classified)
    program = workload.program()
    by_symbol = {}
    for key, result in results.items():
        address = result.instances[0].instance.address
        symbol = program.symbol_for_address(address) or "<heap>"
        by_symbol.setdefault(symbol.split("+")[0], []).append(result)
    return results, by_symbol


class TestBenignProfiles:
    def test_flag_publish_flag_is_no_state_change(self):
        _, by_symbol = profile(flag_publish(11), seed=3)
        flag_races = by_symbol["flag_fp11"]
        assert all(
            r.group is InstanceOutcome.NO_STATE_CHANGE for r in flag_races
        )

    def test_flag_publish_payload_is_flagged(self):
        """The payload race is benign by protocol but the replay cannot
        prove it — the paper's replayer-limitation misclassification."""
        _, by_symbol = profile(flag_publish(11), seed=3)
        payload_races = by_symbol["data_fp11"]
        assert all(
            r.classification is Classification.POTENTIALLY_HARMFUL
            for r in payload_races
        )

    def test_handshake_ack_benign(self):
        _, by_symbol = profile(handshake(11), seed=5)
        assert all(
            r.group is InstanceOutcome.NO_STATE_CHANGE
            for r in by_symbol["ack_hs11"]
        )

    def test_consume_then_wait_data_race_is_replay_failure(self):
        _, by_symbol = profile(consume_then_wait(11), seed=13)
        data_races = by_symbol["cwdata_cw11"]
        assert any(
            r.group is InstanceOutcome.REPLAY_FAILURE for r in data_races
        )

    def test_double_check_warm_all_benign(self):
        results, _ = profile(double_check_warm(11), seed=2)
        assert results
        assert all(
            r.classification is Classification.POTENTIALLY_BENIGN
            for r in results.values()
        )

    def test_fn_selector_benign(self):
        results, _ = profile(fn_selector(11), seed=17)
        assert results
        assert all(
            r.group is InstanceOutcome.NO_STATE_CHANGE for r in results.values()
        )

    def test_redundant_pid_all_benign(self):
        results, _ = profile(redundant_pid(11), seed=7)
        assert len(results) >= 3  # store/load, store/store, reader races
        assert all(
            r.group is InstanceOutcome.NO_STATE_CHANGE for r in results.values()
        )

    def test_disjoint_bits_benign(self):
        results, _ = profile(disjoint_bits(11), seed=9)
        assert results
        assert all(
            r.classification is Classification.POTENTIALLY_BENIGN
            for r in results.values()
        )

    def test_stats_counter_read_write_pair_flags(self):
        """Approximate computation: state genuinely changes, so the
        classifier must flag it — the dominant paper misclassification."""
        _, by_symbol = profile(stats_counter(11), seed=10)
        stats_races = by_symbol["stats_st11"]
        assert any(
            r.group is InstanceOutcome.STATE_CHANGE for r in stats_races
        )

    def test_cache_timestamp_flags(self):
        results, _ = profile(cache_timestamp(11), seed=12)
        assert any(
            r.classification is Classification.POTENTIALLY_HARMFUL
            for r in results.values()
        )


class TestDetectorScope:
    def test_barrier_sync_vs_plain_conflicts_invisible(self):
        """The paper's detector pairs only plain operations: the barrier's
        spin loads conflict with atomic arrivals, yet no race is reported
        — a documented scope decision, not a bug."""
        from repro.workloads import barrier

        analysis = analyze_execution(Execution("p", barrier(11), 22))
        assert analysis.instance_count == 0
        # The spin really did read the counter concurrently with arrivals:
        replay = analysis.ordered.thread_replays["bar1_br11"]
        program = barrier(11).program()
        arrived = program.data_address("arrived_br11")
        assert any(a.address == arrived and not a.is_sync for a in replay.accesses)


class TestHarmfulProfiles:
    def test_lost_update_every_race_flagged(self):
        results, _ = profile(lost_update(11), seed=15)
        assert len(results) == 3  # R/W, W/R, W/W across the two blocks
        assert all(
            r.classification is Classification.POTENTIALLY_HARMFUL
            for r in results.values()
        )

    def test_refcount_read_write_pairs_flagged(self):
        results, _ = profile(refcount_free(11), seed=1)
        rw_pairs = [
            r
            for r in results.values()
            if any(
                c.instance.access_a.is_write != c.instance.access_b.is_write
                for c in r.instances
            )
        ]
        assert rw_pairs
        assert all(
            r.classification is Classification.POTENTIALLY_HARMFUL
            for r in rw_pairs
        )

    def test_unsafe_publish_pointer_race_fails_replay(self):
        results, by_symbol = profile(unsafe_publish(11), seed=16)
        pointer_races = by_symbol["uptr_up11"]
        assert any(
            c.outcome is InstanceOutcome.REPLAY_FAILURE
            for r in pointer_races
            for c in r.instances
        )

    def test_torn_pair_latent_bug_still_flagged(self):
        """Seed 32's recording never tears the invariant, yet the
        both-orders replay exposes the bug — the paper's core value
        proposition."""
        analysis = analyze_execution(Execution("p", torn_pair(11), 32))
        program = torn_pair(11).program()
        torn_counter = analysis.machine_result.memory.get(
            program.data_address("torn_tp11"), 0
        )
        assert torn_counter == 0  # the bug did NOT fire in the recording
        results = aggregate_instances(analysis.classified)
        assert results
        assert all(
            r.classification is Classification.POTENTIALLY_HARMFUL
            for r in results.values()
        )
