"""Integration tests: the streaming pipeline end to end.

The tentpole equivalence, asserted at every user-facing surface:

* **CLI** — ``detect --stream`` and ``analyze --stream`` produce
  byte-identical output to the batch invocations, on v4 segmented files
  and on monolithic v3 files, across the workload suite sample.
* **Service** — ``mode="stream"`` jobs over HTTP return the same report
  bytes as ``mode="full"`` jobs for the same log, ``/metrics`` surfaces
  the first-verdict latency and segment counters, and v1/v2 or
  captureless uploads in stream mode are a clean ``400``.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.analysis.engine import ClassificationEngine, EngineConfig
from repro.analysis.pipeline import execution_report, render_report
from repro.cli import main
from repro.isa import assemble
from repro.record import record_run
from repro.record.binary_format import encode_log, encode_log_segmented
from repro.service import (
    AnalysisService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    make_server,
)
from repro.vm import RandomScheduler
from repro.workloads import all_workloads

#: A suite sample with known races plus a race-free control.
SAMPLE = ("lost_update_lu0", "stats_counter_st0", "locked_counter_cl0")
SEED = 13


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def _recording(name, seed=SEED):
    workload = all_workloads()[name]
    program = assemble(workload.source, name=workload.name)
    _, log = record_run(
        program,
        scheduler=RandomScheduler(
            seed=seed, switch_probability=workload.switch_probability or 0.3
        ),
        seed=seed,
    )
    return log


@pytest.fixture(scope="module", params=SAMPLE)
def recording(request):
    name = request.param
    if name not in all_workloads():
        pytest.skip("workload %s not in suite" % name)
    return _recording(name)


class TestCliStreamEquivalence:
    def test_detect_stream_output_matches_batch(self, recording, tmp_path):
        v3 = tmp_path / "run.rprb"
        v4 = tmp_path / "run.seg.rprb"
        v3.write_bytes(encode_log(recording, version=3))
        v4.write_bytes(encode_log_segmented(recording, segment_bytes=256))
        code, batch = run_cli(["detect", str(v3)])
        assert code == 0
        code, stream3 = run_cli(["detect", str(v3), "--stream"])
        assert code == 0
        code, stream4 = run_cli(["detect", str(v4), "--stream"])
        assert code == 0
        assert stream3 == batch
        assert stream4 == batch

    def test_analyze_stream_report_matches_batch(self, recording, tmp_path):
        v3 = tmp_path / "run.rprb"
        v4 = tmp_path / "run.seg.rprb"
        v3.write_bytes(encode_log(recording, version=3))
        v4.write_bytes(encode_log_segmented(recording, segment_bytes=256))
        batch_json = tmp_path / "batch.json"
        stream3_json = tmp_path / "stream3.json"
        stream4_json = tmp_path / "stream4.json"
        code, _ = run_cli(["analyze", str(v3), "--json", str(batch_json)])
        assert code == 0
        code, _ = run_cli(
            ["analyze", str(v3), "--stream", "--json", str(stream3_json)]
        )
        assert code == 0
        code, _ = run_cli(
            ["analyze", str(v4), "--stream", "--json", str(stream4_json)]
        )
        assert code == 0
        assert stream3_json.read_bytes() == batch_json.read_bytes()
        assert stream4_json.read_bytes() == batch_json.read_bytes()

    def test_record_segmented_then_stream_detect(self, tmp_path):
        workload = all_workloads()[SAMPLE[0]]
        program = tmp_path / "w.asm"
        program.write_text(workload.source)
        batch_file = tmp_path / "batch.rprb"
        stream_file = tmp_path / "stream.rprb"
        code, _ = run_cli(
            ["record", str(program), "-o", str(batch_file), "--seed", "5"]
        )
        assert code == 0
        code, _ = run_cli(
            [
                "record",
                str(program),
                "-o",
                str(stream_file),
                "--seed",
                "5",
                "--segment-bytes",
                "256",
            ]
        )
        assert code == 0
        code, batch = run_cli(["detect", str(batch_file)])
        assert code == 0
        code, streamed = run_cli(["detect", str(stream_file), "--stream"])
        assert code == 0
        assert streamed == batch

    def test_naive_and_stream_are_mutually_exclusive(self, recording, tmp_path):
        path = tmp_path / "run.rprb"
        path.write_bytes(encode_log(recording, version=3))
        code, _ = run_cli(["detect", str(path), "--naive", "--stream"])
        assert code == 1


@pytest.fixture(scope="module")
def deployment():
    """(service, server, client) — inline mode, ephemeral port."""
    service = AnalysisService(
        ServiceConfig(pool_size=0, queue_capacity=32, port=0)
    ).start()
    server = make_server(service)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    client = ServiceClient(server.url)
    yield service, server, client
    server.shutdown()
    service.shutdown()


class TestServiceStreamMode:
    def test_stream_job_matches_full_job_bytes(self, deployment):
        _, _, client = deployment
        log = _recording(SAMPLE[0])
        full = client.submit_log(encode_log(log, version=3), mode="full")
        stream = client.submit_log(
            encode_log_segmented(log, segment_bytes=512), mode="stream"
        )
        assert stream.mode == "stream"
        assert full.job_id != stream.job_id  # distinct work, both live
        client.wait(full.job_id, timeout_s=60)
        client.wait(stream.job_id, timeout_s=60)
        assert client.report_bytes(stream.job_id) == client.report_bytes(
            full.job_id
        )

    def test_stream_job_matches_engine_stream_path(self, deployment):
        service, _, client = deployment
        log = _recording(SAMPLE[1])
        data = encode_log_segmented(log, segment_bytes=512)
        job = client.submit_log(data, mode="stream")
        client.wait(job.job_id, timeout_s=60)
        engine = ClassificationEngine(
            EngineConfig(
                jobs=1,
                max_pairs_per_location=service.config.max_pairs_per_location,
            )
        )
        expected = render_report(
            execution_report(engine.analyze_log_stream(data))
        )
        assert client.report_bytes(job.job_id) == expected

    def test_workload_stream_job_matches_full(self, deployment):
        _, _, client = deployment
        full = client.submit_workload(SAMPLE[0], seed=SEED + 7, mode="full")
        stream = client.submit_workload(SAMPLE[0], seed=SEED + 7, mode="stream")
        assert full.job_id != stream.job_id
        client.wait(full.job_id, timeout_s=60)
        client.wait(stream.job_id, timeout_s=60)
        assert client.report_bytes(stream.job_id) == client.report_bytes(
            full.job_id
        )

    def test_metrics_surface_stream_counters(self, deployment):
        _, _, client = deployment
        log = _recording(SAMPLE[0], seed=SEED + 21)
        job = client.submit_log(
            encode_log_segmented(log, segment_bytes=256), mode="stream"
        )
        client.wait(job.job_id, timeout_s=60)
        metrics = client.metrics()
        stream = metrics["stream"]
        assert stream["jobs"] >= 1
        assert stream["segments"] >= 1
        assert stream["windows"] >= 1
        assert stream["stream_first_verdict_ms"] > 0

    @pytest.mark.parametrize("version", (1, 2))
    def test_stream_mode_on_old_containers_is_400(self, deployment, version):
        _, _, client = deployment
        log = _recording(SAMPLE[0])
        with pytest.raises(ServiceError) as excinfo:
            client.submit_log(encode_log(log, version=version), mode="stream")
        assert excinfo.value.status == 400
        assert "captured" in str(excinfo.value)

    def test_stream_mode_on_captureless_v3_is_400(self, deployment):
        _, _, client = deployment
        log = _recording(SAMPLE[0])
        data = encode_log(log, version=3, include_captured=False)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_log(data, mode="stream")
        assert excinfo.value.status == 400

    def test_old_containers_still_analyze_in_full_mode(self, deployment):
        _, _, client = deployment
        log = _recording(SAMPLE[0])
        v1 = client.submit_log(encode_log(log, version=1), mode="full")
        client.wait(v1.job_id, timeout_s=60)
        report = client.report(v1.job_id)
        assert "races" in json.dumps(report) or isinstance(report, dict)

    def test_unknown_mode_is_still_400(self, deployment):
        _, _, client = deployment
        log = _recording(SAMPLE[0])
        with pytest.raises(ServiceError) as excinfo:
            client.submit_log(encode_log(log, version=3), mode="bogus")
        assert excinfo.value.status == 400
