"""Unit tests for the triage priority ranking."""

import pytest

from repro.race.aggregate import StaticRaceResult, aggregate_instances
from repro.race.outcomes import InstanceOutcome
from repro.race.ranking import priority_score, rank_results, render_ranking
from repro.replay.errors import ReplayFailureKind

from test_aggregate_and_model import classified, make_instance


def result_from(outcomes, execution_ids=("e1",), failure=None):
    instance = make_instance()
    result = StaticRaceResult(key=instance.static_key)
    for position, outcome in enumerate(outcomes):
        result.add(
            classified(
                instance,
                outcome,
                execution_id=execution_ids[position % len(execution_ids)],
                failure=failure if outcome is InstanceOutcome.REPLAY_FAILURE else None,
            )
        )
    return result


class TestPriorityScore:
    def test_all_state_change_scores_high(self):
        hot = result_from([InstanceOutcome.STATE_CHANGE] * 8)
        cold = result_from([InstanceOutcome.NO_STATE_CHANGE] * 8)
        assert priority_score(hot).total > priority_score(cold).total

    def test_memory_fault_beats_step_limit(self):
        crash = result_from(
            [InstanceOutcome.REPLAY_FAILURE], failure=ReplayFailureKind.MEMORY_FAULT
        )
        wedge = result_from(
            [InstanceOutcome.REPLAY_FAILURE], failure=ReplayFailureKind.STEP_LIMIT
        )
        assert priority_score(crash).total > priority_score(wedge).total

    def test_breadth_rewards_multiple_executions(self):
        wide = result_from(
            [InstanceOutcome.STATE_CHANGE] * 4, execution_ids=("a", "b", "c", "d")
        )
        narrow = result_from([InstanceOutcome.STATE_CHANGE] * 4)
        assert priority_score(wide).total > priority_score(narrow).total

    def test_volume_saturates(self):
        some = result_from([InstanceOutcome.STATE_CHANGE] * 32)
        many = result_from([InstanceOutcome.STATE_CHANGE] * 200)
        assert priority_score(many).volume == priority_score(some).volume

    def test_components_sum_to_total(self):
        score = priority_score(result_from([InstanceOutcome.STATE_CHANGE] * 3))
        assert score.total == pytest.approx(
            score.state_change_strength
            + score.failure_strength
            + score.breadth
            + score.volume
        )

    def test_explain_renders_components(self):
        score = priority_score(result_from([InstanceOutcome.STATE_CHANGE]))
        assert "state-change" in score.explain()


class TestRankResults:
    def test_harmful_only_filter(self):
        benign = result_from([InstanceOutcome.NO_STATE_CHANGE])
        results = {benign.key: benign}
        assert rank_results(results) == []
        assert len(rank_results(results, harmful_only=False)) == 1

    def test_descending_order(self):
        from repro.analysis import analyze_execution
        from repro.workloads import Execution, lost_update

        analysis = analyze_execution(Execution("r", lost_update(14, iters=4), 15))
        results = aggregate_instances(analysis.classified)
        ranked = rank_results(results)
        totals = [score.total for _, _, score in ranked]
        assert totals == sorted(totals, reverse=True)
        assert ranked  # the lost-update races are all harmful

    def test_render(self):
        hot = result_from([InstanceOutcome.STATE_CHANGE] * 4)
        text = render_ranking({hot.key: hot})
        assert "Triage priority" in text and "score" in text

    def test_render_empty(self):
        assert "nothing to triage" in render_ranking({})
