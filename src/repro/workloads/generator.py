"""Composite and generated workloads.

``mixed_service`` is the "Internet Explorer browsing session" analog used
for the Section 5.1 overhead measurements: a longer-running, multi-thread
program mixing correctly locked work, deliberately approximate statistics,
redundant pid refreshes, and syscall traffic.

``seed_sweep`` expands one workload into many recorded executions — the
mechanism behind "the same data race occurred more than once in the same
execution or in different scenarios".
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..race.heuristics import BenignCategory
from ..vm.syscalls import Syscalls
from .base import GroundTruth, RaceExpectation, Workload, render_template

_MIXED_SERVICE_TEMPLATE = """
.data
jobs_{v}:  .word 0
jmx_{v}:   .word 0
hits_{v}:  .word 0
pid_{v}:   .word {pid}
.thread svc1_{v} svc2_{v}
    li r1, {iters}
mloop:
    li r8, {compute}
compute:
    muli r9, r9, 1103515245      ; local compute kernel (a PRNG-ish mix):
    addi r9, r9, 12345           ; registers only, so the recorder's
    xori r10, r9, 255            ; prediction cache logs nothing here —
    shri r11, r9, 16             ; this is what makes real iDNA logs tiny
    add r12, r10, r11            ; relative to instructions executed
    subi r8, r8, 1
    bnez r8, compute
    lock [jmx_{v}]
    load r2, [jobs_{v}]          ; real work: correctly locked
    addi r2, r2, 1
    store r2, [jobs_{v}]
    unlock [jmx_{v}]
    .intent approximate
    load r4, [hits_{v}]          ; hit statistics: deliberately unlocked
    addi r4, r4, 1
    .intent approximate
    store r4, [hits_{v}]
    sys_rand r5, 4
    beqz r5, mskip
    sys_getpid r6
    store r6, [pid_{v}]          ; redundant pid refresh
mskip:
    subi r1, r1, 1
    bnez r1, mloop
    sys_print r2
    halt
.thread mon_{v}
    li r1, {moniters}
monl:
    load r3, [pid_{v}]           ; monitor reads the pid cell
    load r4, [hits_{v}]          ; and samples the statistics
    sys_yield
    subi r1, r1, 1
    bnez r1, monl
    halt
"""


def mixed_service(
    variant: int = 0, iters: int = 20, moniters: int = 10, compute: int = 2
) -> Workload:
    """A longer mixed workload: compute, locked work, racy stats, pid refreshes.

    ``compute`` scales the register-only inner kernel per iteration; large
    values approximate real applications, where almost every executed
    instruction is locally predictable and the replay log stays tiny
    relative to the instruction count (the paper's 0.8 bit/instruction).
    """
    v = "mx%d" % variant
    return Workload(
        name="mixed_service_%s" % v,
        source=render_template(
            _MIXED_SERVICE_TEMPLATE,
            v=v,
            pid=str(Syscalls.PROCESS_ID),
            iters=str(iters),
            moniters=str(moniters),
            compute=str(compute),
        ),
        description=(
            "Service threads doing locked work with approximate statistics "
            "and redundant pid refreshes; a monitor thread samples both."
        ),
        expectations=(
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="hits_%s" % v,
                category=BenignCategory.APPROXIMATE,
                note="hit counter is intentionally unsynchronized",
            ),
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="pid_%s" % v,
                category=BenignCategory.REDUNDANT_WRITE,
                note="pid refreshes rewrite the same value",
            ),
        ),
        recommended_seeds=(44, 45, 46),
    )


def seed_sweep(workload: Workload, seeds: Iterable[int]) -> List[Tuple[str, Workload, int]]:
    """Expand a workload into ``(execution_id, workload, seed)`` runs."""
    return [
        ("%s#s%d" % (workload.name, seed), workload, seed)
        for seed in seeds
    ]
