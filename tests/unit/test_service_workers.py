"""Unit tests for the sharded worker pool (injected-runner mode)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.config import RetryPolicy, ServiceConfig
from repro.service.jobs import JobSpec, JobState, JobStore, content_key_for
from repro.service.queue import BoundedJobQueue
from repro.service.workers import (
    HISTOGRAM_BOUNDS_S,
    LatencyHistograms,
    ShardedWorkerPool,
)


def _submit(store, queue, data=b"payload", priority=0, shard=0):
    spec = JobSpec.for_log(data)
    key = content_key_for(spec, None, 200_000, True, 256)
    job, _ = store.submit(spec, key, priority=priority)
    queue.put(job.job_id, shard, priority=priority)
    return job


def _pool(runner, retry=None, shards=1):
    config = ServiceConfig(
        pool_size=0,
        shards=shards,
        queue_capacity=16,
        retry=retry or RetryPolicy(max_attempts=2, backoff_base_s=0.01),
    )
    store = JobStore()
    queue = BoundedJobQueue(config.queue_capacity, shards)
    pool = ShardedWorkerPool(config, store, queue, runner=runner)
    return pool, store, queue


def _wait_final(store, job, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not job.state.is_final:
        assert time.monotonic() < deadline, "job never finished: %s" % job.state
        time.sleep(0.01)
    return job


class TestLatencyHistograms:
    def test_bucketing(self):
        histograms = LatencyHistograms()
        histograms.observe("replay", 0.0008)   # first bucket (<= 1ms)
        histograms.observe("replay", 0.3)      # the 0.5s bucket
        histograms.observe("replay", 1000.0)   # unbounded last bucket
        document = histograms.to_json()["replay"]
        assert document["observations"] == 3
        assert document["counts"][0] == 1
        assert document["counts"][HISTOGRAM_BOUNDS_S.index(0.5)] == 1
        assert document["counts"][-1] == 1
        assert document["total_s"] == pytest.approx(1000.3008)


class TestSuccessPath:
    def test_job_runs_and_merges_metrics(self):
        def runner(payload):
            assert payload["kind"] == "log"
            return {
                "report": {"races": []},
                "perf": {"stage_seconds": {"replay": 0.02}, "cache_hits": 3},
                "elapsed_s": 0.05,
            }

        pool, store, queue = _pool(runner)
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()

        assert job.state is JobState.DONE
        assert job.report == {"races": []}
        assert job.elapsed_s == 0.05
        assert pool.completed == 1 and pool.failed == 0
        assert pool.perf.cache_hits == 3
        histograms = pool.histograms.to_json()
        assert histograms["replay"]["observations"] == 1
        assert histograms["total"]["observations"] == 1
        assert pool.metrics_json()["mode"] == "injected"

    def test_drain_finishes_queued_work(self):
        def runner(payload):
            time.sleep(0.02)
            return {"report": {}, "perf": {}, "elapsed_s": 0.02}

        pool, store, queue = _pool(runner)
        jobs = [_submit(store, queue, b"job-%d" % index) for index in range(5)]
        pool.start()
        assert pool.drain(timeout=10.0)
        pool.shutdown()
        assert all(job.state is JobState.DONE for job in jobs)
        assert pool.completed == 5

    def test_drain_true_implies_reports_stored(self):
        # drain() may only report success once the last job's terminal
        # transition has landed — never "queue empty" with a job still
        # RUNNING and its report unset.
        def runner(payload):
            return {"report": {"ok": True}, "perf": {}, "elapsed_s": 0.0}

        for _ in range(20):
            pool, store, queue = _pool(runner)
            job = _submit(store, queue)
            pool.start()
            assert pool.drain(timeout=10.0)
            assert job.state.is_final, "drain returned with job %s" % job.state
            assert job.report == {"ok": True}
            pool.shutdown()


class TestFailurePath:
    def test_retry_then_success(self):
        attempts = []

        def runner(payload):
            attempts.append(time.monotonic())
            if len(attempts) == 1:
                raise RuntimeError("transient failure")
            return {"report": {"ok": True}, "perf": {}, "elapsed_s": 0.01}

        pool, store, queue = _pool(runner)
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()

        assert job.state is JobState.DONE
        assert job.attempts == 2
        assert pool.retries == 1 and pool.failed == 0
        # The retry waited out its backoff delay.
        assert attempts[1] - attempts[0] >= 0.005

    def test_exhausted_retries_fail_with_error(self):
        def runner(payload):
            raise RuntimeError("permanent failure")

        pool, store, queue = _pool(runner)
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()

        assert job.state is JobState.FAILED
        assert job.attempts == 2
        assert "permanent failure" in job.error
        assert pool.failed == 1 and pool.retries == 1

    def test_no_retry_policy_fails_immediately(self):
        def runner(payload):
            raise ValueError("bad input")

        pool, store, queue = _pool(runner, retry=RetryPolicy(max_attempts=1))
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert job.state is JobState.FAILED
        assert job.attempts == 1
        assert pool.retries == 0

    def test_timeout_counts_separately(self):
        def runner(payload):
            raise TimeoutError("job exceeded 0.1s timeout")

        pool, store, queue = _pool(runner, retry=RetryPolicy(max_attempts=1))
        job = _submit(store, queue)
        pool.start()
        _wait_final(store, job)
        pool.shutdown()
        assert pool.timeouts == 1
        assert job.state is JobState.FAILED


class TestDispatch:
    def test_cancelled_jobs_are_skipped(self):
        ran = []

        def runner(payload):
            ran.append(payload)
            return {"report": {}, "perf": {}, "elapsed_s": 0.0}

        pool, store, queue = _pool(runner)
        job = _submit(store, queue)
        store.mark_cancelled(job.job_id)
        pool.start()
        time.sleep(0.2)
        pool.shutdown()
        assert ran == []
        assert job.state is JobState.CANCELLED

    def test_sharded_dispatch_routes_by_shard(self):
        seen = []

        def runner(payload):
            seen.append(payload["log_data"])
            return {"report": {}, "perf": {}, "elapsed_s": 0.0}

        pool, store, queue = _pool(runner, shards=2)
        first = _submit(store, queue, b"shard-zero", shard=0)
        second = _submit(store, queue, b"shard-one", shard=1)
        pool.start()
        assert pool.drain(timeout=5.0)
        pool.shutdown()
        assert {first.state, second.state} == {JobState.DONE}
        assert sorted(seen) == [b"shard-one", b"shard-zero"]


class TestInlineContextIsolation:
    def test_worker_context_is_per_thread(self):
        # Inline mode with shards > 1 runs run_job_payload on multiple
        # shard threads concurrently; each thread must build and keep
        # its own engine rather than racing on one shared context.
        from repro.service import workers

        config = ServiceConfig(pool_size=0, shards=2).to_dict()
        main_context = getattr(workers._WORKER_TLS, "context", None)
        engines = [None, None]

        def build(index):
            workers._worker_init(config)
            engines[index] = workers._WORKER_TLS.context["engine"]

        threads = [
            threading.Thread(target=build, args=(index,)) for index in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        first, second = engines
        assert first is not None and second is not None
        assert first is not second
        # Other threads' initialization never leaks into this thread.
        assert getattr(workers._WORKER_TLS, "context", None) is main_context


class TestMetricsSnapshot:
    def test_perf_snapshot_during_concurrent_merges(self):
        # /metrics serializes pool perf while workers merge results;
        # the snapshot must be taken under the metrics lock so dict
        # iteration never races a concurrent merge.
        def runner(payload):
            index = int(payload["log_data"].split(b"-")[1])
            return {
                "report": {},
                "perf": {"stage_seconds": {"stage-%d" % index: 0.001}},
                "elapsed_s": 0.001,
            }

        pool, store, queue = _pool(runner, shards=2)
        jobs = [
            _submit(store, queue, b"metrics-%d" % index, shard=index % 2)
            for index in range(16)
        ]
        errors = []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                try:
                    snapshot = pool.perf_snapshot()
                    assert snapshot["completed"] >= 0
                    pool.metrics_json()
                except Exception as error:  # noqa: BLE001 - the assertion
                    errors.append(error)
                    return

        scraper = threading.Thread(target=scrape, daemon=True)
        scraper.start()
        pool.start()
        assert pool.drain(timeout=10.0)
        stop.set()
        scraper.join(5.0)
        pool.shutdown()
        assert errors == []
        assert all(job.state is JobState.DONE for job in jobs)
        assert pool.perf_snapshot()["completed"] == 16
