"""Observer protocol: how the recorder (and test oracles) watch execution.

The machine emits a small set of events; observers never mutate machine
state.  The iDNA-analog recorder (:mod:`repro.record.recorder`) is one
observer; :class:`TraceObserver` captures a complete global trace used by
tests as ground truth and by the classifier to learn the *original* order
of two racing operations (the machine knows it; pure log-based analysis
falls back to region order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..isa.program import StaticInstructionId
from .errors import FaultKind


class Observer:
    """Base observer; every hook is a no-op.  Subclass what you need."""

    def on_thread_start(self, tid: int, thread_name: str, block_name: str) -> None:
        """A thread came into existence (before its first instruction)."""

    def on_sequencer(
        self,
        tid: int,
        thread_step: int,
        timestamp: int,
        kind: str,
        static_id: Optional[StaticInstructionId],
    ) -> None:
        """A sequencer was logged (sync instruction, syscall, start/end)."""

    def on_load(
        self,
        tid: int,
        thread_step: int,
        static_id: StaticInstructionId,
        address: int,
        value: int,
        is_sync: bool,
    ) -> None:
        """A memory word was read."""

    def on_store(
        self,
        tid: int,
        thread_step: int,
        static_id: StaticInstructionId,
        address: int,
        old_value: int,
        new_value: int,
        is_sync: bool,
    ) -> None:
        """A memory word was written."""

    def on_syscall(
        self,
        tid: int,
        thread_step: int,
        static_id: StaticInstructionId,
        name: str,
        result: int,
        arg: Optional[int] = None,
    ) -> None:
        """A syscall completed with ``result`` (``arg`` is its input operand,
        when the syscall takes one — e.g. the requested size of ``sys_alloc``
        or the base passed to ``sys_free``)."""

    def on_step(
        self,
        global_step: int,
        tid: int,
        thread_step: int,
        static_id: StaticInstructionId,
    ) -> None:
        """An instruction retired (after all its other events)."""

    def on_thread_end(
        self, tid: int, thread_step: int, reason: str, fault: Optional[FaultKind]
    ) -> None:
        """A thread halted ('halt') or faulted."""


@dataclass
class TraceStep:
    """One retired instruction in the global trace."""

    global_step: int
    tid: int
    thread_step: int
    static_id: StaticInstructionId


@dataclass
class TraceAccess:
    """One memory access in the global trace (oracle for race analyses)."""

    global_step: int
    tid: int
    thread_step: int
    static_id: StaticInstructionId
    address: int
    value: int
    is_write: bool
    is_sync: bool


@dataclass
class TraceSequencer:
    timestamp: int
    tid: int
    thread_step: int
    kind: str
    static_id: Optional[StaticInstructionId]


@dataclass
class TraceObserver(Observer):
    """Captures a complete global execution trace.

    Tests use it as the ground truth against which the log-only analyses
    are validated; the classifier uses it (when available) to know which
    of the two racing operations came first originally.
    """

    steps: List[TraceStep] = field(default_factory=list)
    accesses: List[TraceAccess] = field(default_factory=list)
    sequencers: List[TraceSequencer] = field(default_factory=list)
    _pending_global_step: int = 0

    def on_sequencer(self, tid, thread_step, timestamp, kind, static_id) -> None:
        self.sequencers.append(
            TraceSequencer(timestamp, tid, thread_step, kind, static_id)
        )

    def on_load(self, tid, thread_step, static_id, address, value, is_sync) -> None:
        self.accesses.append(
            TraceAccess(
                self._pending_global_step,
                tid,
                thread_step,
                static_id,
                address,
                value,
                is_write=False,
                is_sync=is_sync,
            )
        )

    def on_store(
        self, tid, thread_step, static_id, address, old_value, new_value, is_sync
    ) -> None:
        self.accesses.append(
            TraceAccess(
                self._pending_global_step,
                tid,
                thread_step,
                static_id,
                address,
                new_value,
                is_write=True,
                is_sync=is_sync,
            )
        )

    def on_step(self, global_step, tid, thread_step, static_id) -> None:
        self.steps.append(TraceStep(global_step, tid, thread_step, static_id))
        self._pending_global_step = global_step + 1

    def global_order_of(self, tid: int, thread_step: int) -> Optional[int]:
        """Global step number at which thread ``tid`` retired ``thread_step``."""
        for step in self.steps:
            if step.tid == tid and step.thread_step == thread_step:
                return step.global_step
        return None
