"""Workload corpus: simulated applications with ground-truth race labels."""

from .base import GroundTruth, RaceExpectation, Workload, render_template
from .benign_approximate import cache_timestamp, stats_counter
from .benign_both_values import fn_selector, producer_consumer
from .benign_double_check import double_check_cold, double_check_warm
from .benign_disjoint_bits import disjoint_bits
from .benign_redundant import redundant_pid
from .benign_sync import barrier, consume_then_wait, flag_publish, handshake
from .clean import atomic_counter, atomic_handoff, locked_counter, locked_handoff
from .generator import mixed_service, seed_sweep
from .harmful_atomicity import torn_pair
from .harmful_lost_update import lost_update
from .harmful_pointer import unsafe_publish
from .harmful_refcount import refcount_free
from .harmful_toctou import toctou_handle
from .suite import (
    Execution,
    all_workloads,
    clean_suite,
    overhead_workload,
    paper_suite,
    workload_for_execution,
)

__all__ = [
    "GroundTruth",
    "RaceExpectation",
    "Workload",
    "render_template",
    "cache_timestamp",
    "stats_counter",
    "fn_selector",
    "producer_consumer",
    "double_check_cold",
    "double_check_warm",
    "disjoint_bits",
    "redundant_pid",
    "barrier",
    "consume_then_wait",
    "flag_publish",
    "handshake",
    "atomic_counter",
    "atomic_handoff",
    "locked_counter",
    "locked_handoff",
    "mixed_service",
    "seed_sweep",
    "lost_update",
    "torn_pair",
    "unsafe_publish",
    "refcount_free",
    "toctou_handle",
    "Execution",
    "all_workloads",
    "clean_suite",
    "overhead_workload",
    "paper_suite",
    "workload_for_execution",
]
