"""Unit tests for the zero-replay LogView detect surface."""

import pytest

from repro.analysis.perf import PerfStats
from repro.isa import assemble
from repro.record import record_run
from repro.record.binary_format import decode_log, encode_log
from repro.record.serialization import log_to_json
from repro.replay import LogView, LogViewUnavailable, OrderedReplay
from repro.vm import RandomScheduler

SOURCE = """
.data
x: .word 0
.thread a b
    li r1, 4
loop:
    load r2, [x]
    addi r2, r2, 1
    store r2, [x]
    sys_rand r3, 2
    subi r1, r1, 1
    bnez r1, loop
    halt
"""


@pytest.fixture(scope="module")
def recording():
    program = assemble(SOURCE, name="lv")
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=9, switch_probability=0.4),
        seed=9,
    )
    return program, log


class TestConstruction:
    def test_from_bytes_carries_log_identity(self, recording):
        _, log = recording
        view = LogView.from_bytes(encode_log(log))
        assert view.program_name == log.program_name
        assert view.seed == log.seed
        assert view.scheduler == log.scheduler
        assert set(view.threads) == set(log.threads)

    def test_from_log_equals_from_bytes(self, recording):
        _, log = recording
        via_log = LogView.from_log(log)
        via_bytes = LogView.from_bytes(encode_log(log))
        assert via_log.all_regions() == via_bytes.all_regions()

    def test_perf_counter_increments(self, recording):
        _, log = recording
        perf = PerfStats()
        LogView.from_log(log, perf=perf)
        assert perf.detect_log_native == 1


class TestUnavailability:
    def test_non_rprb_bytes_refused(self):
        with pytest.raises(LogViewUnavailable):
            LogView.from_bytes(b"{\"not\": \"a container\"}")

    @pytest.mark.parametrize("version", [1, 2])
    def test_pre_v3_container_refused(self, recording, version):
        _, log = recording
        with pytest.raises(LogViewUnavailable) as excinfo:
            LogView.from_bytes(encode_log(log, version=version))
        assert "v%d" % version in str(excinfo.value)

    def test_v3_without_capture_refused(self, recording):
        _, log = recording
        data = encode_log(log, include_captured=False)
        with pytest.raises(LogViewUnavailable):
            LogView.from_bytes(data)

    def test_decoded_captureless_log_refused(self, recording):
        _, log = recording
        stripped = decode_log(encode_log(log, include_captured=False))
        assert stripped.captured is None
        with pytest.raises(LogViewUnavailable):
            LogView.from_log(stripped)

    def test_unavailable_is_a_value_error(self):
        # CLI/service error handling catches ValueError: the refusal
        # must convert into a clean nonzero exit / 400, not a crash.
        assert issubclass(LogViewUnavailable, ValueError)

    def test_json_document_mentions_full_replay(self, recording):
        import json

        _, log = recording
        data = json.dumps(log_to_json(log)).encode("utf-8")
        with pytest.raises(LogViewUnavailable) as excinfo:
            LogView.from_bytes(data)
        assert "full-replay" in str(excinfo.value)


class TestDetectSurface:
    def test_regions_match_ordered_replay(self, recording):
        program, log = recording
        view = LogView.from_bytes(encode_log(log))
        ordered = OrderedReplay(log, program)
        assert view.all_regions() == ordered.all_regions()
        assert view.regions.keys() == ordered.regions.keys()
        for name in view.regions:
            assert view.regions[name] == ordered.regions[name]

    def test_access_index_cached_and_invalidated(self, recording):
        _, log = recording
        view = LogView.from_log(log)
        first = view.access_index()
        assert view.access_index() is first
        view.invalidate_access_index()
        second = view.access_index()
        assert second is not first
        assert second.access_count == first.access_count

    def test_program_assembles_lazily(self, recording):
        program, log = recording
        view = LogView.from_bytes(encode_log(log))
        assert view._program is None
        assembled = view.program
        assert assembled.name == program.name
        assert view.program is assembled
