"""The iDNA-analog recorder: an observer implementing load-based checkpointing.

Attach a :class:`Recorder` to a machine run and call :meth:`finish` for the
:class:`ReplayLog`.  The policy is the paper's Section 3.1, transliterated:

* maintain, per thread, a *prediction cache* — the memory image the thread
  could reconstruct from its own past loads and stores;
* on a load, log the value only when the cache mispredicts (first access,
  or another thread / the system modified the location in between);
* log every syscall result;
* log a sequencer (global monotone timestamp) at every synchronization
  instruction and syscall, plus thread start/end.

The recorder never reads machine internals — it sees only observer events,
so it records exactly the information a binary instrumentation engine could.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.program import Program, StaticInstructionId
from ..vm.observers import Observer
from .log import (
    LoadRecord,
    ReplayLog,
    SequencerRecord,
    SyscallRecord,
    ThreadEnd,
    ThreadLog,
)


class Recorder(Observer):
    """Records one machine run into a :class:`ReplayLog`."""

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        scheduler: str = "",
        capture_global_order: bool = True,
    ):
        self.program = program
        self.seed = seed
        self.scheduler_description = scheduler
        self._threads: Dict[int, ThreadLog] = {}
        self._caches: Dict[int, Dict[int, int]] = {}
        self._global_order: Optional[List[Tuple[int, int]]] = (
            [] if capture_global_order else None
        )
        self._finished = False

    # ------------------------------------------------------------------
    # Observer hooks.
    # ------------------------------------------------------------------

    def on_thread_start(self, tid: int, thread_name: str, block_name: str) -> None:
        self._threads[tid] = ThreadLog(
            name=thread_name,
            tid=tid,
            block=block_name,
            initial_registers=(0,) * 16,
        )
        self._caches[tid] = {}

    def on_sequencer(self, tid, thread_step, timestamp, kind, static_id) -> None:
        self._threads[tid].sequencers.append(
            SequencerRecord(
                thread_step=thread_step,
                timestamp=timestamp,
                kind=kind,
                static_id=static_id,
            )
        )

    def on_load(self, tid, thread_step, static_id, address, value, is_sync) -> None:
        cache = self._caches[tid]
        if address not in cache or cache[address] != value:
            self._threads[tid].loads[thread_step] = LoadRecord(
                thread_step=thread_step, address=address, value=value
            )
        cache[address] = value

    def on_store(
        self, tid, thread_step, static_id, address, old_value, new_value, is_sync
    ) -> None:
        self._caches[tid][address] = new_value

    def on_syscall(self, tid, thread_step, static_id, name, result) -> None:
        self._threads[tid].syscalls[thread_step] = SyscallRecord(
            thread_step=thread_step, name=name, result=result
        )

    def on_step(self, global_step, tid, thread_step, static_id) -> None:
        log = self._threads[tid]
        log.pc_footprint.add(static_id.index)
        log.steps = thread_step + 1
        if self._global_order is not None:
            self._global_order.append((tid, thread_step))

    def on_thread_end(self, tid, thread_step, reason, fault) -> None:
        self._threads[tid].end = ThreadEnd(
            thread_step=thread_step,
            reason=reason,
            fault_kind=str(fault) if fault is not None else None,
        )

    # ------------------------------------------------------------------
    # Result.
    # ------------------------------------------------------------------

    def finish(self) -> ReplayLog:
        """Assemble the final :class:`ReplayLog` (idempotent)."""
        self._finished = True
        return ReplayLog(
            program_name=self.program.name,
            program_source=self.program.source,
            threads={log.name: log for log in self._threads.values()},
            seed=self.seed,
            scheduler=self.scheduler_description,
            global_order=list(self._global_order)
            if self._global_order is not None
            else None,
        )


def record_run(
    program: Program,
    scheduler=None,
    seed: int = 0,
    max_steps: int = 200_000,
    capture_global_order: bool = True,
    extra_observers=(),
):
    """Run ``program`` under recording; returns ``(MachineResult, ReplayLog)``.

    The convenience entry point used throughout the examples and the
    analysis pipeline: one call replaces "deploy iDNA and run the test
    scenario" from the paper's usage model.
    """
    from ..vm.machine import Machine

    scheduler_description = type(scheduler).__name__ if scheduler else "RoundRobinScheduler"
    recorder = Recorder(
        program,
        seed=seed,
        scheduler=scheduler_description,
        capture_global_order=capture_global_order,
    )
    machine = Machine(
        program,
        scheduler=scheduler,
        seed=seed,
        max_steps=max_steps,
        observers=[recorder, *extra_observers],
    )
    result = machine.run()
    return result, recorder.finish()
