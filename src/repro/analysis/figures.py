"""Assemble the paper's Figures 3, 4, and 5 data series.

Each figure plots, per unique data race, the number of dynamic instances
the analysis examined (and for Figures 4/5 also how many of those
instances *flagged* — caused a state change or replay failure):

* Figure 3 — races classified Potentially-Benign (every instance
  No-State-Change); all of them were Real-Benign.
* Figure 4 — races classified Potentially-Harmful that were Real-Harmful;
  the paper observes only ~1 in 10 instances flags, so seeing a race many
  times matters.
* Figure 5 — races classified Potentially-Harmful that were actually
  Real-Benign (the misclassifications, dominated by approximate
  computation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..race.outcomes import Classification
from ..workloads.base import GroundTruth
from .pipeline import SuiteAnalysis


@dataclass
class FigurePoint:
    """One bar of a figure: a unique race and its instance statistics."""

    race: str
    total_instances: int
    flagged_instances: int

    @property
    def flagged_fraction(self) -> float:
        if not self.total_instances:
            return 0.0
        return self.flagged_instances / self.total_instances


@dataclass
class FigureSeries:
    """A whole figure: points sorted by descending instance count."""

    title: str
    points: List[FigurePoint]

    @property
    def max_instances(self) -> int:
        return max((point.total_instances for point in self.points), default=0)

    @property
    def min_instances(self) -> int:
        return min((point.total_instances for point in self.points), default=0)

    @property
    def mean_flagged_fraction(self) -> float:
        flagged = [point.flagged_fraction for point in self.points if point.total_instances]
        if not flagged:
            return 0.0
        return sum(flagged) / len(flagged)

    def render(self, width: int = 40) -> str:
        lines = [self.title, "-" * len(self.title)]
        top = self.max_instances or 1
        for point in self.points:
            bar = "#" * max(1, int(width * point.total_instances / top))
            flagged = (
                "  (%d flagged)" % point.flagged_instances
                if point.flagged_instances
                else ""
            )
            lines.append(
                "%-44s %6d %s%s" % (point.race, point.total_instances, bar, flagged)
            )
        if not self.points:
            lines.append("(no races in this category)")
        return "\n".join(lines)


def _points(suite: SuiteAnalysis, keys) -> List[FigurePoint]:
    points = [
        FigurePoint(
            race="%s|%s" % key,
            total_instances=suite.results[key].instance_count,
            flagged_instances=suite.results[key].flagged_instance_count,
        )
        for key in keys
    ]
    points.sort(key=lambda point: (-point.total_instances, point.race))
    return points


def build_figure3(suite: SuiteAnalysis) -> FigureSeries:
    """Instances per Potentially-Benign race (all Real-Benign)."""
    keys = [
        key
        for key, result in suite.results.items()
        if result.classification is Classification.POTENTIALLY_BENIGN
    ]
    return FigureSeries(
        title="Figure 3: instances of races classified Potentially-Benign",
        points=_points(suite, keys),
    )


def build_figure4(suite: SuiteAnalysis) -> FigureSeries:
    """Instances per Real-Harmful race, with how many flagged."""
    keys = [
        key
        for key, result in suite.results.items()
        if result.classification is Classification.POTENTIALLY_HARMFUL
        and suite.truths[key] is GroundTruth.HARMFUL
    ]
    return FigureSeries(
        title="Figure 4: instances of Potentially-Harmful races that were Real-Harmful",
        points=_points(suite, keys),
    )


def build_figure5(suite: SuiteAnalysis) -> FigureSeries:
    """Instances per misclassified (Potentially-Harmful, Real-Benign) race."""
    keys = [
        key
        for key, result in suite.results.items()
        if result.classification is Classification.POTENTIALLY_HARMFUL
        and suite.truths[key] is GroundTruth.BENIGN
    ]
    return FigureSeries(
        title="Figure 5: instances of Potentially-Harmful races that were Real-Benign",
        points=_points(suite, keys),
    )
