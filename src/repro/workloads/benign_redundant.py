"""Redundant-write workloads (Table 2 category 4).

The paper: "we found that a thread was writing its process identifier
returned by a system call to a shared variable read by another thread.
The writes were redundant and did not affect the correctness of the
program execution."  In a single process every thread's ``sys_getpid``
returns the same value, so the racing stores always rewrite the value the
location already holds — every instance replays to No-State-Change, and
the dynamic redundant-write heuristic recognises the pattern.
"""

from __future__ import annotations

from ..race.heuristics import BenignCategory
from ..vm.syscalls import Syscalls
from .base import GroundTruth, RaceExpectation, Workload, render_template

_REDUNDANT_PID_TEMPLATE = """
.data
pidvar_{v}: .word {pid}         ; recorded at process start
.thread pidw1_{v} pidw2_{v}
    sys_getpid r1               ; same pid in every thread of the process
    li r2, {iters}
wloop:
    store r1, [pidvar_{v}]      ; racing redundant write
    load r3, [pidvar_{v}]       ; racing read
    subi r2, r2, 1
    bnez r2, wloop
    halt
.thread pidr_{v}
    li r2, {riters}
rloop:
    load r3, [pidvar_{v}]       ; racing read from the observer thread
    subi r2, r2, 1
    bnez r2, rloop
    halt
"""


def redundant_pid(variant: int = 0, iters: int = 3, riters: int = 4) -> Workload:
    """Threads redundantly refresh a pid cell other threads read."""
    v = "rp%d" % variant
    return Workload(
        name="redundant_pid_%s" % v,
        source=render_template(
            _REDUNDANT_PID_TEMPLATE,
            v=v,
            pid=str(Syscalls.PROCESS_ID),
            iters=str(iters),
            riters=str(riters),
        ),
        description=(
            "Two threads repeatedly store the (identical) process id into a "
            "shared cell a third thread reads — all writes are redundant."
        ),
        expectations=(
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="pidvar_%s" % v,
                category=BenignCategory.REDUNDANT_WRITE,
                note="every store rewrites the value already present",
            ),
        ),
        recommended_seeds=(7, 31),
    )
