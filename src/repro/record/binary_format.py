"""The binary replay-log container: varint/zigzag packed, zlib compressed.

``pack_log`` (see :mod:`.compression`) has always produced a compact
varint stream for *size accounting*, but it is lossy — it drops load
values' provenance, syscall names, static ids, the pc footprint and the
embedded program, so a packed log could not be replayed.  This module is
the lossless sibling: a **complete** binary encoding of a
:class:`ReplayLog`, carrying everything the JSON serialization carries,
behind a versioned magic header.

Container layout::

    offset 0   4 bytes   MAGIC  = b"RPRB"   (\"repro replay binary\")
    offset 4   1 byte    format version (currently 2; v1 still decodes)
    offset 5   ...       zlib-compressed body

The body is a single varint record stream (LEB128 unsigned varints;
signed fields zigzag-mapped; strings length-prefixed UTF-8).  Steps,
addresses and timestamps are delta-encoded within their record groups —
the same technique ``pack_log`` uses, so the compressed container lands
within a few percent of the accounting-only stream while remaining fully
invertible.  Suite runs that persist logs stop paying JSON encode/decode
and store roughly 5-10x fewer bytes.

Version 2 adds **predicted-load value elision** on top: each load record's
step delta carries a low-order *predicted* bit, and when it is set the
value field is omitted entirely — the decoder reconstructs it from a
per-thread, per-address last-logged-value predictor whose state the
encoder maintains identically.  This is the serialization-side analog of
the recorder's load-based checkpointing: values the reader can already
predict never hit the wire.  Elision is a binary-only feature; the JSON
document always spells every value out.

Version 3 adds an optional **captured-columns section** after the thread
records: the recorder's full per-thread access columns (step/flag/
address/value/static-id rows plus heap lifecycle rows), delta-encoded
like everything else.  A v3 log loaded from disk therefore still carries
``ReplayLog.captured``, so the ordered replay and the access index feed
straight off the recorded arrays with no re-interpretation — the same
handoff fresh recordings get.  ``encode_log(..., include_captured=False)``
omits the section (the suite cache does this: cache hits deliberately
exercise the replay-derived fallback).

``save_log``/``load_log`` in :mod:`.serialization` route through this
module: saving is binary-first (JSON retained for ``.json`` paths and old
fixtures) and loading sniffs the magic bytes.

**Sectioned reading.**  The body is a record stream, not an offset table,
but every section is length-prefixed by its record count, so a reader
that knows the shapes can *seek past* sections it does not need by
skipping varints instead of decoding them.  The decoder is therefore
split into per-section readers (``_read_loads``/``_read_syscalls``/
``_read_sequencers``/…) with skip-siblings (``_skip_loads``/…):
:func:`decode_log` composes the readers into a full :class:`ReplayLog`,
while :func:`decode_log_sections` composes readers for the sequencer and
captured-columns sections with skips for everything else — the
zero-replay detect path's entry point.  Skipping a varint is a byte scan
(no shifts, no object construction), and skipping the per-thread load
payload in particular never touches the v2 value predictor: the
predicted bit alone says whether a value field is present.
"""

from __future__ import annotations

import io
import mmap
import os
import re
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..isa.program import StaticInstructionId
from .compression import decode_varint, encode_varint, unzigzag, zigzag
from .log import (
    CapturedAccessColumns,
    LoadRecord,
    ReplayLog,
    SequencerRecord,
    SyscallRecord,
    ThreadAccessColumns,
    ThreadEnd,
    ThreadLog,
)

#: First bytes of every binary replay log.
MAGIC = b"RPRB"
#: Current monolithic container format version (bumped on layout change).
BINARY_FORMAT_VERSION = 3
#: The segmented container (framed, independently decodable segments).
SEGMENTED_FORMAT_VERSION = 4
#: Every version this reader can decode.
SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: Default estimated payload bytes per v4 segment before the writer seals
#: it.  The estimate counts uncompressed varint row costs, so on-disk
#: segments land well below this after zlib.
DEFAULT_SEGMENT_BYTES = 1 << 16

#: v4 section frame tags (each frame: ``uint tag, uint byte length,
#: zlib-compressed payload``).
_SECTION_HEADER = 1
_SECTION_SEGMENT = 2
_SECTION_TRAILER = 3
_SECTION_FOOTER = 4

#: Estimated uncompressed cost per row kind, used by the deterministic
#: segment cut rule (shared by the streaming writer and the re-encoder so
#: the same log always cuts at the same sequencers).
_SEQ_ROW_COST = 12
_ACCESS_ROW_COST = 6
_HEAP_ROW_COST = 5

#: zlib level: 6 is the historical "zip utility" analog used by
#: :func:`repro.record.compression.compression_stats`.
_COMPRESSION_LEVEL = 6

#: Varints skipped per regex step in :meth:`_Reader.skip_uints`.  One
#: varint is ``[\x80-\xff]*`` continuation bytes then a terminator with
#: the high bit clear; the counted repetition lets the regex engine scan
#: a whole block of them in C.
_SKIP_CHUNK_SIZE = 512
_SKIP_CHUNK = re.compile(
    rb"(?:[\x80-\xff]*[\x00-\x7f]){%d}" % _SKIP_CHUNK_SIZE
)


class _Writer:
    """Varint record-stream writer."""

    __slots__ = ("out",)

    def __init__(self) -> None:
        self.out = bytearray()

    def uint(self, value: int) -> None:
        self.out += encode_varint(value)

    def sint(self, value: int) -> None:
        self.out += encode_varint(zigzag(value))

    def text(self, value: str) -> None:
        raw = value.encode("utf-8")
        self.uint(len(raw))
        self.out += raw

    def flag(self, value: bool) -> None:
        self.uint(1 if value else 0)


class _Reader:
    """Varint record-stream reader (mirrors :class:`_Writer` exactly)."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def uint(self) -> int:
        value, self.offset = decode_varint(self.data, self.offset)
        return value

    def sint(self) -> int:
        return unzigzag(self.uint())

    def text(self) -> str:
        length = self.uint()
        raw = self.data[self.offset : self.offset + length]
        self.offset += length
        return raw.decode("utf-8")

    def flag(self) -> bool:
        return bool(self.uint())

    # -- seek-past primitives (the sectioned reader's skip side) -------

    def skip_uints(self, count: int) -> None:
        """Advance past ``count`` varints without decoding them.

        A varint ends at its first byte with the continuation bit clear,
        so skipping is a byte scan — no shifts, no int assembly.  The
        scan runs in the regex engine (:data:`_SKIP_CHUNK` matches a
        fixed block of varints at C speed), so seeking past a large
        section — the global-order stream is two varints *per executed
        step* — costs microseconds, not a Python loop per byte.  Signed
        (zigzag) fields occupy exactly one varint, so this skips them
        too.
        """
        data = self.data
        offset = self.offset
        while count >= _SKIP_CHUNK_SIZE:
            match = _SKIP_CHUNK.match(data, offset)
            if match is None:
                break  # truncated stream: the loop below pinpoints it
            offset = match.end()
            count -= _SKIP_CHUNK_SIZE
        for _ in range(count):
            while data[offset] & 0x80:
                offset += 1
            offset += 1
        self.offset = offset

    def skip_text(self) -> None:
        """Advance past one length-prefixed string without decoding it."""
        length = self.uint()
        self.offset += length


# ----------------------------------------------------------------------
# Encoding.
# ----------------------------------------------------------------------


def _write_static_id(writer: _Writer, static_id: Optional[StaticInstructionId]) -> None:
    writer.flag(static_id is not None)
    if static_id is not None:
        writer.text(static_id.block)
        writer.uint(static_id.index)


def _write_loads(
    writer: _Writer, log: ThreadLog, version: int, elide_predicted: bool
) -> int:
    """Write the load-record section; returns the number of values elided."""
    elided = 0
    writer.uint(len(log.loads))
    previous_step = 0
    previous_address = 0
    #: address -> last value written to the stream for it (v2 predictor).
    predictor: dict = {}
    for step in sorted(log.loads):
        record = log.loads[step]
        step_delta = step - previous_step
        if version >= 2:
            predicted = (
                elide_predicted and predictor.get(record.address) == record.value
            )
            writer.uint(step_delta * 2 + (1 if predicted else 0))
            writer.sint(record.address - previous_address)
            if predicted:
                elided += 1
            else:
                writer.uint(record.value)
            predictor[record.address] = record.value
        else:
            writer.uint(step_delta)
            writer.sint(record.address - previous_address)
            writer.uint(record.value)
        previous_step = step
        previous_address = record.address
    return elided


def _write_syscalls(writer: _Writer, log: ThreadLog) -> None:
    writer.uint(len(log.syscalls))
    previous_step = 0
    for step in sorted(log.syscalls):
        record = log.syscalls[step]
        writer.uint(step - previous_step)
        writer.text(record.name)
        writer.sint(record.result)
        previous_step = step


def _write_footprint(writer: _Writer, log: ThreadLog) -> None:
    footprint = sorted(log.pc_footprint)
    writer.uint(len(footprint))
    previous_pc = 0
    for pc in footprint:
        writer.uint(pc - previous_pc)
        previous_pc = pc


def _write_end(writer: _Writer, log: ThreadLog) -> None:
    writer.flag(log.end is not None)
    if log.end is not None:
        writer.sint(log.end.thread_step)
        writer.text(log.end.reason)
        writer.flag(log.end.fault_kind is not None)
        if log.end.fault_kind is not None:
            writer.text(log.end.fault_kind)


def _write_thread(
    writer: _Writer, log: ThreadLog, version: int, elide_predicted: bool
) -> int:
    """Write one thread; returns the number of load values elided."""
    writer.text(log.name)
    writer.uint(log.tid)
    writer.text(log.block)
    writer.uint(len(log.initial_registers))
    for value in log.initial_registers:
        writer.uint(value)

    elided = _write_loads(writer, log, version, elide_predicted)
    _write_syscalls(writer, log)

    writer.uint(len(log.sequencers))
    previous_step = 0
    previous_timestamp = 0
    for sequencer in log.sequencers:
        writer.sint(sequencer.thread_step - previous_step)
        writer.sint(sequencer.timestamp - previous_timestamp)
        writer.text(sequencer.kind)
        _write_static_id(writer, sequencer.static_id)
        previous_step = sequencer.thread_step
        previous_timestamp = sequencer.timestamp

    _write_footprint(writer, log)
    writer.uint(log.steps)
    _write_end(writer, log)
    return elided


def _write_captured(writer: _Writer, captured: CapturedAccessColumns) -> None:
    """Write the v3 captured-columns section.

    Access rows are delta-encoded on step (non-decreasing by
    construction) and address; the static id stores only the instruction
    *index* — every access of a thread belongs to that thread's own
    block, so the decoder rebinds the block name from the thread record.
    """
    writer.uint(captured.predicted_loads)
    writer.uint(len(captured.threads))
    for name, columns in captured.threads.items():
        writer.text(name)
        steps = columns.steps
        addresses = columns.addresses
        values = columns.values
        flags = columns.flags
        static_ids = columns.static_ids
        writer.uint(len(steps))
        previous_step = 0
        previous_address = 0
        for row in range(len(steps)):
            step = steps[row]
            address = addresses[row]
            writer.uint(step - previous_step)
            writer.uint(flags[row])
            writer.sint(address - previous_address)
            writer.uint(values[row])
            writer.uint(static_ids[row].index)
            previous_step = step
            previous_address = address
        writer.uint(len(columns.heap_steps))
        previous_step = 0
        for row in range(len(columns.heap_steps)):
            step = columns.heap_steps[row]
            writer.uint(step - previous_step)
            writer.uint(0 if columns.heap_kinds[row] == "alloc" else 1)
            writer.uint(columns.heap_bases[row])
            writer.uint(columns.heap_sizes[row])
            previous_step = step


def encode_log(
    log: ReplayLog,
    version: int = BINARY_FORMAT_VERSION,
    elide_predicted_loads: bool = True,
    stats: Optional[dict] = None,
    include_captured: bool = True,
) -> bytes:
    """Serialize ``log`` into the versioned binary container.

    ``version`` selects the container layout (v1/v2 kept for
    compatibility fixtures); ``elide_predicted_loads`` toggles the v2+
    value elision (ignored for v1).  ``include_captured`` controls the v3
    captured-columns section (ignored below v3; the suite cache disables
    it so cache hits keep exercising the replay-derived fallback).  When
    ``stats`` is given, ``stats["elided_load_values"]`` receives the
    number of load values the predictor kept off the wire.
    """
    if version not in SUPPORTED_VERSIONS:
        raise ValueError("unsupported binary replay-log format version: %d" % version)
    if version >= SEGMENTED_FORMAT_VERSION:
        return encode_log_segmented(
            log,
            elide_predicted_loads=elide_predicted_loads,
            stats=stats,
            include_captured=include_captured,
        )
    writer = _Writer()
    writer.text(log.program_name)
    writer.text(log.program_source)
    writer.sint(log.seed)
    writer.text(log.scheduler)
    writer.flag(log.global_order is not None)
    if log.global_order is not None:
        writer.uint(len(log.global_order))
        for tid, step in log.global_order:
            writer.uint(tid)
            writer.sint(step)
    writer.uint(len(log.threads))
    elided = 0
    for thread in log.threads.values():
        elided += _write_thread(writer, thread, version, elide_predicted_loads)
    if version >= 3:
        has_captured = include_captured and log.captured is not None
        writer.flag(has_captured)
        if has_captured:
            _write_captured(writer, log.captured)
    if stats is not None:
        stats["elided_load_values"] = elided
    body = zlib.compress(bytes(writer.out), _COMPRESSION_LEVEL)
    return MAGIC + bytes([version]) + body


# ----------------------------------------------------------------------
# Decoding.
# ----------------------------------------------------------------------


def _read_static_id(reader: _Reader) -> Optional[StaticInstructionId]:
    if not reader.flag():
        return None
    block = reader.text()
    index = reader.uint()
    return StaticInstructionId(block=block, index=index)


def _read_loads(reader: _Reader, version: int, log: ThreadLog) -> None:
    """Decode the load-record section into ``log.loads`` (predictor replay)."""
    step = 0
    address = 0
    predictor: dict = {}
    for _ in range(reader.uint()):
        if version >= 2:
            packed = reader.uint()
            step += packed >> 1
            address += reader.sint()
            if packed & 1:
                try:
                    value = predictor[address]
                except KeyError:
                    raise ValueError(
                        "corrupt log: predicted load with no prior value "
                        "for address %#x" % address
                    )
            else:
                value = reader.uint()
            predictor[address] = value
        else:
            step += reader.uint()
            address += reader.sint()
            value = reader.uint()
        log.loads[step] = LoadRecord(thread_step=step, address=address, value=value)


def _skip_loads(reader: _Reader, version: int) -> int:
    """Seek past the load-record section; returns the record count.

    Never touches the v2 value predictor: the packed step delta's low
    bit alone says whether a value field follows, so elided loads cost
    two varint skips and logged ones three.
    """
    count = reader.uint()
    if version >= 2:
        for _ in range(count):
            packed = reader.uint()
            # address delta, then the value unless the predicted bit is set.
            reader.skip_uints(1 if packed & 1 else 2)
    else:
        reader.skip_uints(3 * count)
    return count


def _read_syscalls(reader: _Reader, log: ThreadLog) -> None:
    step = 0
    for _ in range(reader.uint()):
        step += reader.uint()
        syscall_name = reader.text()
        result = reader.sint()
        log.syscalls[step] = SyscallRecord(
            thread_step=step, name=syscall_name, result=result
        )


def _skip_syscalls(reader: _Reader) -> int:
    count = reader.uint()
    for _ in range(count):
        reader.skip_uints(1)  # step delta
        reader.skip_text()  # syscall name
        reader.skip_uints(1)  # result
    return count


def _read_sequencers(reader: _Reader) -> List[SequencerRecord]:
    """Decode the sequencer section — the happens-before skeleton every
    analysis needs, so it has no skip sibling.

    Loops emit the same sequencer site over and over, so kind strings
    and static ids are interned per section: one object per distinct
    site instead of one per record (they are value-equal either way).
    """
    sequencers: List[SequencerRecord] = []
    append = sequencers.append
    step = 0
    timestamp = 0
    kinds: Dict[str, str] = {}
    interned: Dict[Tuple[str, int], StaticInstructionId] = {}
    for _ in range(reader.uint()):
        step += reader.sint()
        timestamp += reader.sint()
        kind = reader.text()
        kind = kinds.setdefault(kind, kind)
        if reader.uint():
            block = reader.text()
            index = reader.uint()
            static_id = interned.get((block, index))
            if static_id is None:
                static_id = interned[(block, index)] = StaticInstructionId(
                    block=block, index=index
                )
        else:
            static_id = None
        append(
            SequencerRecord(
                thread_step=step,
                timestamp=timestamp,
                kind=kind,
                static_id=static_id,
            )
        )
    return sequencers


def _read_footprint(reader: _Reader) -> set:
    pc = 0
    footprint = set()
    for _ in range(reader.uint()):
        pc += reader.uint()
        footprint.add(pc)
    return footprint


def _skip_footprint(reader: _Reader) -> None:
    reader.skip_uints(reader.uint())


def _read_end(reader: _Reader) -> Optional[ThreadEnd]:
    if not reader.flag():
        return None
    end_step = reader.sint()
    reason = reader.text()
    fault_kind = reader.text() if reader.flag() else None
    return ThreadEnd(thread_step=end_step, reason=reason, fault_kind=fault_kind)


def _skip_end(reader: _Reader) -> None:
    if reader.flag():
        reader.skip_uints(1)  # end step
        reader.skip_text()  # reason
        if reader.flag():
            reader.skip_text()  # fault kind


def _read_thread(reader: _Reader, version: int) -> ThreadLog:
    name = reader.text()
    tid = reader.uint()
    block = reader.text()
    registers = tuple(reader.uint() for _ in range(reader.uint()))
    log = ThreadLog(name=name, tid=tid, block=block, initial_registers=registers)
    _read_loads(reader, version, log)
    _read_syscalls(reader, log)
    log.sequencers.extend(_read_sequencers(reader))
    log.pc_footprint = _read_footprint(reader)
    log.steps = reader.uint()
    log.end = _read_end(reader)
    return log


def _read_captured(reader: _Reader, threads: dict) -> CapturedAccessColumns:
    """Read the v3 captured-columns section (inverse of ``_write_captured``)."""
    captured = CapturedAccessColumns(predicted_loads=reader.uint())
    for _ in range(reader.uint()):
        name = reader.text()
        block = threads[name].block
        columns = ThreadAccessColumns()
        step = 0
        address = 0
        # Static-id indices repeat massively (loops revisit the same
        # instructions), so intern the frozen dataclass per index instead
        # of constructing one per row; equality is by value, identity is
        # irrelevant downstream.
        interned: Dict[int, StaticInstructionId] = {}
        for _ in range(reader.uint()):
            step += reader.uint()
            flag = reader.uint()
            address += reader.sint()
            columns.steps.append(step)
            columns.flags.append(flag)
            columns.addresses.append(address)
            columns.values.append(reader.uint())
            index = reader.uint()
            static_id = interned.get(index)
            if static_id is None:
                static_id = interned[index] = StaticInstructionId(
                    block=block, index=index
                )
            columns.static_ids.append(static_id)
        step = 0
        for _ in range(reader.uint()):
            step += reader.uint()
            columns.heap_steps.append(step)
            columns.heap_kinds.append("alloc" if reader.uint() == 0 else "free")
            columns.heap_bases.append(reader.uint())
            columns.heap_sizes.append(reader.uint())
        captured.threads[name] = columns
    return captured


def decode_log(data: bytes) -> ReplayLog:
    """Rebuild a :class:`ReplayLog` from :func:`encode_log` output."""
    if not data.startswith(MAGIC):
        raise ValueError("not a binary replay log (bad magic bytes)")
    version = data[len(MAGIC)]
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            "unsupported binary replay-log format version: %d" % version
        )
    if version >= SEGMENTED_FORMAT_VERSION:
        return _decode_log_segmented(data)
    reader = _Reader(zlib.decompress(data[len(MAGIC) + 1 :]))
    program_name = reader.text()
    program_source = reader.text()
    seed = reader.sint()
    scheduler = reader.text()
    global_order: Optional[List[Tuple[int, int]]] = None
    if reader.flag():
        global_order = [
            (reader.uint(), reader.sint()) for _ in range(reader.uint())
        ]
    threads = {}
    for _ in range(reader.uint()):
        thread = _read_thread(reader, version)
        threads[thread.name] = thread
    captured: Optional[CapturedAccessColumns] = None
    if version >= 3 and reader.flag():
        captured = _read_captured(reader, threads)
    return ReplayLog(
        program_name=program_name,
        program_source=program_source,
        threads=threads,
        seed=seed,
        scheduler=scheduler,
        global_order=global_order,
        captured=captured,
    )


def is_binary_log(data: bytes) -> bool:
    """True when ``data`` carries the binary container's magic bytes."""
    return data.startswith(MAGIC)


# ----------------------------------------------------------------------
# Sectioned decoding: the zero-replay detect path's carrier types.
# ----------------------------------------------------------------------


@dataclass
class ThreadSectionView:
    """One thread's detect-relevant sections, nothing else decoded.

    Carries exactly what region construction needs —
    :func:`repro.replay.regions.regions_of_thread` duck-types on
    ``name``/``tid``/``sequencers``, and ``steps`` bounds the closing
    region.  Registers, loads, syscalls, the pc footprint and the end
    record were *skipped*, not decoded.
    """

    name: str
    tid: int
    block: str
    sequencers: List[SequencerRecord] = field(default_factory=list)
    steps: int = 0


@dataclass
class CapturedColumnView:
    """One thread's captured access rows as packed parallel columns.

    The from-log :class:`~repro.analysis.access_index.AccessIndex`
    constructor consumes these directly: machine-word arrays for
    steps/addresses/values, a bytearray for flags, and interned
    :class:`StaticInstructionId` objects (indices repeat massively in
    loops).  Heap lifecycle rows are skipped — detection never reads
    them.
    """

    steps: array = field(default_factory=lambda: array("Q"))
    flags: bytearray = field(default_factory=bytearray)
    addresses: array = field(default_factory=lambda: array("Q"))
    values: array = field(default_factory=lambda: array("Q"))
    static_ids: List[StaticInstructionId] = field(default_factory=list)


@dataclass
class LogSections:
    """Header + sequencer + captured sections of one RPRB container.

    The product of :func:`decode_log_sections`: enough to build regions
    and the access index with zero replay, and ``program_source`` kept
    so callers that later need instruction text (classify, ``describe``)
    can assemble the program lazily.  ``captured`` is ``None`` when the
    log predates v3 or was encoded with ``include_captured=False`` —
    callers must fall back to the replay path then.
    """

    version: int
    program_name: str
    program_source: str
    seed: int
    scheduler: str
    threads: Dict[str, ThreadSectionView] = field(default_factory=dict)
    captured: Optional[Dict[str, CapturedColumnView]] = None


def _read_thread_sections(reader: _Reader, version: int) -> ThreadSectionView:
    """Decode one thread's identity + sequencers; seek past the rest."""
    name = reader.text()
    tid = reader.uint()
    block = reader.text()
    reader.skip_uints(reader.uint())  # initial registers
    _skip_loads(reader, version)
    _skip_syscalls(reader)
    view = ThreadSectionView(name=name, tid=tid, block=block)
    view.sequencers = _read_sequencers(reader)
    _skip_footprint(reader)
    view.steps = reader.uint()
    _skip_end(reader)
    return view


def _read_captured_view(
    reader: _Reader, threads: Dict[str, ThreadSectionView]
) -> Dict[str, CapturedColumnView]:
    """Decode captured access rows into packed columns; skip heap rows."""
    reader.skip_uints(1)  # predicted_loads counter — accounting only
    captured: Dict[str, CapturedColumnView] = {}
    for _ in range(reader.uint()):
        name = reader.text()
        block = threads[name].block
        view = CapturedColumnView()
        step_col = view.steps
        flag_col = view.flags
        address_col = view.addresses
        value_col = view.values
        static_col = view.static_ids
        interned: Dict[int, StaticInstructionId] = {}
        step = 0
        address = 0
        # The row loop is the sectioned reader's hottest code (five
        # varints per captured access), so it decodes varints inline on
        # local offsets instead of going through reader.uint()/sint().
        decode = decode_varint
        data = reader.data
        offset = reader.offset
        count, offset = decode(data, offset)
        for _ in range(count):
            delta, offset = decode(data, offset)
            step += delta
            flag, offset = decode(data, offset)
            raw, offset = decode(data, offset)
            address += (raw >> 1) ^ -(raw & 1)
            value, offset = decode(data, offset)
            index, offset = decode(data, offset)
            step_col.append(step)
            flag_col.append(flag)
            address_col.append(address)
            value_col.append(value)
            static_id = interned.get(index)
            if static_id is None:
                static_id = interned[index] = StaticInstructionId(
                    block=block, index=index
                )
            static_col.append(static_id)
        reader.offset = offset
        reader.skip_uints(4 * reader.uint())  # heap lifecycle rows
        captured[name] = view
    return captured


def decode_log_sections(data: bytes) -> LogSections:
    """Decode only the detect-relevant sections of a binary replay log.

    Reads the header, each thread's identity and sequencer records, and
    the v3 captured-columns section (when present) — and *seeks past*
    registers, load records, syscalls, pc footprints, end records, heap
    rows and the optional global order.  The wire format is unchanged;
    this is purely a cheaper reader over the same bytes.
    """
    if not data.startswith(MAGIC):
        raise ValueError("not a binary replay log (bad magic bytes)")
    version = data[len(MAGIC)]
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            "unsupported binary replay-log format version: %d" % version
        )
    if version >= SEGMENTED_FORMAT_VERSION:
        return _decode_log_sections_segmented(data)
    reader = _Reader(zlib.decompress(data[len(MAGIC) + 1 :]))
    program_name = reader.text()
    program_source = reader.text()
    seed = reader.sint()
    scheduler = reader.text()
    if reader.flag():
        reader.skip_uints(2 * reader.uint())  # global order (tid, step) pairs
    threads: Dict[str, ThreadSectionView] = {}
    for _ in range(reader.uint()):
        view = _read_thread_sections(reader, version)
        threads[view.name] = view
    captured: Optional[Dict[str, CapturedColumnView]] = None
    if version >= 3 and reader.flag():
        captured = _read_captured_view(reader, threads)
    return LogSections(
        version=version,
        program_name=program_name,
        program_source=program_source,
        seed=seed,
        scheduler=scheduler,
        threads=threads,
        captured=captured,
    )


# ----------------------------------------------------------------------
# v4: the segmented container.
# ----------------------------------------------------------------------
#
# Layout::
#
#     offset 0   4 bytes   MAGIC = b"RPRB"
#     offset 4   1 byte    version = 4
#     offset 5   ...       framed sections, each:
#                              uint tag, uint byte length, zlib payload
#
# Sections, in file order:
#
# * **header** (tag 1) — program identity (name, source, seed, scheduler)
#   plus the has-captured flag.  Written before the first event, so a
#   streaming recorder can open the file immediately.
# * **segment** (tag 2, repeated) — a bounded chunk of the trace: for each
#   thread appearing in the chunk, its sequencer rows plus the captured
#   access/heap rows *attached* to them.  A row with thread step ``s``
#   attaches to the first of its thread's sequencers with
#   ``thread_step >= s`` — so every sequencing region's accesses land in
#   the same segment as the region's closing sequencer, which is what lets
#   the streaming cursor finalize regions segment by segment.  All delta
#   bases restart per segment: each segment decodes on its own.
# * **trailer** (tag 3) — the replay residue: per-thread registers, load
#   records (v2 predictor elision), syscalls, pc footprints, step counts,
#   end records and any rows no sequencer claimed, plus the global order.
#   Detection never decompresses most of it (the sectioned reader seeks).
# * **footer** (tag 4) — the segment index: per segment its ordinal, byte
#   offset, framed length, row counts and timestamp range.
#
# Segments are cut by a deterministic rule — walk sequencers in global
# timestamp order, accumulate estimated row costs, seal at
# ``segment_bytes`` — shared by the streaming :class:`SegmentedLogWriter`
# and the in-memory re-encoder, so ``encode → decode → encode`` is
# byte-stable and the in-memory segmentation of a v3 log matches what a
# v4 file of the same trace would contain.


@dataclass
class SegmentedHeader:
    """Identity fields of a v4 container (the tag-1 section)."""

    version: int
    program_name: str
    program_source: str
    seed: int
    scheduler: str
    has_captured: bool


@dataclass
class SegmentThreadView:
    """One thread's rows within one segment."""

    name: str
    tid: int
    block: str
    sequencers: List[SequencerRecord] = field(default_factory=list)
    columns: CapturedColumnView = field(default_factory=CapturedColumnView)
    #: ``(step, kind, base, size)`` heap lifecycle rows (kind 0=alloc).
    heap_rows: List[Tuple[int, int, int, int]] = field(default_factory=list)


@dataclass
class LogSegmentView:
    """One decoded v4 segment: self-contained, delta bases restarted."""

    ordinal: int
    first_ts: int
    last_ts: int
    threads: Dict[str, SegmentThreadView] = field(default_factory=dict)


@dataclass
class SegmentIndexEntry:
    """One footer row: where a segment lives and what it holds."""

    ordinal: int
    offset: int
    length: int
    sequencer_rows: int
    access_rows: int
    first_ts: int
    last_ts: int


class _SegmentBuffer:
    """Per-thread accumulation for the segment currently being built."""

    __slots__ = ("name", "tid", "block", "sequencers", "access_rows", "heap_rows")

    def __init__(self, name: str, tid: int, block: str):
        self.name = name
        self.tid = tid
        self.block = block
        self.sequencers: List[SequencerRecord] = []
        #: ``(step, flag, address, value, static_id)`` — objects, not
        #: indices; the writer narrows to ``static_id.index`` on the wire.
        self.access_rows: list = []
        self.heap_rows: List[Tuple[int, int, int, int]] = []


class _SegmentAccumulator:
    """The deterministic cut rule, shared by every segment producer.

    ``add_sequencer`` appends one sequencer and its attached rows to the
    pending segment and seals it once the estimated row cost reaches
    ``segment_bytes``.  Subclasses implement ``_seal`` — to bytes
    (:class:`SegmentedLogWriter`) or to in-memory views
    (:class:`_SegmentViewCollector`).
    """

    def __init__(self, segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        self.segment_bytes = segment_bytes
        self._buffers: Dict[str, _SegmentBuffer] = {}
        self._cost = 0
        self._ordinal = 0

    @property
    def segments_sealed(self) -> int:
        return self._ordinal

    def add_sequencer(
        self,
        name: str,
        tid: int,
        block: str,
        sequencer: SequencerRecord,
        access_rows=(),
        heap_rows=(),
    ) -> None:
        buffer = self._buffers.get(name)
        if buffer is None:
            buffer = self._buffers[name] = _SegmentBuffer(name, tid, block)
        buffer.sequencers.append(sequencer)
        if access_rows:
            buffer.access_rows.extend(access_rows)
        if heap_rows:
            buffer.heap_rows.extend(heap_rows)
        self._cost += (
            _SEQ_ROW_COST
            + _ACCESS_ROW_COST * len(access_rows)
            + _HEAP_ROW_COST * len(heap_rows)
        )
        if self._cost >= self.segment_bytes:
            self.seal_segment()

    def seal_segment(self) -> None:
        """Seal the pending segment, if any rows accumulated."""
        if not self._buffers:
            return
        self._seal(self._ordinal, self._buffers)
        self._ordinal += 1
        self._buffers = {}
        self._cost = 0

    def _seal(self, ordinal: int, buffers: Dict[str, _SegmentBuffer]) -> None:
        raise NotImplementedError  # pragma: no cover - interface


def _segment_ts_range(buffers: Dict[str, _SegmentBuffer]) -> Tuple[int, int]:
    first_ts = min(b.sequencers[0].timestamp for b in buffers.values())
    last_ts = max(b.sequencers[-1].timestamp for b in buffers.values())
    return first_ts, last_ts


class SegmentedLogWriter(_SegmentAccumulator):
    """Incremental v4 writer: header up front, segments as they fill.

    Drives the deterministic cut rule over any source of
    timestamp-ordered sequencer events — the recorder streams into one of
    these while the machine is still running;
    :func:`encode_log_segmented` replays an in-memory log through the
    same code.  ``out`` is any binary file-like object.
    """

    def __init__(
        self,
        out,
        *,
        program_name: str,
        program_source: str,
        seed: int,
        scheduler: str,
        has_captured: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        elide_predicted_loads: bool = True,
    ):
        super().__init__(segment_bytes)
        self._out = out
        self._offset = 0
        self._elide = elide_predicted_loads
        self._index: List[SegmentIndexEntry] = []
        self._finished = False
        self.has_captured = has_captured
        self._write_raw(MAGIC + bytes([SEGMENTED_FORMAT_VERSION]))
        header = _Writer()
        header.text(program_name)
        header.text(program_source)
        header.sint(seed)
        header.text(scheduler)
        header.flag(has_captured)
        self._write_frame(_SECTION_HEADER, header.out)

    # -- framing --------------------------------------------------------

    def _write_raw(self, data: bytes) -> None:
        self._out.write(data)
        self._offset += len(data)

    def _write_frame(self, tag: int, payload) -> Tuple[int, int]:
        """Compress + frame one section; returns (offset, framed length)."""
        compressed = zlib.compress(bytes(payload), _COMPRESSION_LEVEL)
        head = _Writer()
        head.uint(tag)
        head.uint(len(compressed))
        start = self._offset
        self._write_raw(bytes(head.out))
        self._write_raw(compressed)
        return start, self._offset - start

    # -- segments -------------------------------------------------------

    def _seal(self, ordinal: int, buffers: Dict[str, _SegmentBuffer]) -> None:
        writer = _Writer()
        writer.uint(ordinal)
        first_ts, last_ts = _segment_ts_range(buffers)
        writer.uint(first_ts)
        writer.uint(last_ts)
        entries = sorted(buffers.values(), key=lambda buffer: buffer.tid)
        writer.uint(len(entries))
        sequencer_rows = 0
        access_rows = 0
        for buffer in entries:
            writer.text(buffer.name)
            writer.uint(buffer.tid)
            writer.text(buffer.block)
            writer.uint(len(buffer.sequencers))
            previous_step = 0
            previous_ts = 0
            for sequencer in buffer.sequencers:
                writer.sint(sequencer.thread_step - previous_step)
                writer.sint(sequencer.timestamp - previous_ts)
                writer.text(sequencer.kind)
                _write_static_id(writer, sequencer.static_id)
                previous_step = sequencer.thread_step
                previous_ts = sequencer.timestamp
            _write_access_rows(writer, buffer.access_rows)
            writer.uint(len(buffer.heap_rows))
            previous_step = 0
            for step, kind, base, size in buffer.heap_rows:
                writer.uint(step - previous_step)
                writer.uint(kind)
                writer.uint(base)
                writer.uint(size)
                previous_step = step
            sequencer_rows += len(buffer.sequencers)
            access_rows += len(buffer.access_rows)
        offset, length = self._write_frame(_SECTION_SEGMENT, writer.out)
        self._index.append(
            SegmentIndexEntry(
                ordinal=ordinal,
                offset=offset,
                length=length,
                sequencer_rows=sequencer_rows,
                access_rows=access_rows,
                first_ts=first_ts,
                last_ts=last_ts,
            )
        )

    # -- trailer + footer -----------------------------------------------

    def finish(
        self,
        threads: Dict[str, ThreadLog],
        global_order: Optional[List[Tuple[int, int]]] = None,
        predicted_loads: int = 0,
        residuals: Optional[Dict[str, Tuple[list, list]]] = None,
        stats: Optional[dict] = None,
    ) -> List[SegmentIndexEntry]:
        """Seal the pending segment and write the trailer + footer.

        ``residuals`` maps thread names to ``(access_rows, heap_rows)``
        no sequencer claimed (empty for any machine-produced trace, where
        the thread-end sequencer bounds every row).  Returns the segment
        index, which is also what the footer persists.
        """
        if self._finished:
            raise ValueError("segmented writer already finished")
        self.seal_segment()
        residuals = residuals or {}
        writer = _Writer()
        writer.flag(global_order is not None)
        if global_order is not None:
            writer.uint(len(global_order))
            for tid, step in global_order:
                writer.uint(tid)
                writer.sint(step)
        writer.uint(predicted_loads)
        writer.uint(len(threads))
        elided = 0
        for name, thread in threads.items():
            writer.text(name)
            writer.uint(thread.tid)
            writer.text(thread.block)
            writer.uint(len(thread.initial_registers))
            for value in thread.initial_registers:
                writer.uint(value)
            elided += _write_loads(
                writer, thread, SEGMENTED_FORMAT_VERSION, self._elide
            )
            _write_syscalls(writer, thread)
            _write_footprint(writer, thread)
            writer.uint(thread.steps)
            _write_end(writer, thread)
            access_rows, heap_rows = residuals.get(name, ((), ()))
            _write_access_rows(writer, access_rows)
            writer.uint(len(heap_rows))
            previous_step = 0
            for step, kind, base, size in heap_rows:
                writer.uint(step - previous_step)
                writer.uint(kind)
                writer.uint(base)
                writer.uint(size)
                previous_step = step
        if stats is not None:
            stats["elided_load_values"] = elided
        self._write_frame(_SECTION_TRAILER, writer.out)
        footer = _Writer()
        footer.uint(len(self._index))
        for entry in self._index:
            footer.uint(entry.ordinal)
            footer.uint(entry.offset)
            footer.uint(entry.length)
            footer.uint(entry.sequencer_rows)
            footer.uint(entry.access_rows)
            footer.uint(entry.first_ts)
            footer.uint(entry.last_ts)
        self._write_frame(_SECTION_FOOTER, footer.out)
        self._finished = True
        return list(self._index)


def _write_access_rows(writer: _Writer, rows) -> None:
    """Write ``(step, flag, address, value, static_id)`` rows, local bases."""
    writer.uint(len(rows))
    previous_step = 0
    previous_address = 0
    for step, flag, address, value, static_id in rows:
        writer.uint(step - previous_step)
        writer.uint(flag)
        writer.sint(address - previous_address)
        writer.uint(value)
        writer.uint(static_id.index)
        previous_step = step
        previous_address = address


class _SegmentViewCollector(_SegmentAccumulator):
    """Seal segments into :class:`LogSegmentView` objects (no bytes).

    The in-memory twin of :class:`SegmentedLogWriter`: v3 logs (and fresh
    recordings) stream through the same cut rule without an encode/decode
    round trip.
    """

    def __init__(self, segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        super().__init__(segment_bytes)
        self.views: List[LogSegmentView] = []

    def _seal(self, ordinal: int, buffers: Dict[str, _SegmentBuffer]) -> None:
        first_ts, last_ts = _segment_ts_range(buffers)
        threads: Dict[str, SegmentThreadView] = {}
        for buffer in sorted(buffers.values(), key=lambda buffer: buffer.tid):
            columns = CapturedColumnView()
            for step, flag, address, value, static_id in buffer.access_rows:
                columns.steps.append(step)
                columns.flags.append(flag)
                columns.addresses.append(address)
                columns.values.append(value)
                columns.static_ids.append(static_id)
            threads[buffer.name] = SegmentThreadView(
                name=buffer.name,
                tid=buffer.tid,
                block=buffer.block,
                sequencers=buffer.sequencers,
                columns=columns,
                heap_rows=buffer.heap_rows,
            )
        self.views.append(
            LogSegmentView(
                ordinal=ordinal,
                first_ts=first_ts,
                last_ts=last_ts,
                threads=threads,
            )
        )


class _SegmentPlanner:
    """Walk an in-memory log in global sequencer-timestamp order,
    attaching each thread's captured rows to their claiming sequencer."""

    def __init__(
        self,
        threads: Dict[str, ThreadLog],
        captured_threads: Optional[Dict[str, object]],
    ):
        self._threads = threads
        self._captured = captured_threads or {}
        self._row_at: Dict[str, int] = {}
        self._heap_at: Dict[str, int] = {}

    def walk(self) -> Iterator[tuple]:
        """Yield ``(name, tid, block, sequencer, access_rows, heap_rows)``
        in global timestamp order (ties broken by tid for determinism)."""
        entries = []
        for name, thread in self._threads.items():
            for sequencer in sorted(
                thread.sequencers, key=lambda record: record.timestamp
            ):
                entries.append((sequencer.timestamp, thread.tid, name, sequencer))
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        for _, tid, name, sequencer in entries:
            thread = self._threads[name]
            yield (
                name,
                tid,
                thread.block,
                sequencer,
                self._attached_rows(name, sequencer.thread_step),
                self._attached_heap(name, sequencer.thread_step),
            )

    def _attached_rows(self, name: str, seq_step: int) -> list:
        columns = self._captured.get(name)
        if columns is None:
            return []
        steps = columns.steps
        position = self._row_at.get(name, 0)
        total = len(steps)
        if position >= total or steps[position] > seq_step:
            return []
        flags = columns.flags
        addresses = columns.addresses
        values = columns.values
        static_ids = columns.static_ids
        rows = []
        while position < total and steps[position] <= seq_step:
            rows.append(
                (
                    steps[position],
                    flags[position],
                    addresses[position],
                    values[position],
                    static_ids[position],
                )
            )
            position += 1
        self._row_at[name] = position
        return rows

    def _attached_heap(self, name: str, seq_step: int) -> list:
        columns = self._captured.get(name)
        if columns is None or not getattr(columns, "heap_steps", None):
            return []
        steps = columns.heap_steps
        position = self._heap_at.get(name, 0)
        total = len(steps)
        rows = []
        while position < total and steps[position] <= seq_step:
            rows.append(
                (
                    steps[position],
                    0 if columns.heap_kinds[position] == "alloc" else 1,
                    columns.heap_bases[position],
                    columns.heap_sizes[position],
                )
            )
            position += 1
        self._heap_at[name] = position
        return rows

    def residuals(self) -> Dict[str, Tuple[list, list]]:
        """Rows no sequencer claimed (synthetic logs only, in practice)."""
        leftover: Dict[str, Tuple[list, list]] = {}
        for name in self._threads:
            columns = self._captured.get(name)
            if columns is None:
                continue
            access_rows = []
            position = self._row_at.get(name, 0)
            for row in range(position, len(columns.steps)):
                access_rows.append(
                    (
                        columns.steps[row],
                        columns.flags[row],
                        columns.addresses[row],
                        columns.values[row],
                        columns.static_ids[row],
                    )
                )
            heap_rows = []
            position = self._heap_at.get(name, 0)
            for row in range(position, len(getattr(columns, "heap_steps", ()))):
                heap_rows.append(
                    (
                        columns.heap_steps[row],
                        0 if columns.heap_kinds[row] == "alloc" else 1,
                        columns.heap_bases[row],
                        columns.heap_sizes[row],
                    )
                )
            if access_rows or heap_rows:
                leftover[name] = (access_rows, heap_rows)
        return leftover


def encode_log_segmented(
    log: ReplayLog,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    elide_predicted_loads: bool = True,
    stats: Optional[dict] = None,
    include_captured: bool = True,
) -> bytes:
    """Serialize ``log`` into the v4 segmented container.

    Deterministic: the same log and ``segment_bytes`` always produce the
    same bytes (the property suite asserts encode → decode → encode
    byte-stability), because cuts depend only on the timestamp-ordered
    sequencer walk and the shared row-cost model.
    """
    out = io.BytesIO()
    has_captured = include_captured and log.captured is not None
    writer = SegmentedLogWriter(
        out,
        program_name=log.program_name,
        program_source=log.program_source,
        seed=log.seed,
        scheduler=log.scheduler,
        has_captured=has_captured,
        segment_bytes=segment_bytes,
        elide_predicted_loads=elide_predicted_loads,
    )
    planner = _SegmentPlanner(
        log.threads, log.captured.threads if has_captured else None
    )
    for name, tid, block, sequencer, access_rows, heap_rows in planner.walk():
        writer.add_sequencer(name, tid, block, sequencer, access_rows, heap_rows)
    writer.finish(
        threads=log.threads,
        global_order=log.global_order,
        predicted_loads=log.captured.predicted_loads if has_captured else 0,
        residuals=planner.residuals(),
        stats=stats,
    )
    return out.getvalue()


def segment_views_of_log(
    log: ReplayLog, segment_bytes: int = DEFAULT_SEGMENT_BYTES
) -> List[LogSegmentView]:
    """Segment an in-memory captured log with the v4 cut rule — no bytes.

    The streaming detect path for v3 logs and fresh recordings: the views
    are exactly what :func:`iter_segments` would yield over
    :func:`encode_log_segmented` output for the same ``segment_bytes``.
    Requires ``log.captured`` (there are no access rows to stream
    otherwise).
    """
    if log.captured is None:
        raise ValueError(
            "cannot segment a log without captured access columns: "
            "the streaming path needs a v3+ capture — re-record, or use "
            "the batch path"
        )
    return _collect_segment_views(log.threads, log.captured.threads, segment_bytes)


def segment_views_of_sections(
    sections: LogSections, segment_bytes: int = DEFAULT_SEGMENT_BYTES
) -> List[LogSegmentView]:
    """Segment a sectioned-reader result (:func:`decode_log_sections`).

    Lets the streaming detect path run over a monolithic v1–v3 container
    without a full decode: the sectioned reader already skipped the
    replay-only payload, and this re-chunks what it did read with the
    same cut rule a v4 file would have.  Requires the captured section
    (``sections.captured``).
    """
    if sections.captured is None:
        raise ValueError(
            "cannot segment a log without captured access columns: "
            "the streaming path needs a v3+ capture — re-record, or use "
            "the batch path"
        )
    return _collect_segment_views(
        sections.threads, sections.captured, segment_bytes
    )


def _collect_segment_views(
    threads, captured_threads, segment_bytes: int
) -> List[LogSegmentView]:
    collector = _SegmentViewCollector(segment_bytes)
    planner = _SegmentPlanner(threads, captured_threads)
    for name, tid, block, sequencer, access_rows, heap_rows in planner.walk():
        collector.add_sequencer(name, tid, block, sequencer, access_rows, heap_rows)
    collector.seal_segment()
    return collector.views


# -- v4 reading ---------------------------------------------------------


def is_segmented_log(data: bytes) -> bool:
    """True for a binary container at or above the segmented version."""
    return (
        data.startswith(MAGIC)
        and len(data) > len(MAGIC)
        and data[len(MAGIC)] >= SEGMENTED_FORMAT_VERSION
    )


def _iter_frames(data: bytes) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(tag, compressed payload)`` for each v4 section frame."""
    offset = len(MAGIC) + 1
    end = len(data)
    while offset < end:
        tag, offset = decode_varint(data, offset)
        length, offset = decode_varint(data, offset)
        payload = data[offset : offset + length]
        if len(payload) != length:
            raise ValueError(
                "corrupt segmented log: truncated frame (tag %d)" % tag
            )
        offset += length
        yield tag, payload


def _require_segmented(data: bytes) -> int:
    if not data.startswith(MAGIC):
        raise ValueError("not a binary replay log (bad magic bytes)")
    version = data[len(MAGIC)]
    if version < SEGMENTED_FORMAT_VERSION:
        raise ValueError(
            "not a segmented replay log (container version %d predates v%d)"
            % (version, SEGMENTED_FORMAT_VERSION)
        )
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            "unsupported binary replay-log format version: %d" % version
        )
    return version


def read_segmented_header(data: bytes) -> SegmentedHeader:
    """Decode only the header section of a v4 container."""
    version = _require_segmented(data)
    for tag, payload in _iter_frames(data):
        if tag != _SECTION_HEADER:
            break
        reader = _Reader(zlib.decompress(payload))
        return SegmentedHeader(
            version=version,
            program_name=reader.text(),
            program_source=reader.text(),
            seed=reader.sint(),
            scheduler=reader.text(),
            has_captured=reader.flag(),
        )
    raise ValueError("corrupt segmented log: missing header section")


def _read_segment_payload(payload: bytes) -> LogSegmentView:
    """Decode one decompressed segment payload into a view."""
    reader = _Reader(payload)
    ordinal = reader.uint()
    first_ts = reader.uint()
    last_ts = reader.uint()
    threads: Dict[str, SegmentThreadView] = {}
    for _ in range(reader.uint()):
        name = reader.text()
        tid = reader.uint()
        block = reader.text()
        view = SegmentThreadView(name=name, tid=tid, block=block)
        view.sequencers = _read_sequencers(reader)
        columns = view.columns
        interned: Dict[int, StaticInstructionId] = {}
        step = 0
        address = 0
        for _ in range(reader.uint()):
            step += reader.uint()
            flag = reader.uint()
            address += reader.sint()
            columns.steps.append(step)
            columns.flags.append(flag)
            columns.addresses.append(address)
            columns.values.append(reader.uint())
            index = reader.uint()
            static_id = interned.get(index)
            if static_id is None:
                static_id = interned[index] = StaticInstructionId(
                    block=block, index=index
                )
            columns.static_ids.append(static_id)
        step = 0
        for _ in range(reader.uint()):
            step += reader.uint()
            view.heap_rows.append(
                (step, reader.uint(), reader.uint(), reader.uint())
            )
        threads[name] = view
    return LogSegmentView(
        ordinal=ordinal, first_ts=first_ts, last_ts=last_ts, threads=threads
    )


def iter_segments(data: bytes) -> Iterator[LogSegmentView]:
    """Yield each segment of a v4 container, decompressed one at a time.

    This is the bounded-memory entry point: only one segment's rows are
    resident per step of the iteration (plus the compressed container
    itself, which the caller already holds).
    """
    _require_segmented(data)
    for tag, payload in _iter_frames(data):
        if tag == _SECTION_SEGMENT:
            yield _read_segment_payload(zlib.decompress(payload))


def _parse_segment_index(payload: bytes) -> List[SegmentIndexEntry]:
    """Decode a decompressed footer payload into its index entries."""
    reader = _Reader(payload)
    return [
        SegmentIndexEntry(
            ordinal=reader.uint(),
            offset=reader.uint(),
            length=reader.uint(),
            sequencer_rows=reader.uint(),
            access_rows=reader.uint(),
            first_ts=reader.uint(),
            last_ts=reader.uint(),
        )
        for _ in range(reader.uint())
    ]


def read_segment_index(data: bytes) -> List[SegmentIndexEntry]:
    """Decode the footer's segment index of a v4 container."""
    _require_segmented(data)
    footer: Optional[bytes] = None
    for tag, payload in _iter_frames(data):
        if tag == _SECTION_FOOTER:
            footer = payload
    if footer is None:
        raise ValueError("corrupt segmented log: missing footer section")
    return _parse_segment_index(zlib.decompress(footer))


# -- mmap-backed zero-copy reading (the parallel detect path) -----------


class MappedSegmentedReader:
    """Random-access view of an on-disk v4 container, without the bytes.

    The file is mapped read-only and the constructor walks only the
    section *frame headers* — two varints per frame, hopping each frame
    by its encoded length — to locate the header and footer, so exactly
    two payloads (identity fields and the segment index) are ever
    decompressed up front.  Everything else stays on disk: a caller
    decompresses precisely the segment frames it owns via
    :meth:`segment_payload`, seeking straight to ``entry.offset`` from
    the footer index.  No process ever holds the whole container as a
    ``bytes`` object, which is what lets the parallel detect path fan a
    multi-gigabyte log across workers that each touch a slice of it.
    """

    __slots__ = ("path", "version", "header", "index", "_file", "_map")

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._file = open(self.path, "rb")
        try:
            self._map = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            self._file.close()
            raise
        try:
            self.version = _require_segmented(self._map[: len(MAGIC) + 1])
            header_payload, footer_payload = self._locate_sections()
            reader = _Reader(zlib.decompress(header_payload))
            self.header = SegmentedHeader(
                version=self.version,
                program_name=reader.text(),
                program_source=reader.text(),
                seed=reader.sint(),
                scheduler=reader.text(),
                has_captured=reader.flag(),
            )
            self.index = _parse_segment_index(zlib.decompress(footer_payload))
        except Exception:
            self.close()
            raise

    def _locate_sections(self) -> Tuple[bytes, bytes]:
        """Hop the frame chain; slice out only header and footer."""
        data = self._map
        offset = len(MAGIC) + 1
        end = len(data)
        header: Optional[bytes] = None
        footer: Optional[bytes] = None
        while offset < end:
            tag, offset = decode_varint(data, offset)
            length, offset = decode_varint(data, offset)
            if offset + length > end:
                raise ValueError(
                    "corrupt segmented log: truncated frame (tag %d)" % tag
                )
            if tag == _SECTION_HEADER and header is None:
                header = data[offset : offset + length]
            elif tag == _SECTION_FOOTER:
                footer = data[offset : offset + length]
            offset += length
        if header is None:
            raise ValueError("corrupt segmented log: missing header section")
        if footer is None:
            raise ValueError("corrupt segmented log: missing footer section")
        return header, footer

    def segment_payload(self, entry: SegmentIndexEntry) -> bytes:
        """Decompress one segment's payload straight out of the mapping."""
        data = self._map
        tag, offset = decode_varint(data, entry.offset)
        if tag != _SECTION_SEGMENT:
            raise ValueError(
                "corrupt segment index: entry %d points at tag %d"
                % (entry.ordinal, tag)
            )
        length, offset = decode_varint(data, offset)
        return zlib.decompress(data[offset : offset + length])

    def segment_view(self, ordinal: int) -> LogSegmentView:
        """Fully decode one segment by ordinal (tests and tooling)."""
        return _read_segment_payload(self.segment_payload(self.index[ordinal]))

    def close(self) -> None:
        try:
            self._map.close()
        finally:
            self._file.close()

    def __enter__(self) -> "MappedSegmentedReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def scan_segment_sequencers(payload: bytes) -> List[tuple]:
    """Prelude scan: per-thread sequencer totals, rows regex-skipped.

    A partition worker catching up to its segment range only needs to
    know, per thread, *how many* sequencers came before the range and
    where the last one sits (that sequencer opens the thread's possibly
    still-active region at the cut).  This decodes exactly that — the
    sequencer step/timestamp deltas plus the final record's kind — and
    seeks past every access and heap row with the C-speed varint skip,
    so a prelude segment costs a small fraction of a full decode.

    Returns ``(name, tid, block, count, last_step, last_ts, last_kind)``
    per thread present in the segment.
    """
    reader = _Reader(payload)
    reader.skip_uints(3)  # ordinal, first_ts, last_ts
    threads: List[tuple] = []
    for _ in range(reader.uint()):
        name = reader.text()
        tid = reader.uint()
        block = reader.text()
        count = reader.uint()
        step = 0
        timestamp = 0
        kind = ""
        last = count - 1
        for position in range(count):
            step += reader.sint()
            timestamp += reader.sint()
            if position == last:
                kind = reader.text()
            else:
                reader.skip_text()
            if reader.uint():
                reader.skip_text()
                reader.skip_uints(1)
        reader.skip_uints(5 * reader.uint())  # access rows
        reader.skip_uints(4 * reader.uint())  # heap rows
        threads.append((name, tid, block, count, step, timestamp, kind))
    return threads


def read_segment_lean(
    payload: bytes,
    kinds: Dict[str, str],
    interned: Dict[Tuple[str, int], StaticInstructionId],
) -> Tuple[int, int, int, List[tuple]]:
    """Fused single-pass decode of one segment for a partition worker.

    Like :func:`_read_segment_payload` but shaped for the parallel
    sweep: sequencers come back as ``(thread_step, timestamp, kind)``
    tuples, access rows as ``(step, flag, address, value, static_id)``
    tuples — the exact row shape the region cursor hands the detector —
    heap rows are regex-skipped (detection never reads them), and no
    column lists are built.  ``kinds``/``interned`` are caller-held
    interning maps so kind strings and static ids stay shared across
    every segment a worker touches.

    Returns ``(ordinal, first_ts, last_ts, threads)`` with ``threads``
    as ``(name, tid, block, sequencers, rows)`` tuples.
    """
    reader = _Reader(payload)
    ordinal = reader.uint()
    first_ts = reader.uint()
    last_ts = reader.uint()
    threads: List[tuple] = []
    for _ in range(reader.uint()):
        name = reader.text()
        tid = reader.uint()
        block = reader.text()
        sequencers: List[tuple] = []
        seq_append = sequencers.append
        step = 0
        timestamp = 0
        for _ in range(reader.uint()):
            step += reader.sint()
            timestamp += reader.sint()
            kind = reader.text()
            kind = kinds.setdefault(kind, kind)
            if reader.uint():
                reader.skip_text()
                reader.skip_uints(1)
            seq_append((step, timestamp, kind))
        # The hot loop: five varints per access row, decoded with local
        # bindings and inline zigzag exactly like ``_read_captured_view``.
        rows: List[tuple] = []
        row_append = rows.append
        decode = decode_varint
        data = reader.data
        offset = reader.offset
        count, offset = decode(data, offset)
        step = 0
        address = 0
        intern_get = interned.get
        for _ in range(count):
            delta, offset = decode(data, offset)
            step += delta
            flag, offset = decode(data, offset)
            raw, offset = decode(data, offset)
            address += (raw >> 1) ^ -(raw & 1)
            value, offset = decode(data, offset)
            index, offset = decode(data, offset)
            static_id = intern_get((block, index))
            if static_id is None:
                static_id = interned[(block, index)] = StaticInstructionId(
                    block=block, index=index
                )
            row_append((step, flag, address, value, static_id))
        reader.offset = offset
        reader.skip_uints(4 * reader.uint())  # heap rows
        threads.append((name, tid, block, sequencers, rows))
    return ordinal, first_ts, last_ts, threads


def _read_residual_access_rows(reader: _Reader, block: str) -> list:
    """Decode trailer residual access rows to ``(step, flag, address,
    value, static_id)`` tuples."""
    rows = []
    interned: Dict[int, StaticInstructionId] = {}
    step = 0
    address = 0
    for _ in range(reader.uint()):
        step += reader.uint()
        flag = reader.uint()
        address += reader.sint()
        value = reader.uint()
        index = reader.uint()
        static_id = interned.get(index)
        if static_id is None:
            static_id = interned[index] = StaticInstructionId(
                block=block, index=index
            )
        rows.append((step, flag, address, value, static_id))
    return rows


def _decode_log_segmented(data: bytes) -> ReplayLog:
    """Reassemble a full :class:`ReplayLog` from a v4 container.

    Sequencers and captured rows come from the segments (concatenated in
    segment order — global timestamp order), everything else from the
    trailer.  Note one canonicalization: per-thread sequencer lists come
    back in timestamp order, which is the order every machine-produced
    log already has.
    """
    header = read_segmented_header(data)
    sequencers: Dict[str, List[SequencerRecord]] = {}
    columns: Dict[str, ThreadAccessColumns] = {}
    trailer: Optional[bytes] = None
    for tag, payload in _iter_frames(data):
        if tag == _SECTION_SEGMENT:
            view = _read_segment_payload(zlib.decompress(payload))
            for name, thread_view in view.threads.items():
                sequencers.setdefault(name, []).extend(thread_view.sequencers)
                into = columns.get(name)
                if into is None:
                    into = columns[name] = ThreadAccessColumns()
                into.steps.extend(thread_view.columns.steps)
                into.flags.extend(thread_view.columns.flags)
                into.addresses.extend(thread_view.columns.addresses)
                into.values.extend(thread_view.columns.values)
                into.static_ids.extend(thread_view.columns.static_ids)
                for step, kind, base, size in thread_view.heap_rows:
                    into.heap_steps.append(step)
                    into.heap_kinds.append("alloc" if kind == 0 else "free")
                    into.heap_bases.append(base)
                    into.heap_sizes.append(size)
        elif tag == _SECTION_TRAILER:
            trailer = zlib.decompress(payload)
    if trailer is None:
        raise ValueError("corrupt segmented log: missing trailer section")
    reader = _Reader(trailer)
    global_order: Optional[List[Tuple[int, int]]] = None
    if reader.flag():
        global_order = [
            (reader.uint(), reader.sint()) for _ in range(reader.uint())
        ]
    predicted_loads = reader.uint()
    threads: Dict[str, ThreadLog] = {}
    for _ in range(reader.uint()):
        name = reader.text()
        tid = reader.uint()
        block = reader.text()
        registers = tuple(reader.uint() for _ in range(reader.uint()))
        thread = ThreadLog(
            name=name, tid=tid, block=block, initial_registers=registers
        )
        _read_loads(reader, SEGMENTED_FORMAT_VERSION, thread)
        _read_syscalls(reader, thread)
        thread.sequencers.extend(sequencers.get(name, []))
        thread.pc_footprint = _read_footprint(reader)
        thread.steps = reader.uint()
        thread.end = _read_end(reader)
        into = columns.get(name)
        if into is None:
            into = columns[name] = ThreadAccessColumns()
        for step, flag, address, value, static_id in _read_residual_access_rows(
            reader, block
        ):
            into.steps.append(step)
            into.flags.append(flag)
            into.addresses.append(address)
            into.values.append(value)
            into.static_ids.append(static_id)
        step = 0
        for _ in range(reader.uint()):
            step += reader.uint()
            into.heap_steps.append(step)
            into.heap_kinds.append("alloc" if reader.uint() == 0 else "free")
            into.heap_bases.append(reader.uint())
            into.heap_sizes.append(reader.uint())
        threads[name] = thread
    captured: Optional[CapturedAccessColumns] = None
    if header.has_captured:
        captured = CapturedAccessColumns(
            threads={
                # Explicit None check: a heap-only columns object has
                # __len__ == 0 and would be dropped by an ``or``.
                name: (
                    columns[name]
                    if columns.get(name) is not None
                    else ThreadAccessColumns()
                )
                for name in threads
            },
            predicted_loads=predicted_loads,
        )
    return ReplayLog(
        program_name=header.program_name,
        program_source=header.program_source,
        threads=threads,
        seed=header.seed,
        scheduler=header.scheduler,
        global_order=global_order,
        captured=captured,
    )


def _decode_log_sections_segmented(data: bytes) -> LogSections:
    """The sectioned reader for v4: header + segments decoded, trailer
    seeked through for step counts, footer skipped."""
    header = read_segmented_header(data)
    threads: Dict[str, ThreadSectionView] = {}
    captured: Optional[Dict[str, CapturedColumnView]] = (
        {} if header.has_captured else None
    )
    trailer: Optional[bytes] = None
    for tag, payload in _iter_frames(data):
        if tag == _SECTION_SEGMENT:
            view = _read_segment_payload(zlib.decompress(payload))
            for name, thread_view in view.threads.items():
                section = threads.get(name)
                if section is None:
                    section = threads[name] = ThreadSectionView(
                        name=name, tid=thread_view.tid, block=thread_view.block
                    )
                section.sequencers.extend(thread_view.sequencers)
                if captured is not None:
                    into = captured.get(name)
                    if into is None:
                        into = captured[name] = CapturedColumnView()
                    into.steps.extend(thread_view.columns.steps)
                    into.flags.extend(thread_view.columns.flags)
                    into.addresses.extend(thread_view.columns.addresses)
                    into.values.extend(thread_view.columns.values)
                    into.static_ids.extend(thread_view.columns.static_ids)
        elif tag == _SECTION_TRAILER:
            trailer = zlib.decompress(payload)
    if trailer is None:
        raise ValueError("corrupt segmented log: missing trailer section")
    reader = _Reader(trailer)
    if reader.flag():
        reader.skip_uints(2 * reader.uint())  # global order pairs
    reader.skip_uints(1)  # predicted_loads
    for _ in range(reader.uint()):
        name = reader.text()
        tid = reader.uint()
        block = reader.text()
        section = threads.get(name)
        if section is None:
            section = threads[name] = ThreadSectionView(
                name=name, tid=tid, block=block
            )
        reader.skip_uints(reader.uint())  # initial registers
        _skip_loads(reader, SEGMENTED_FORMAT_VERSION)
        _skip_syscalls(reader)
        _skip_footprint(reader)
        section.steps = reader.uint()
        _skip_end(reader)
        residual = _read_residual_access_rows(reader, block)
        if captured is not None and residual:
            into = captured.get(name)
            if into is None:
                into = captured[name] = CapturedColumnView()
            for step, flag, address, value, static_id in residual:
                into.steps.append(step)
                into.flags.append(flag)
                into.addresses.append(address)
                into.values.append(value)
                into.static_ids.append(static_id)
        reader.skip_uints(4 * reader.uint())  # residual heap rows
    if captured is not None:
        for name in threads:
            if name not in captured:
                captured[name] = CapturedColumnView()
    return LogSections(
        version=header.version,
        program_name=header.program_name,
        program_source=header.program_source,
        seed=header.seed,
        scheduler=header.scheduler,
        threads=threads,
        captured=captured,
    )
