"""Unit tests for the time-travel inspector."""

import pytest

from repro.isa import assemble
from repro.record import record_run
from repro.replay import OrderedReplay
from repro.replay.inspector import TimeTravelInspector
from repro.vm import ExplicitScheduler, RandomScheduler

SOURCE = """
.data
x: .word 5
m: .word 0
.thread main
    li r1, 10
    load r2, [x]
    add r3, r1, r2
    store r3, [x]
    lock [m]
    addi r3, r3, 1
    unlock [m]
    sys_rand r4, 100
    halt
.thread side
    li r9, 8
d:
    subi r9, r9, 1
    bnez r9, d
    load r5, [x]
    halt
"""


@pytest.fixture
def inspector():
    program = assemble(SOURCE, name="tt")
    _, log = record_run(
        program, scheduler=RandomScheduler(seed=5, switch_probability=0.3), seed=5
    )
    ordered = OrderedReplay(log, program)
    return program, ordered, TimeTravelInspector(ordered)


class TestRegisterTimeTravel:
    def test_registers_before_first_step_are_initial(self, inspector):
        _, _, tt = inspector
        assert tt.registers_at("main", 0) == (0,) * 16

    def test_register_evolution(self, inspector):
        _, _, tt = inspector
        # Before step 1 (the load): r1 was just set to 10.
        assert tt.register_at("main", 1, 1) == 10
        # Before step 2 (the add): r2 holds the loaded 5.
        assert tt.register_at("main", 2, 2) == 5
        # Before step 3 (the store): r3 = 15.
        assert tt.register_at("main", 3, 3) == 15

    def test_final_state_matches_replay(self, inspector):
        _, ordered, tt = inspector
        replay = ordered.thread_replays["main"]
        assert tt.registers_at("main", replay.steps) == replay.final_registers

    def test_syscall_result_visible_after_step(self, inspector):
        _, ordered, tt = inspector
        replay = ordered.thread_replays["main"]
        rand_step = next(
            step
            for step, static_id in enumerate(replay.static_ids)
            if "sys_rand" in str(ordered.program.instruction(static_id))
        )
        after = tt.registers_at("main", rand_step + 1)
        assert 0 <= after[4] < 100

    def test_out_of_range_step(self, inspector):
        _, _, tt = inspector
        with pytest.raises(IndexError):
            tt.registers_at("main", 99999)


class TestStepViews:
    def test_step_view_contents(self, inspector):
        program, _, tt = inspector
        view = tt.step_view("main", 1)  # the load
        assert view.instruction_text.startswith("load")
        assert view.access == ("load", program.data_address("x"), 5)
        assert view.registers_before[2] == 0
        assert view.registers_after[2] == 5
        assert "r2: 0 -> 5" in view.describe()

    def test_store_access_in_view(self, inspector):
        program, _, tt = inspector
        view = tt.step_view("main", 3)
        assert view.access == ("store", program.data_address("x"), 15)

    def test_walk_window(self, inspector):
        _, _, tt = inspector
        window = tt.walk("main", start=0, count=4)
        assert len(window) == 4
        assert [v.thread_step for v in window] == [0, 1, 2, 3]

    def test_walk_clamps_to_thread_end(self, inspector):
        _, ordered, tt = inspector
        steps = ordered.thread_replays["side"].steps
        window = tt.walk("side", start=steps - 2, count=100)
        assert len(window) == 2

    def test_pc_at(self, inspector):
        _, _, tt = inspector
        assert tt.pc_at("main", 0) == 0
        assert tt.pc_at("main", 1) == 1


class TestProvenance:
    def test_history_of_address(self, inspector):
        program, _, tt = inspector
        history = tt.history_of_address(program.data_address("x"))
        kinds = [(thread, kind) for thread, _, kind, _ in history]
        assert ("main", "load") in kinds
        assert ("main", "store") in kinds
        assert ("side", "load") in kinds

    def test_last_write_before_own_store(self, inspector):
        program, _, tt = inspector
        # After main's store (step 3), the last writer is main itself.
        provenance = tt.last_write_before("main", 5, program.data_address("x"))
        assert provenance == ("main", 3, 15)

    def test_last_write_before_cross_thread(self, inspector):
        program, _, tt = inspector
        # side never writes x; its provenance points at main's store.
        provenance = tt.last_write_before("side", 99, program.data_address("x"))
        assert provenance[0] == "main"

    def test_no_writer(self, inspector):
        _, _, tt = inspector
        assert tt.last_write_before("main", 5, 0xDEAD) is None


class TestRaceDebugging:
    def test_inspect_racing_operations(self):
        """The paper's workflow: the report names two dynamic operations;
        the inspector shows the developer the exact state around each."""
        from repro.race.happens_before import find_races

        source = (
            ".data\nx: .word 10\n.thread a b\n    load r1, [x]\n"
            "    addi r1, r1, 1\n    store r1, [x]\n    halt\n"
        )
        program = assemble(source, name="dbg")
        _, log = record_run(program, scheduler=RandomScheduler(seed=3), seed=3)
        ordered = OrderedReplay(log, program)
        tt = TimeTravelInspector(ordered)
        instance = find_races(ordered)[0]
        for access in (instance.access_a, instance.access_b):
            view = tt.step_view(access.thread_name, access.thread_step)
            assert view.static_id == access.static_id
            if view.access is not None:
                _, address, value = view.access
                assert address == access.address
                assert value == access.value
