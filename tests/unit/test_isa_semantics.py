"""Exhaustive per-opcode semantic tests, cross-validated across engines.

Every opcode is exercised through a small program and its effect asserted
on the *machine*; the same recording is then replayed through the
*thread replayer* and the *time-travel inspector*, which must agree —
three independent implementations of the ISA semantics locked together.
"""

import pytest

from repro.isa import assemble
from repro.record import record_run
from repro.replay import OrderedReplay
from repro.replay.inspector import TimeTravelInspector
from repro.vm import run_program


def run_and_crosscheck(source, name="sem"):
    """Run, record, replay, inspect; assert all engines agree; return result."""
    program = assemble(source, name=name)
    result, log = record_run(program)
    ordered = OrderedReplay(log, program)
    inspector = TimeTravelInspector(ordered)
    for thread_name, outcome in result.threads.items():
        replay = ordered.thread_replays[thread_name]
        assert replay.final_registers == outcome.registers
        assert (
            inspector.registers_at(thread_name, replay.steps) == outcome.registers
        )
    return program, result


def expect_prints(source, expected, name="sem"):
    program, result = run_and_crosscheck(source, name)
    assert [value for _, value in result.output] == expected


class TestDataMovement:
    def test_li(self):
        expect_prints(".thread t\n    li r1, 1234\n    sys_print r1\n    halt\n", [1234])

    def test_li_negative_wraps(self):
        expect_prints(
            ".thread t\n    li r1, -1\n    shri r1, r1, 63\n    sys_print r1\n    halt\n",
            [1],
        )

    def test_mov(self):
        expect_prints(
            ".thread t\n    li r1, 9\n    mov r2, r1\n    sys_print r2\n    halt\n",
            [9],
        )


@pytest.mark.parametrize(
    "opcode,a,b,expected",
    [
        ("add", 6, 7, 13),
        ("sub", 7, 6, 1),
        ("mul", 6, 7, 42),
        ("divu", 42, 6, 7),
        ("remu", 43, 6, 1),
        ("and", 12, 10, 8),
        ("or", 12, 10, 14),
        ("xor", 12, 10, 6),
        ("shl", 3, 2, 12),
        ("shr", 12, 2, 3),
        ("slt", 3, 5, 1),
        ("slt", 5, 3, 0),
        ("sltu", 3, 5, 1),
    ],
)
def test_three_register_alu(opcode, a, b, expected):
    expect_prints(
        ".thread t\n    li r1, %d\n    li r2, %d\n    %s r3, r1, r2\n"
        "    sys_print r3\n    halt\n" % (a, b, opcode),
        [expected],
    )


@pytest.mark.parametrize(
    "opcode,a,imm,expected",
    [
        ("addi", 6, 7, 13),
        ("subi", 7, 6, 1),
        ("muli", 6, 7, 42),
        ("andi", 12, 10, 8),
        ("ori", 12, 10, 14),
        ("xori", 12, 10, 6),
        ("shli", 3, 2, 12),
        ("shri", 12, 2, 3),
        ("slti", 3, 5, 1),
    ],
)
def test_immediate_alu(opcode, a, imm, expected):
    expect_prints(
        ".thread t\n    li r1, %d\n    %s r3, r1, %d\n    sys_print r3\n    halt\n"
        % (a, opcode, imm),
        [expected],
    )


class TestMemoryOpcodes:
    def test_load_store_symbolic(self):
        expect_prints(
            ".data\nx: .word 11\n.thread t\n    load r1, [x]\n    addi r1, r1, 1\n"
            "    store r1, [x]\n    load r2, [x]\n    sys_print r2\n    halt\n",
            [12],
        )

    def test_register_indirect_with_offset(self):
        expect_prints(
            ".data\narr: .word 5, 6, 7\n.thread t\n    li r1, arr\n"
            "    load r2, [r1+2]\n    sys_print r2\n    halt\n",
            [7],
        )

    def test_negative_offset(self):
        expect_prints(
            ".data\narr: .word 5, 6, 7\n.thread t\n    li r1, arr\n"
            "    addi r1, r1, 2\n    load r2, [r1-1]\n    sys_print r2\n    halt\n",
            [6],
        )


@pytest.mark.parametrize(
    "branch,a,b,taken",
    [
        ("beq", 5, 5, True),
        ("beq", 5, 6, False),
        ("bne", 5, 6, True),
        ("bne", 5, 5, False),
        ("blt", 3, 5, True),
        ("blt", 5, 3, False),
        ("bge", 5, 3, True),
        ("bge", 3, 5, False),
    ],
)
def test_two_register_branches(branch, a, b, taken):
    expect_prints(
        ".thread t\n    li r1, %d\n    li r2, %d\n    %s r1, r2, yes\n"
        "    sys_print r0\n    halt\nyes:\n    li r3, 1\n    sys_print r3\n"
        "    halt\n" % (a, b, branch),
        [1] if taken else [0],
    )


@pytest.mark.parametrize(
    "branch,a,taken",
    [("beqz", 0, True), ("beqz", 7, False), ("bnez", 7, True), ("bnez", 0, False)],
)
def test_zero_branches(branch, a, taken):
    expect_prints(
        ".thread t\n    li r1, %d\n    %s r1, yes\n    sys_print r0\n    halt\n"
        "yes:\n    li r3, 1\n    sys_print r3\n    halt\n" % (a, branch),
        [1] if taken else [0],
    )


class TestControlFlow:
    def test_jmp(self):
        expect_prints(
            ".thread t\n    jmp end\n    li r1, 99\nend:\n    sys_print r1\n    halt\n",
            [0],
        )

    def test_backward_branch_loop(self):
        expect_prints(
            ".thread t\n    li r1, 4\n    li r2, 0\nloop:\n    add r2, r2, r1\n"
            "    subi r1, r1, 1\n    bnez r1, loop\n    sys_print r2\n    halt\n",
            [10],
        )


class TestSyncOpcodes:
    def test_lock_unlock_word_values(self):
        expect_prints(
            ".data\nm: .word 0\n.thread t\n    lock [m]\n    load r1, [m]\n"
            "    unlock [m]\n    load r2, [m]\n    sys_print r1\n    sys_print r2\n"
            "    halt\n",
            [1, 0],
        )

    def test_atom_add(self):
        expect_prints(
            ".data\nc: .word 5\n.thread t\n    li r1, 3\n    atom_add r2, [c], r1\n"
            "    load r3, [c]\n    sys_print r2\n    sys_print r3\n    halt\n",
            [5, 8],
        )

    def test_atom_xchg(self):
        expect_prints(
            ".data\nc: .word 5\n.thread t\n    li r1, 3\n    atom_xchg r2, [c], r1\n"
            "    load r3, [c]\n    sys_print r2\n    sys_print r3\n    halt\n",
            [5, 3],
        )

    def test_cas_success(self):
        expect_prints(
            ".data\nc: .word 5\n.thread t\n    li r1, 5\n    li r2, 9\n"
            "    cas r3, [c], r1, r2\n    load r4, [c]\n    sys_print r3\n"
            "    sys_print r4\n    halt\n",
            [5, 9],
        )

    def test_cas_failure(self):
        expect_prints(
            ".data\nc: .word 5\n.thread t\n    li r1, 4\n    li r2, 9\n"
            "    cas r3, [c], r1, r2\n    load r4, [c]\n    sys_print r3\n"
            "    sys_print r4\n    halt\n",
            [5, 5],
        )

    def test_fence_is_a_noop_for_state(self):
        expect_prints(
            ".thread t\n    li r1, 7\n    fence\n    sys_print r1\n    halt\n",
            [7],
        )


class TestSyscallOpcodes:
    def test_getpid(self):
        from repro.vm.syscalls import Syscalls

        expect_prints(
            ".thread t\n    sys_getpid r1\n    sys_print r1\n    halt\n",
            [Syscalls.PROCESS_ID],
        )

    def test_time_is_monotone(self):
        program, result = run_and_crosscheck(
            ".thread t\n    sys_time r1\n    nop\n    sys_time r2\n"
            "    sltu r3, r1, r2\n    sys_print r3\n    halt\n"
        )
        assert result.output == [("t", 1)]

    def test_alloc_free_roundtrip(self):
        run_and_crosscheck(
            ".thread t\n    li r1, 4\n    sys_alloc r2, r1\n    li r3, 9\n"
            "    store r3, [r2+1]\n    load r4, [r2+1]\n    sys_free r2\n    halt\n"
        )

    def test_yield_keeps_state(self):
        expect_prints(
            ".thread t\n    li r1, 5\n    sys_yield\n    sys_print r1\n    halt\n",
            [5],
        )

    def test_nop_and_halt(self):
        program, result = run_and_crosscheck(".thread t\n    nop\n    nop\n    halt\n")
        assert result.threads["t"].steps == 3
