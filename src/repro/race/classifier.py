"""Replay-both-orders classification of race instances (Section 4).

For every race instance the classifier:

1. locates the two sequencing regions containing the racing operations;
2. takes the live-in snapshot (memory image + freed heap ranges) from the
   region-ordered replay, plus both threads' live-in registers;
3. replays both regions in a :class:`VirtualProcessor` twice — once per
   order of the racing pair;
4. compares live-outs: identical → ``NO_STATE_CHANGE``; different →
   ``STATE_CHANGE``; a replay that leaves the recorded envelope →
   ``REPLAY_FAILURE``.

Two redundancy-elimination optimisations (both on by default, both
verified byte-identical to the naive path by the engine equivalence
tests) make step 3 cheap:

* **recorded-original synthesis** — the original-order replay follows the
  log throughout, so it *is* the recording; when the regions replayed
  cleanly (no fault-truncated recording, within the step limit) its
  live-out is assembled directly from the per-thread replay instead of
  re-interpreted instruction by instruction;
* **prefix fast-forward** — the alternative-order replay follows the log
  up to the racing pair, so its prefix state (registers at the racing op,
  load seeds, stores) is likewise taken from the recording and only the
  divergent window — the racing pair and the region suffixes — executes
  live in the virtual processor.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.program import Program
from ..record.log import ReplayLog
from ..replay.errors import ReplayFailure, ReplayFailureKind
from ..replay.events import ReplayedAccess
from ..replay.ordered_replay import OrderedReplay
from ..replay.regions import SequencingRegion
from ..replay.virtual_processor import (
    VPConfig,
    VPOutcome,
    VPThreadSpec,
    VirtualProcessor,
    same_state,
)
from .model import RaceAccess, RaceInstance
from .outcomes import ClassifiedInstance, InstanceOutcome


@dataclass
class ClassifierConfig:
    """Knobs for the replay-both-orders classifier.

    ``allow_unrecorded_control_flow`` enables the paper's stated future-work
    extension (§4.2.1: "we are looking at trying to log enough information
    to allow replay to continue"); with it on, alternative-order replays
    continue through control flow the recording never saw instead of
    failing — the A2 ablation measures what this buys.

    ``reuse_recorded_original`` and ``fast_forward_prefix`` gate the
    redundancy-elimination fast paths (see the module docstring).  They
    change no verdict — the engine equivalence tests assert byte-identical
    results — and exist as flags so the naive path stays available as the
    reference for those tests and for A/B benchmarking.
    """

    step_limit: int = 20_000
    allow_unrecorded_control_flow: bool = False
    allow_unknown_addresses: bool = False
    store_replay_outcomes: bool = False
    reuse_recorded_original: bool = True
    fast_forward_prefix: bool = True
    detect_spin_cycles: bool = True

    def vp_config(self) -> VPConfig:
        return VPConfig(
            step_limit=self.step_limit,
            allow_unrecorded_control_flow=self.allow_unrecorded_control_flow,
            allow_unknown_addresses=self.allow_unknown_addresses,
            detect_spin_cycles=self.detect_spin_cycles,
        )


@dataclass
class _RecordedSide:
    """One thread's recorded-region live-out, for original synthesis."""

    name: str
    registers: Tuple[int, ...]
    end_pc: int
    steps: int
    executed: Tuple
    prefix_writes: Tuple[ReplayedAccess, ...]
    racing_write: Optional[ReplayedAccess]
    suffix_writes: Tuple[ReplayedAccess, ...]
    racing_value: int


class RaceClassifier:
    """Classifies race instances found in one replayed execution."""

    def __init__(
        self,
        ordered: OrderedReplay,
        config: Optional[ClassifierConfig] = None,
        execution_id: str = "",
    ):
        self.ordered = ordered
        self.program: Program = ordered.program
        self.log: ReplayLog = ordered.log
        self.config = config or ClassifierConfig()
        self.execution_id = execution_id
        #: Perf counters read by analysis.perf / the engine.
        self.vp_runs = 0
        self.originals_synthesized = 0
        self.prefixes_fast_forwarded = 0
        # Per-thread / per-region caches shared across instances.
        self._footprints: Dict[str, set] = {}
        self._recorded_loads: Dict[
            Tuple[int, int], Dict[int, Tuple[int, int]]
        ] = {}
        # _RecordedSide building blocks, cached per region: with hundreds
        # of instances per region pair, re-walking the region's accesses
        # and static ids for every instance dominates synthesis cost.
        self._region_writes: Dict[
            Tuple[int, int], Tuple[Tuple[int, ...], Tuple[ReplayedAccess, ...]]
        ] = {}
        self._region_end_states: Dict[
            Tuple[int, int], Optional[Tuple[Tuple[int, ...], int]]
        ] = {}
        self._region_executed: Dict[Tuple[int, int], Tuple] = {}

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def classify_instance(self, instance: RaceInstance) -> ClassifiedInstance:
        """Run the both-orders replay analysis on one race instance."""
        instance = self._canonicalize(instance)
        live_in, freed = self.ordered.pair_snapshot(
            instance.region_a, instance.region_b
        )
        return self._classify_with_state(instance, live_in, freed)

    def classify_all(self, instances: List[RaceInstance]) -> List[ClassifiedInstance]:
        """Classify every instance (the paper's full §5 analysis pass)."""
        return [self.classify_instance(instance) for instance in instances]

    def collect_perf(self, stats) -> None:
        """Fold this classifier's counters into a :class:`PerfStats`.

        Subclasses with extra counters (the engine's batching classifier)
        extend this, so the pipeline harvests uniformly.
        """
        stats.vp_runs += self.vp_runs
        stats.originals_synthesized += self.originals_synthesized
        stats.prefixes_fast_forwarded += self.prefixes_fast_forwarded

    def replay_pair(
        self, instance: RaceInstance
    ) -> Tuple[VPOutcome, VPOutcome]:
        """Run and *return* both replays (for reports/debugging).

        Unlike :meth:`classify_instance`, replay failures propagate to the
        caller as :class:`ReplayFailure`.
        """
        instance = self._canonicalize(instance)
        live_in, freed = self.ordered.pair_snapshot(
            instance.region_a, instance.region_b
        )
        spec_a = self._thread_spec(instance.access_a, instance.region_a)
        spec_b = self._thread_spec(instance.access_b, instance.region_b)
        processor = VirtualProcessor(
            self.program, live_in, freed, spec_a, spec_b, self.config.vp_config()
        )
        original_first = self._original_first(instance)
        alternative_first = (
            instance.access_b.thread_name
            if original_first == instance.access_a.thread_name
            else instance.access_a.thread_name
        )
        return (
            processor.run(first=original_first, follow_log=True),
            processor.run(first=alternative_first),
        )

    # ------------------------------------------------------------------
    # The per-instance analysis, with an injectable live-in state (the
    # engine's memoizing classifier wraps this entry point).
    # ------------------------------------------------------------------

    def batch_processor(
        self,
        instance: RaceInstance,
        live_in: Dict[int, int],
        freed: Dict[int, int],
    ) -> VirtualProcessor:
        """A processor for ``instance``, reusable across a batch.

        The engine's batched classifier builds one per batch (from the
        first member that actually replays) and rebinds it for fallback
        members — the specs, and the seeded prefix image derived from
        them, are a function of the batch's structural key, not of the
        member.
        """
        spec_a = self._thread_spec(instance.access_a, instance.region_a)
        spec_b = self._thread_spec(instance.access_b, instance.region_b)
        return VirtualProcessor(
            self.program, live_in, freed, spec_a, spec_b, self.config.vp_config()
        )

    def _classify_with_state(
        self,
        instance: RaceInstance,
        live_in: Dict[int, int],
        freed: Dict[int, int],
        processor: Optional[VirtualProcessor] = None,
    ) -> ClassifiedInstance:
        if processor is None:
            processor = self.batch_processor(instance, live_in, freed)
        spec_a, spec_b = processor.spec_a, processor.spec_b
        if spec_a.racing_registers is not None and spec_b.racing_registers is not None:
            self.prefixes_fast_forwarded += 1
        original_first = self._original_first(instance)
        alternative_first = (
            instance.access_b.thread_name
            if original_first == instance.access_a.thread_name
            else instance.access_a.thread_name
        )
        pre_value = live_in.get(instance.address, 0)

        try:
            # The original-order replay follows the log throughout — it is
            # the recording, reproduced exactly.  When the recording of
            # both regions is complete, its live-out is assembled from the
            # per-thread replays; otherwise (fault-truncated recording,
            # over-limit region) it is re-executed as in the paper.  The
            # alternative replay follows the log up to the racing pair,
            # flips the pair, and runs live from there.
            original = None
            if self.config.reuse_recorded_original:
                original = self._synthesized_original(instance, original_first)
            if original is None:
                original = processor.run(first=original_first, follow_log=True)
                self.vp_runs += 1
            else:
                self.originals_synthesized += 1
            alternative = processor.run(first=alternative_first)
            self.vp_runs += 1
            identical = same_state(original, alternative, live_in)
        except ReplayFailure as failure:
            return ClassifiedInstance(
                instance=instance,
                outcome=InstanceOutcome.REPLAY_FAILURE,
                original_first=original_first,
                pre_value=pre_value,
                failure_kind=failure.kind,
                failure_detail=failure.detail,
                execution_id=self.execution_id,
            )
        return ClassifiedInstance(
            instance=instance,
            outcome=(
                InstanceOutcome.NO_STATE_CHANGE
                if identical
                else InstanceOutcome.STATE_CHANGE
            ),
            original_first=original_first,
            pre_value=pre_value,
            original_replay=original if self.config.store_replay_outcomes else None,
            alternative_replay=(
                alternative if self.config.store_replay_outcomes else None
            ),
            execution_id=self.execution_id,
        )

    # ------------------------------------------------------------------
    # Recorded-original synthesis.
    # ------------------------------------------------------------------

    def _region_end_state(
        self, access: RaceAccess, region: SequencingRegion
    ) -> Optional[Tuple[Tuple[int, ...], int]]:
        """``(registers, end pc)`` of the recorded region, cached per
        region; ``None`` when the recording is not provably complete."""
        key = (region.tid, region.index)
        if key in self._region_end_states:
            return self._region_end_states[key]
        start, end = region.start_step, region.end_step
        replay = self.ordered.thread_replays[access.thread_name]
        end_state: Optional[Tuple[Tuple[int, ...], int]]
        if region.end_kind == "thread_end":
            thread_end = self.log.threads[access.thread_name].end
            if thread_end is None or thread_end.reason == "fault":
                # The recording stopped mid-instruction: the replay would
                # run past the recorded envelope.  Fall back to the VP.
                end_state = None
            else:
                end_pc = (
                    replay.pcs[end - 1]  # halt: the VP stops *on* the halt
                    if thread_end.reason == "halt" and end - 1 >= start
                    else replay.final_pc
                )
                end_state = (replay.final_registers, end_pc)
        else:
            try:
                end_state = (
                    replay.region_end_registers[end],
                    replay.region_end_pcs[end],
                )
            except KeyError:
                end_state = None
        self._region_end_states[key] = end_state
        return end_state

    def _region_write_index(
        self, access: RaceAccess, region: SequencingRegion
    ) -> Tuple[Tuple[int, ...], Tuple[ReplayedAccess, ...]]:
        """The region's writes with their (sorted) thread steps, cached."""
        key = (region.tid, region.index)
        writes = self._region_writes.get(key)
        if writes is None:
            replay = self.ordered.thread_replays[access.thread_name]
            steps: List[int] = []
            accesses: List[ReplayedAccess] = []
            for recorded in replay.accesses_in_steps(
                region.start_step, region.end_step
            ):
                if recorded.is_write:
                    steps.append(recorded.thread_step)
                    accesses.append(recorded)
            writes = (tuple(steps), tuple(accesses))
            self._region_writes[key] = writes
        return writes

    def _recorded_side(
        self, access: RaceAccess, region: SequencingRegion
    ) -> Optional[_RecordedSide]:
        """The recorded live-out of one racing region, or ``None`` when the
        original-order replay is not provably the recording (see
        :meth:`_synthesized_original`).

        The per-instance work is two bisects: the region's end state,
        write list and executed static ids are shared by every instance in
        the region and cached on first use.
        """
        start, end = region.start_step, region.end_step
        if end - start > self.config.step_limit:
            return None  # the interpreter would fail with STEP_LIMIT
        end_state = self._region_end_state(access, region)
        if end_state is None:
            return None
        registers, end_pc = end_state
        key = (region.tid, region.index)
        executed = self._region_executed.get(key)
        if executed is None:
            replay = self.ordered.thread_replays[access.thread_name]
            executed = tuple(replay.static_ids[start:end])
            self._region_executed[key] = executed
        write_steps, writes = self._region_write_index(access, region)
        # One access per step, so the racing step matches at most one write.
        lo = bisect_left(write_steps, access.thread_step)
        hi = bisect_right(write_steps, access.thread_step)
        return _RecordedSide(
            name=access.thread_name,
            registers=registers,
            end_pc=end_pc,
            steps=end - start,
            executed=executed,
            prefix_writes=writes[:lo],
            racing_write=writes[lo] if hi > lo else None,
            suffix_writes=writes[hi:],
            racing_value=access.value,
        )

    def _synthesized_original(
        self, instance: RaceInstance, original_first: str
    ) -> Optional[VPOutcome]:
        """Assemble the original-order replay's live-out from the recording.

        Sound because the original-order replay takes every load from the
        log: its per-thread trajectories are exactly the recorded ones, so
        registers, end pcs, executed instructions and racing values can be
        read off the thread replays, and its dirty memory is the recorded
        writes applied in the virtual processor's canonical phase order
        (prefix A, prefix B, racing pair in recorded order, suffix A,
        suffix B).  Returns ``None`` — fall back to actually running the
        replay — whenever that argument does not hold: a region whose
        recording was truncated by a fault, or one over the step limit.
        """
        side_a = self._recorded_side(instance.access_a, instance.region_a)
        if side_a is None:
            return None
        side_b = self._recorded_side(instance.access_b, instance.region_b)
        if side_b is None:
            return None
        dirty: Dict[int, int] = {}
        for side in (side_a, side_b):
            for write in side.prefix_writes:
                dirty[write.address] = write.value
        racing_order = (
            (side_a, side_b)
            if original_first == instance.access_a.thread_name
            else (side_b, side_a)
        )
        for side in racing_order:
            if side.racing_write is not None:
                dirty[side.racing_write.address] = side.racing_write.value
        for side in (side_a, side_b):
            for write in side.suffix_writes:
                dirty[write.address] = write.value
        return VPOutcome(
            registers={side_a.name: side_a.registers, side_b.name: side_b.registers},
            dirty_memory=dirty,
            end_pcs={side_a.name: side_a.end_pc, side_b.name: side_b.end_pc},
            steps={side_a.name: side_a.steps, side_b.name: side_b.steps},
            executed={
                side_a.name: list(side_a.executed),
                side_b.name: list(side_b.executed),
            },
            racing_values={
                side_a.name: side_a.racing_value,
                side_b.name: side_b.racing_value,
            },
        )

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _canonicalize(self, instance: RaceInstance) -> RaceInstance:
        """Normalise side order so the verdict cannot depend on it.

        The virtual processor's canonical schedule (prefix A, prefix B,
        pair, suffix A, suffix B) is tied to the side labelling; pinning
        side A to the earlier-opening region makes classification a pure
        function of the unordered racing pair.
        """
        if (instance.region_b.start_ts, instance.region_b.tid) < (
            instance.region_a.start_ts,
            instance.region_a.tid,
        ):
            return RaceInstance(
                access_a=instance.access_b,
                access_b=instance.access_a,
                region_a=instance.region_b,
                region_b=instance.region_a,
            )
        return instance

    def _earlier_region(self, instance: RaceInstance) -> SequencingRegion:
        if (instance.region_a.start_ts, instance.region_a.tid) <= (
            instance.region_b.start_ts,
            instance.region_b.tid,
        ):
            return instance.region_a
        return instance.region_b

    def _pc_footprint(self, thread_name: str) -> set:
        footprint = self._footprints.get(thread_name)
        if footprint is None:
            footprint = set(self.log.threads[thread_name].pc_footprint)
            self._footprints[thread_name] = footprint
        return footprint

    def _region_recorded_loads(
        self, thread_name: str, region: SequencingRegion
    ) -> Dict[int, Tuple[int, int]]:
        key = (region.tid, region.index)
        recorded_loads = self._recorded_loads.get(key)
        if recorded_loads is None:
            replay = self.ordered.thread_replays[thread_name]
            recorded_loads = {}
            for recorded in replay.accesses_in_steps(
                region.start_step, region.end_step
            ):
                if not recorded.is_write and not recorded.is_sync:
                    recorded_loads[recorded.thread_step - region.start_step] = (
                        recorded.address,
                        recorded.value,
                    )
            self._recorded_loads[key] = recorded_loads
        return recorded_loads

    def _thread_spec(
        self, access: RaceAccess, region: SequencingRegion
    ) -> VPThreadSpec:
        thread_log = self.log.threads[access.thread_name]
        block = self.program.blocks[thread_log.block]
        replay = self.ordered.thread_replays[access.thread_name]
        racing_registers = racing_pc = None
        prefix_accesses = prefix_static_ids = None
        if self.config.fast_forward_prefix:
            racing_registers = replay.registers_at_step.get(access.thread_step)
            if racing_registers is not None:
                racing_pc = replay.pcs[access.thread_step]
                prefix_accesses = tuple(
                    replay.accesses_in_steps(region.start_step, access.thread_step)
                )
                prefix_static_ids = tuple(
                    replay.static_ids[region.start_step : access.thread_step]
                )
        return VPThreadSpec(
            thread_name=access.thread_name,
            block=block,
            start_pc=self.ordered.region_start_pc(region),
            registers=self.ordered.live_in_registers(region),
            racing_step_offset=access.thread_step - region.start_step,
            racing_static_id=access.static_id,
            pc_footprint=self._pc_footprint(access.thread_name),
            recorded_loads=self._region_recorded_loads(access.thread_name, region),
            racing_registers=racing_registers,
            racing_pc=racing_pc,
            prefix_accesses=prefix_accesses,
            prefix_static_ids=prefix_static_ids,
        )

    def _original_first(self, instance: RaceInstance) -> str:
        """Which racing operation came first in the recorded execution.

        Exact when the log carries the (debug-only) global order; otherwise
        falls back to the earlier-opening-region heuristic, which is the
        best a pure iDNA-style log can do.
        """
        position_a = self.log.global_position(
            instance.access_a.tid, instance.access_a.thread_step
        )
        position_b = self.log.global_position(
            instance.access_b.tid, instance.access_b.thread_step
        )
        if position_a is not None and position_b is not None:
            return (
                instance.access_a.thread_name
                if position_a < position_b
                else instance.access_b.thread_name
            )
        return self._earlier_region(instance).thread_name
