"""Command-line interface: the tool a developer would actually run.

Mirrors the paper's usage model as subcommands::

    python -m repro record  prog.asm -o run.replay.bin --seed 7
    python -m repro replay  run.replay.bin
    python -m repro detect  run.replay.bin --perf
    python -m repro classify run.replay.bin --suppressions triage.json
    python -m repro analyze run.replay.bin --export-verdicts v.json
    python -m repro mark-benign run.replay.bin --race 'blk:3|blk:5' ...
    python -m repro suite                       # the paper-suite tables
    python -m repro experiment table1           # one experiment by id
    python -m repro serve --port 8422           # long-lived analysis service
    python -m repro submit run.replay.bin       # ship a log to the service

``record`` runs an assembly program under a seeded scheduler and writes a
self-contained replay log — the versioned binary container by default, or
the legacy JSON document when the destination ends in ``.json``; every
log-reading subcommand auto-detects the format.  ``classify`` is the full
offline analysis: happens-before detection plus the replay-both-orders
classification, with a prioritized triage report on stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.experiments import (
    EXPERIMENTS,
    run_ablation_continue,
    run_ablation_detectors,
    run_ablation_instances,
    run_figure3,
    run_figure4,
    run_figure5,
    run_sec51,
    run_suite,
    run_table1,
    run_table2,
)
from .analysis.pipeline import analyze_suite
from .isa.assembler import assemble
from .race.classifier import ClassifierConfig, RaceClassifier
from .race.happens_before import find_races
from .race.suppression import SuppressionDB
from .record.compression import compression_stats
from .record.metrics import log_metrics
from .record.recorder import record_run
from .record.serialization import load_log, save_log
from .replay.ordered_replay import OrderedReplay
from .vm.scheduler import RandomScheduler, RoundRobinScheduler


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: an integer >= 1, rejected loudly."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected an integer >= 1, got %r" % text
        )
    if value < 1:
        raise argparse.ArgumentTypeError(
            "expected an integer >= 1, got %r" % text
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Replay-based data race classification (PLDI 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run a program under recording")
    record.add_argument("program", type=Path, help="assembly source file")
    record.add_argument("-o", "--output", type=Path, help="replay log destination")
    record.add_argument("--seed", type=int, default=0, help="scheduler/RNG seed")
    record.add_argument(
        "--scheduler",
        choices=("random", "round-robin"),
        default="random",
        help="scheduling policy for the recorded run",
    )
    record.add_argument(
        "--switch-probability",
        type=float,
        default=0.3,
        help="preemption probability for the random scheduler",
    )
    record.add_argument(
        "--perf",
        action="store_true",
        help="print the record-stage breakdown (steps, events, elisions)",
    )
    record.add_argument(
        "--no-fast-path",
        action="store_true",
        help="record through the generic reference interpreter",
    )
    record.add_argument(
        "--segment-bytes",
        type=int,
        default=None,
        metavar="N",
        help="stream the recording into a v4 segmented container, sealing "
        "a segment every ~N payload bytes (bounds recorder memory and "
        "lets detect/analyze --stream start before the run ends)",
    )

    replay = sub.add_parser("replay", help="replay a log and verify it")
    replay.add_argument("log", type=Path, help="replay log file")
    replay.add_argument(
        "--perf",
        action="store_true",
        help="print the replay-stage breakdown (fast/generic threads, laziness)",
    )
    replay.add_argument(
        "--no-fast-path",
        action="store_true",
        help="replay through the generic reference interpreter",
    )

    detect = sub.add_parser("detect", help="happens-before race detection")
    detect.add_argument("log", type=Path, help="replay log file")
    detect.add_argument(
        "--perf",
        action="store_true",
        help="print the detect-stage breakdown (index/sweep time, pair pruning)",
    )
    detect.add_argument(
        "--naive",
        action="store_true",
        help="use the retained quadratic reference detector instead of the sweep line",
    )
    detect_path = detect.add_mutually_exclusive_group()
    detect_path.add_argument(
        "--from-log",
        action="store_true",
        help="require the zero-replay path (error if the log has no "
        "captured columns; default picks it automatically when available)",
    )
    detect_path.add_argument(
        "--full-replay",
        action="store_true",
        help="force the historical ordered-replay path",
    )
    detect_path.add_argument(
        "--stream",
        action="store_true",
        help="detect segment by segment with bounded resident state "
        "(requires captured columns; race set is identical to batch)",
    )
    detect.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes for the detection sweep (default: 1, serial); "
        "above 1 fans v4 segments across a process pool — needs a log "
        "recorded with --segment-bytes, race set is identical to serial; "
        "incompatible with --stream",
    )

    classify = sub.add_parser(
        "classify", help="detect + classify races, print the triage report"
    )
    classify.add_argument("log", type=Path, help="replay log file")
    classify.add_argument(
        "--from-log",
        action="store_true",
        help="require the zero-replay detect stage (classification still "
        "replays; error if the log has no captured columns)",
    )
    classify.add_argument(
        "--suppressions", type=Path, help="suppression database (JSON)"
    )
    classify.add_argument(
        "--database",
        type=Path,
        help="persistent race database to accumulate into (JSON)",
    )
    classify.add_argument(
        "--continue-through-control-flow",
        action="store_true",
        help="enable the paper's §4.2.1 replay-continuation extension",
    )
    classify.add_argument(
        "--json",
        type=Path,
        dest="json_output",
        help="also write machine-readable results to this file",
    )

    analyze = sub.add_parser(
        "analyze",
        help="engine-based analysis of a recorded log (batched classification, "
        "verdict memoization, incremental re-analysis)",
    )
    analyze.add_argument("log", type=Path, help="replay log file")
    analyze.add_argument(
        "--no-batching",
        action="store_true",
        help="classify every instance individually (the pre-batching engine)",
    )
    analyze.add_argument(
        "--no-memoize",
        action="store_true",
        help="disable verdict memoization entirely (implies no batching)",
    )
    analyze.add_argument(
        "--incremental-from",
        type=Path,
        dest="incremental_from",
        help="splice verdicts from a prior run: a verdict index JSON "
        "(from --export-verdicts) or a prior replay log to analyse first",
    )
    analyze.add_argument(
        "--export-verdicts",
        type=Path,
        dest="export_verdicts",
        help="write this run's portable verdict index to a JSON file",
    )
    analyze.add_argument(
        "--json",
        type=Path,
        dest="json_output",
        help="write the canonical report to this file instead of stdout",
    )
    analyze.add_argument(
        "--perf",
        action="store_true",
        help="print per-stage timings, batching and splice counters "
        "(to stderr when the report goes to stdout)",
    )
    analyze.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cache directory for the persisted per-program verdict index",
    )
    analyze.add_argument(
        "--stream",
        action="store_true",
        help="stream detection segment by segment and classify each sealed "
        "window eagerly (first verdicts land before the sweep finishes; "
        "the final report is byte-identical to the batch path)",
    )
    analyze.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for the detection sweep (default: 1, serial); "
        "above 1 needs a v4 segmented log and fans segments across a "
        "process pool; classification itself stays in-process",
    )

    validate = sub.add_parser("validate", help="check a replay log's invariants")
    validate.add_argument("log", type=Path, help="replay log file")
    validate.add_argument(
        "--strict", action="store_true", help="exit non-zero on any issue"
    )

    inspect = sub.add_parser(
        "inspect", help="time-travel: show a thread's state around a step"
    )
    inspect.add_argument("log", type=Path, help="replay log file")
    inspect.add_argument("--thread", required=True, help="thread name")
    inspect.add_argument("--step", type=int, default=0, help="first step to show")
    inspect.add_argument("--count", type=int, default=10, help="steps to show")

    mark = sub.add_parser(
        "mark-benign", help="record a developer's benign verdict for a race"
    )
    mark.add_argument("log", type=Path, help="replay log file (for the program name)")
    mark.add_argument(
        "--race", required=True, help="static race key, e.g. 'blk:3|blk:5'"
    )
    mark.add_argument("--reason", default="", help="why the race is benign")
    mark.add_argument("--by", default="", help="who triaged it")
    mark.add_argument(
        "--suppressions",
        type=Path,
        required=True,
        help="suppression database to update (JSON, created if missing)",
    )

    suite = sub.add_parser(
        "suite", help="analyse the paper suite and print Table 1/2"
    )
    suite.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the classification engine (default 1)",
    )
    suite.add_argument(
        "--memoize",
        action="store_true",
        help="reuse verdicts of structurally identical race instances",
    )
    suite.add_argument(
        "--perf",
        action="store_true",
        help="print per-stage timings and engine statistics",
    )
    suite.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="content-addressed record cache directory (skips re-recording)",
    )
    suite.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and always re-record",
    )

    report = sub.add_parser(
        "report", help="write the full reproduction results document"
    )
    report.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path("RESULTS.md"),
        help="markdown destination (default RESULTS.md)",
    )
    report.add_argument(
        "--skip-overheads",
        action="store_true",
        help="omit the timing-sensitive Section 5.1 measurements",
    )

    compare = sub.add_parser(
        "compare", help="diff two exported result files (CI drift gate)"
    )
    compare.add_argument("baseline", type=Path, help="baseline results JSON")
    compare.add_argument("current", type=Path, help="current results JSON")
    compare.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero when new potentially-harmful races appear",
    )

    experiment = sub.add_parser("experiment", help="run one experiment by id")
    experiment.add_argument(
        "experiment_id", choices=sorted(EXPERIMENTS), help="experiment to run"
    )
    experiment.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for suite-based experiments (default 1)",
    )
    experiment.add_argument(
        "--memoize",
        action="store_true",
        help="reuse verdicts of structurally identical race instances",
    )
    experiment.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="content-addressed record cache directory (skips re-recording)",
    )

    serve = sub.add_parser(
        "serve", help="run the long-lived analysis service (HTTP API)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8422, help="bind port (0 = any)")
    serve.add_argument(
        "--pool-size",
        type=int,
        default=2,
        help="worker processes (0 = run jobs inline in the dispatch threads)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="queue shards (0 = one per worker); content-hash routed",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="bounded queue size; beyond this, submissions get 429",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=120.0,
        help="seconds one attempt may run before the worker is recycled",
    )
    serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="content-addressed record cache shared by all workers",
    )
    serve.add_argument(
        "--journal",
        type=Path,
        default=None,
        help="job journal (JSON lines); enables crash recovery on restart",
    )
    serve.add_argument(
        "--detect-jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for one job's detection sweep (default: 1, "
        "serial); above 1, detect-only and stream jobs on v4 segmented "
        "uploads fan segments across a per-job process pool",
    )
    serve.add_argument(
        "--fleet-dir",
        type=Path,
        default=None,
        help="fleet triage store directory: completed jobs' verdicts are "
        "absorbed into it and served from GET /races; sharable between "
        "several serve instances (advisory file lock)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="query and maintain the fleet triage store (GET /races offline)",
    )
    fleet.add_argument(
        "--store",
        type=Path,
        default=None,
        help="fleet store directory (the serve --fleet-dir path)",
    )
    fleet.add_argument(
        "--server",
        default=None,
        help="query a running service instead of opening --store directly "
        "(e.g. http://127.0.0.1:8422)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_report = fleet_sub.add_parser(
        "report", help="the ranked triage report (harmful first)"
    )
    fleet_report.add_argument(
        "--include-suppressed",
        action="store_true",
        help="list suppressed races too (flagged) instead of hiding them",
    )
    fleet_report.add_argument(
        "--limit", type=_positive_int, default=None, help="top N races only"
    )
    fleet_suppress = fleet_sub.add_parser(
        "suppress", help="persist a suppression rule for a race"
    )
    fleet_suppress.add_argument(
        "race", help="static race key, e.g. 'worker:3|worker:5'"
    )
    fleet_suppress.add_argument(
        "--digest",
        default="",
        help="region-content digest: narrows the rule to one content "
        "variant (default: suppress the whole static race)",
    )
    fleet_suppress.add_argument("--reason", default="", help="why (provenance)")
    fleet_suppress.add_argument("--by", default="", help="who (provenance)")
    fleet_suppress.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire the rule after this many seconds (default: never)",
    )
    fleet_sub.add_parser(
        "compact", help="fold the journal into the snapshot (store only)"
    )
    fleet_export = fleet_sub.add_parser(
        "export", help="write the store as a mergeable JSON document"
    )
    fleet_export.add_argument(
        "output", nargs="?", type=Path, default=None, help="file (default stdout)"
    )
    fleet_import = fleet_sub.add_parser(
        "import", help="merge another host's export into this store"
    )
    fleet_import.add_argument("document", type=Path, help="exported JSON file")
    fleet_absorb = fleet_sub.add_parser(
        "absorb", help="absorb a report JSON (classify --json / detect output)"
    )
    fleet_absorb.add_argument("report", type=Path, help="report document file")

    submit = sub.add_parser(
        "submit", help="submit a job to a running analysis service"
    )
    submit.add_argument(
        "--server",
        default="http://127.0.0.1:8422",
        help="service base URL (default http://127.0.0.1:8422)",
    )
    group = submit.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", help="suite workload name to record+analyse")
    group.add_argument(
        "log", nargs="?", type=Path, default=None, help="replay log file to upload"
    )
    submit.add_argument("--seed", type=int, default=0, help="workload seed")
    submit.add_argument(
        "--switch-probability",
        type=float,
        default=0.3,
        help="preemption probability for workload jobs",
    )
    submit.add_argument("--priority", type=int, default=0, help="queue priority")
    submit.add_argument(
        "--detect-only",
        action="store_true",
        help="stop after detection (no classification); v3 logs with "
        "captured columns run the zero-replay from-log detect path",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without polling for the report",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds to wait for completion (with polling)",
    )
    submit.add_argument(
        "--json",
        type=Path,
        dest="json_output",
        help="write the canonical report to this file instead of stdout",
    )

    return parser


def _make_scheduler(args):
    if args.scheduler == "round-robin":
        return RoundRobinScheduler()
    return RandomScheduler(seed=args.seed, switch_probability=args.switch_probability)


def _cmd_record(args, out) -> int:
    from .analysis.perf import PerfStats

    source = args.program.read_text()
    program = assemble(source, name=args.program.stem)
    perf = PerfStats()
    destination = args.output or args.program.with_suffix(".replay.bin")
    if args.segment_bytes is not None:
        if destination.suffix.lower() == ".json":
            raise ValueError(
                "--segment-bytes writes the v4 binary container; "
                "pick a non-.json destination"
            )
        from .record import record_run_segmented

        with perf.stage("record"):
            result, log = record_run_segmented(
                program,
                destination,
                scheduler=_make_scheduler(args),
                seed=args.seed,
                fast_path=not args.no_fast_path,
                segment_bytes=args.segment_bytes,
            )
    else:
        with perf.stage("record"):
            result, log = record_run(
                program,
                scheduler=_make_scheduler(args),
                seed=args.seed,
                fast_path=not args.no_fast_path,
            )
        save_log(log, destination)
    stats = compression_stats(log)
    print(result.summary(), file=out)
    print(
        "recorded %d instructions (%.2f bits/instr raw, %.2f compressed) -> %s"
        % (
            log.total_instructions,
            stats.raw_bits_per_instruction,
            stats.compressed_bits_per_instruction,
            destination,
        ),
        file=out,
    )
    if args.perf:
        perf.record_steps = log.total_instructions
        if log.captured is not None:
            perf.record_events = log.captured.total_events
            perf.record_predicted_loads = log.captured.predicted_loads
        print("", file=out)
        print(perf.render(), file=out)
    return 0


def _cmd_replay(args, out) -> int:
    from .analysis.perf import PerfStats

    log = load_log(args.log)
    perf = PerfStats()
    with perf.stage("replay"):
        ordered = OrderedReplay(
            log, fast_path=not args.no_fast_path, perf=perf
        )
        replayed = {
            name: ordered.thread_replays[name] for name in log.threads
        }
    metrics = log_metrics(log)
    print("replayed %s: %s" % (log.program_name, metrics.describe()), file=out)
    for name, replay in replayed.items():
        print("  thread %-16s %d steps replayed" % (name, replay.steps), file=out)
    output = ordered.output()
    if output:
        print("  output: %r" % output, file=out)
    if args.perf:
        print("", file=out)
        print(perf.render(), file=out)
    return 0


def _cmd_detect(args, out) -> int:
    from .analysis.perf import PerfStats
    from .analysis.pipeline import detect_only
    from .race.happens_before import NaiveHappensBeforeDetector

    if args.naive and (args.from_log or args.stream):
        raise ValueError(
            "--naive needs thread replays and cannot run on the zero-replay "
            "path; drop --naive or the --from-log/--stream flag"
        )
    # --jobs (at any value) picks the batch sweep; --stream picks the
    # segment-streaming path — they are different detectors, so naming
    # both is a contradiction even for --jobs 1.
    if args.jobs is not None and args.stream:
        raise ValueError(
            "--jobs and --stream are mutually exclusive; drop one of them"
        )
    jobs = args.jobs if args.jobs is not None else 1
    if jobs > 1 and (args.naive or args.from_log or args.full_replay):
        raise ValueError(
            "--jobs above 1 selects the parallel segment-fanout path and "
            "cannot be combined with an explicit path flag; drop --jobs or "
            "the --naive/--from-log/--full-replay flag"
        )
    perf = PerfStats()
    if args.naive:
        log = load_log(args.log)
        ordered = OrderedReplay(log)
        with perf.stage("detect"):
            detector = NaiveHappensBeforeDetector(ordered)
            instances = detector.detect()
        source = ordered
        path = "replay (naive reference)"
    else:
        if args.stream:
            mode = "stream"
        elif args.from_log:
            mode = "from-log"
        elif args.full_replay:
            mode = "replay"
        elif jobs > 1:
            # Explicitly parallel (not auto) so a container the fanout
            # cannot partition errors loudly instead of silently running
            # the serial sweep the user asked to spread out.
            mode = "parallel"
        else:
            mode = "auto"
        # The path (not its bytes) goes to the pipeline so the parallel
        # fanout can mmap segments in the workers without the parent ever
        # materializing the full log; serial modes read it themselves.
        analysis = detect_only(args.log, mode=mode, perf=perf, jobs=jobs)
        instances = analysis.instances
        source = analysis.source
        path = analysis.path
    unique = {instance.static_key for instance in instances}
    print(
        "%d race instance(s), %d unique static race(s)"
        % (len(instances), len(unique)),
        file=out,
    )
    for key in sorted(unique, key=lambda key: (str(key[0]), str(key[1]))):
        print(
            "  %s  <->  %s"
            % (
                source.program.describe_instruction(key[0]),
                source.program.describe_instruction(key[1]),
            ),
            file=out,
        )
    if args.perf:
        print("detect path: %s" % path, file=out)
        index_stats = source.access_index().stats()
        print(
            "access index: %d regions, %d accesses, %d addresses, %d writes"
            % (
                index_stats["regions"],
                index_stats["accesses"],
                index_stats["addresses"],
                index_stats["writes"],
            ),
            file=out,
        )
        print(perf.render(), file=out)
    return 0


def _cmd_classify(args, out) -> int:
    from .race.database import RaceDatabase
    from .race.triage import TriageSession

    log = load_log(args.log)
    ordered = OrderedReplay(log)
    if args.from_log:
        # Detect on the zero-replay view (errors cleanly when the log has
        # no captured columns); classification below still replays — the
        # both-orders virtual processor needs machine state.  Instances
        # are value-identical between the paths, so the verdicts are too.
        from .replay.log_view import LogView

        instances = find_races(LogView.from_log(log))
    else:
        instances = find_races(ordered)
    config = ClassifierConfig(
        allow_unrecorded_control_flow=args.continue_through_control_flow
    )
    classifier = RaceClassifier(ordered, config=config, execution_id=str(args.log))
    classified = classifier.classify_all(instances)

    suppressions = (
        SuppressionDB.load(args.suppressions)
        if args.suppressions and args.suppressions.exists()
        else SuppressionDB()
    )
    database = (
        RaceDatabase.load(args.database)
        if args.database and args.database.exists()
        else RaceDatabase()
    )
    session = TriageSession(suppressions=suppressions, database=database)
    outcome = session.process(ordered.program, log, classified)
    print(outcome.render(), file=out)
    if args.database:
        database.save(args.database)
        print("race database updated: %s" % args.database, file=out)
    if args.json_output:
        from .race.exporter import export_results

        export_results(
            args.json_output,
            outcome.results,
            ordered.program,
            log=log,
            suppressions=suppressions,
        )
        print("machine-readable results: %s" % args.json_output, file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    import json

    from .analysis.engine import ClassificationEngine, EngineConfig
    from .analysis.perf import PerfStats
    from .analysis.pipeline import execution_report, render_report

    if args.export_verdicts and args.no_memoize:
        raise ValueError(
            "--export-verdicts needs the verdict cache; drop --no-memoize"
        )
    if args.jobs > 1 and args.stream:
        raise ValueError(
            "--jobs parallelizes the batch detection sweep and cannot be "
            "combined with --stream; drop one of them"
        )
    config = EngineConfig(
        jobs=1,
        memoize=not args.no_memoize,
        batching=not args.no_batching,
        cache_dir=args.cache_dir,
    )
    engine = ClassificationEngine(config)
    prior = None
    if args.incremental_from is not None:
        if args.incremental_from.suffix == ".json":
            prior = json.loads(
                args.incremental_from.read_text(encoding="utf-8")
            )
        else:
            # A replay log: analyse it with a throwaway engine and splice
            # from its verdict index — "re-analyse against that old run".
            prior = ClassificationEngine(
                EngineConfig(jobs=1, memoize=True, batching=not args.no_batching)
            ).analyze_log(load_log(args.incremental_from))
    perf = PerfStats()
    detector_factory = None
    if args.jobs > 1:
        from .race.happens_before import ParallelFileDetector
        from .record.binary_format import MAGIC, is_segmented_log

        with open(args.log, "rb") as handle:
            head = handle.read(len(MAGIC) + 1)
        if not is_segmented_log(head):
            raise ValueError(
                "--jobs above 1 needs a v4 segmented container "
                "(record with --segment-bytes)"
            )
        jobs = args.jobs

        def detector_factory(ordered, max_pairs_per_location):
            return ParallelFileDetector(
                args.log, jobs, max_pairs_per_location, perf=perf
            )

    if args.stream:
        analysis = engine.analyze_log_stream(
            args.log.read_bytes(), perf=perf, prior=prior
        )
    else:
        analysis = engine.analyze_log(
            load_log(args.log),
            perf=perf,
            prior=prior,
            detector_factory=detector_factory,
        )
    report = render_report(execution_report(analysis))
    # Side-channel prints go to stderr when the report itself goes to
    # stdout: `repro analyze log > report.json` must stay byte-clean.
    notices = out if args.json_output else sys.stderr
    if args.json_output:
        args.json_output.write_bytes(report)
        print("report: %s" % args.json_output, file=out)
    else:
        out.write(report.decode("utf-8"))
    if args.export_verdicts:
        args.export_verdicts.write_text(
            json.dumps(analysis.verdict_index, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print("verdict index: %s" % args.export_verdicts, file=notices)
    if args.perf:
        print(perf.render(), file=notices)
    return 0


def _cmd_validate(args, out) -> int:
    from .record.validation import validate_log

    log = load_log(args.log)
    issues = validate_log(log)
    if not issues:
        print("%s: OK (%d threads, %d instructions)"
              % (args.log, len(log.threads), log.total_instructions), file=out)
        return 0
    for issue in issues:
        print("  - %s" % issue, file=out)
    print("%s: %d issue(s)" % (args.log, len(issues)), file=out)
    return 1 if args.strict else 0


def _cmd_inspect(args, out) -> int:
    from .replay.inspector import TimeTravelInspector

    log = load_log(args.log)
    ordered = OrderedReplay(log)
    if args.thread not in ordered.thread_replays:
        print(
            "no thread %r (have: %s)"
            % (args.thread, ", ".join(sorted(ordered.thread_replays))),
            file=out,
        )
        return 1
    inspector = TimeTravelInspector(ordered)
    for view in inspector.walk(args.thread, start=args.step, count=args.count):
        print(view.describe(), file=out)
    return 0


def _parse_race_key(text: str):
    from .race.model import static_key_from_text

    return static_key_from_text(text)


def _cmd_mark_benign(args, out) -> int:
    log = load_log(args.log)
    database = (
        SuppressionDB.load(args.suppressions)
        if args.suppressions.exists()
        else SuppressionDB()
    )
    key = _parse_race_key(args.race)
    database.mark_benign(log.program_name, key, reason=args.reason, triaged_by=args.by)
    database.save(args.suppressions)
    print(
        "marked %s benign for program %s (%d suppression(s) total)"
        % (args.race, log.program_name, len(database)),
        file=out,
    )
    return 0


def _cmd_report(args, out) -> int:
    from .analysis.report_writer import write_report

    write_report(args.output, include_overheads=not args.skip_overheads)
    print("wrote %s" % args.output, file=out)
    return 0


def _cmd_suite(args, out) -> int:
    from .analysis.perf import PerfStats
    from .analysis.statistics import corpus_statistics
    from .workloads.suite import paper_suite

    cache_dir = None if args.no_cache else args.cache_dir
    perf = PerfStats()
    suite = analyze_suite(
        paper_suite(),
        jobs=args.jobs,
        memoize=args.memoize,
        perf=perf,
        cache_dir=cache_dir,
    )
    print(corpus_statistics(suite).render(), file=out)
    print("", file=out)
    print(run_table1(suite).render(), file=out)
    print("", file=out)
    print(run_table2(suite).render(), file=out)
    if args.perf:
        print("", file=out)
        print(perf.render(), file=out)
    return 0


def _cmd_compare(args, out) -> int:
    from .analysis.compare import compare_files

    report = compare_files(args.baseline, args.current)
    print(report.render(), file=out)
    if args.gate and report.new_harmful:
        return 1
    return 0


def _cmd_experiment(args, out) -> int:
    experiment_id = args.experiment_id
    # Suite-based experiments share one engine-analysed suite so --jobs
    # and --memoize apply; sec51/ablation_continue time their own runs.
    suite = None
    if experiment_id in (
        "table1",
        "table2",
        "figure3",
        "figure4",
        "figure5",
        "ablation_detectors",
        "ablation_instances",
    ):
        suite = run_suite(
            jobs=args.jobs, memoize=args.memoize, cache_dir=args.cache_dir
        )
    if experiment_id == "table1":
        print(run_table1(suite).render(), file=out)
    elif experiment_id == "table2":
        print(run_table2(suite).render(), file=out)
    elif experiment_id == "figure3":
        print(run_figure3(suite).render(), file=out)
    elif experiment_id == "figure4":
        print(run_figure4(suite).render(), file=out)
    elif experiment_id == "figure5":
        print(run_figure5(suite).render(), file=out)
    elif experiment_id == "sec51":
        print(run_sec51().render(), file=out)
    elif experiment_id == "ablation_detectors":
        print(run_ablation_detectors(suite).render(), file=out)
    elif experiment_id == "ablation_continue":
        print(run_ablation_continue().render(), file=out)
    elif experiment_id == "ablation_instances":
        print(run_ablation_instances(suite).render(), file=out)
    else:  # pragma: no cover - argparse choices gate this
        raise ValueError(experiment_id)
    return 0


def _cmd_serve(args, out) -> int:
    from .service import ServiceConfig
    from .service.http import serve_forever

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        pool_size=args.pool_size,
        shards=args.shards,
        queue_capacity=args.queue_capacity,
        job_timeout_s=args.job_timeout,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
        journal_path=str(args.journal) if args.journal else None,
        detect_jobs=args.detect_jobs,
        fleet_dir=str(args.fleet_dir) if args.fleet_dir else None,
    )
    return serve_forever(config, out=out)


def _cmd_fleet(args, out) -> int:
    if args.server and args.store:
        raise ValueError("--server and --store are mutually exclusive; pick one")
    if args.server:
        return _cmd_fleet_remote(args, out)
    if args.store is None:
        raise ValueError("fleet needs a store: pass --store DIR or --server URL")

    import hashlib
    import json
    import time

    from .fleet import FleetStore, SuppressionRule
    from .race.model import static_key_from_text

    store = FleetStore.open(args.store)
    command = args.fleet_command
    if command == "report":
        out.write(
            store.report_bytes(
                include_suppressed=args.include_suppressed,
                limit=args.limit,
                now=time.time(),
            ).decode("utf-8")
        )
    elif command == "suppress":
        static_key_from_text(args.race)  # validate the key shape up front
        now = time.time()
        rule = SuppressionRule(
            scope="exact" if args.digest else "race",
            race=args.race,
            digest=args.digest,
            reason=args.reason,
            created_by=args.by,
            created_at=round(now, 3),
            expires_at=round(now + args.ttl, 3) if args.ttl is not None else None,
        )
        rule_id = store.suppress(rule)
        print(
            "suppressed %s (%s scope) as rule %s"
            % (args.race, rule.scope, rule_id),
            file=out,
        )
    elif command == "compact":
        size = store.compact()
        print("compacted %s: snapshot %d bytes" % (args.store, size), file=out)
    elif command == "export":
        body = (
            json.dumps(store.export_document(), indent=2, sort_keys=True) + "\n"
        )
        if args.output is not None:
            args.output.write_text(body)
            print("exported fleet store to %s" % args.output, file=out)
        else:
            out.write(body)
    elif command == "import":
        store.import_document(json.loads(args.document.read_text()))
        counts = store.counts()
        print(
            "imported %s: now %d unique race(s) over %d absorbed job(s)"
            % (args.document, counts["unique_races"], counts["absorbed_jobs"]),
            file=out,
        )
    elif command == "absorb":
        data = args.report.read_bytes()
        outcome = store.absorb_report(
            json.loads(data.decode("utf-8")),
            hashlib.sha256(data).hexdigest(),
            observed_at=round(time.time(), 3),
        )
        if outcome.absorbed:
            print(
                "absorbed %s: %d new record(s), %d updated"
                % (args.report, outcome.new_records, outcome.updated_records),
                file=out,
            )
        else:
            print("already absorbed %s (duplicate)" % args.report, file=out)
    else:  # pragma: no cover - argparse required=True gates this
        raise ValueError(command)
    return 0


def _cmd_fleet_remote(args, out) -> int:
    """Fleet verbs that make sense against a running service."""
    from .service.client import ServiceClient

    client = ServiceClient(args.server)
    command = args.fleet_command
    if command == "report":
        out.write(
            client.races_bytes(
                include_suppressed=args.include_suppressed, limit=args.limit
            ).decode("utf-8")
        )
        return 0
    if command == "suppress":
        rule_id = client.suppress(
            args.race,
            digest=args.digest,
            reason=args.reason,
            by=args.by,
            ttl_s=args.ttl,
        )
        print("suppressed %s as rule %s" % (args.race, rule_id), file=out)
        return 0
    raise ValueError(
        "fleet %s operates on a local store; pass --store DIR instead of "
        "--server" % command
    )


def _cmd_submit(args, out) -> int:
    from .service.client import QueueFullError, ServiceClient

    client = ServiceClient(args.server)
    mode = "detect" if args.detect_only else "full"
    try:
        if args.workload:
            job = client.submit_workload(
                args.workload,
                seed=args.seed,
                switch_probability=args.switch_probability,
                priority=args.priority,
                mode=mode,
            )
        else:
            job = client.submit_log_file(
                args.log, priority=args.priority, mode=mode
            )
    except QueueFullError as error:
        print("error: service overloaded (429): %s" % error, file=sys.stderr)
        return 2
    print(
        "job %s %s%s"
        % (job.job_id, job.state, "" if job.created else " (already submitted)"),
        file=out,
    )
    if args.no_wait:
        return 0
    done = client.wait(job.job_id, timeout_s=args.timeout)
    report = client.report_bytes(job.job_id)
    if args.json_output:
        args.json_output.write_bytes(report)
        print(
            "report (%.3fs analysis): %s"
            % (done.elapsed_s or 0.0, args.json_output),
            file=out,
        )
    else:
        out.write(report.decode("utf-8"))
    return 0


_COMMANDS = {
    "record": _cmd_record,
    "replay": _cmd_replay,
    "detect": _cmd_detect,
    "classify": _cmd_classify,
    "analyze": _cmd_analyze,
    "validate": _cmd_validate,
    "inspect": _cmd_inspect,
    "mark-benign": _cmd_mark_benign,
    "suite": _cmd_suite,
    "report": _cmd_report,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "fleet": _cmd_fleet,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    Pipeline errors (bad source, corrupt or missing logs, VM faults,
    service failures) exit nonzero with a one-line message rather than a
    traceback, and ``KeyboardInterrupt`` exits with the conventional
    ``128 + SIGINT`` — both matter once ``repro serve`` runs under a
    supervisor that restarts on crash and signals on shutdown.
    """
    from .isa.errors import IsaError
    from .record.validation import InvalidLogError
    from .replay.errors import ReplayError
    from .vm.errors import VMError

    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (IsaError, VMError, ReplayError, InvalidLogError, OSError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
