"""Experiment harness: pipeline, tables, figures, overheads, registry."""

from .access_index import AccessIndex, build_access_index
from .experiments import (
    EXPERIMENTS,
    ContinueAblation,
    DetectorComparison,
    ExperimentSpec,
    InstanceSweep,
    run_ablation_continue,
    run_ablation_detectors,
    run_ablation_instances,
    run_figure3,
    run_figure4,
    run_figure5,
    run_sec51,
    run_suite,
    run_table1,
    run_table2,
)
from .engine import (
    ClassificationEngine,
    EngineConfig,
    MemoizingClassifier,
    TrackingImage,
    VerdictCache,
)
from .figures import FigurePoint, FigureSeries, build_figure3, build_figure4, build_figure5
from .overheads import OverheadReport, measure_overheads
from .perf import PerfStats
from .compare import Drift, DriftReport, compare_documents, compare_files
from .report_writer import write_report
from .statistics import CorpusStats, ExecutionStats, corpus_statistics, execution_statistics
from .sweep import SeedCoveragePoint, SeedSweep, seed_coverage
from .pipeline import (
    ExecutionAnalysis,
    SuiteAnalysis,
    analyze_execution,
    analyze_suite,
)
from .tables import Table1, Table1Row, Table2, build_table1, build_table2

__all__ = [
    "AccessIndex",
    "build_access_index",
    "ClassificationEngine",
    "EngineConfig",
    "MemoizingClassifier",
    "PerfStats",
    "TrackingImage",
    "VerdictCache",
    "EXPERIMENTS",
    "ContinueAblation",
    "DetectorComparison",
    "ExperimentSpec",
    "InstanceSweep",
    "run_ablation_continue",
    "run_ablation_detectors",
    "run_ablation_instances",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_sec51",
    "run_suite",
    "run_table1",
    "run_table2",
    "FigurePoint",
    "FigureSeries",
    "build_figure3",
    "build_figure4",
    "build_figure5",
    "OverheadReport",
    "measure_overheads",
    "ExecutionAnalysis",
    "SuiteAnalysis",
    "analyze_execution",
    "analyze_suite",
    "SeedCoveragePoint",
    "SeedSweep",
    "seed_coverage",
    "write_report",
    "Drift",
    "DriftReport",
    "compare_documents",
    "compare_files",
    "CorpusStats",
    "ExecutionStats",
    "corpus_statistics",
    "execution_statistics",
    "Table1",
    "Table1Row",
    "Table2",
    "build_table1",
    "build_table2",
]
