"""Machine-readable export of classification results.

Race reports ultimately feed other tooling — bug trackers, dashboards,
the paper's triage queues.  This module serialises a full analysis round
(per-race verdicts, outcome counts, scenarios, suggested reasons,
suppression state) to a stable JSON schema, and the CLI exposes it via
``classify --json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..isa.program import Program
from ..record.log import ReplayLog
from .aggregate import StaticRaceResult
from .heuristics import categorize
from .model import StaticRaceKey, static_key_to_text as _key_text
from .outcomes import InstanceOutcome
from .suppression import SuppressionDB

EXPORT_VERSION = 1


def result_to_json(
    result: StaticRaceResult,
    program: Program,
    suppressed: bool = False,
    max_scenarios: int = 2,
    batch_key_for=None,
) -> Dict:
    """One unique race's verdict as a JSON-compatible dict.

    ``batch_key_for(entry)``, when given, computes a harmful scenario's
    content-dedup batch key — static race id plus the two enclosing
    regions' content digests (see
    :func:`repro.analysis.batching.instance_batch_key`).  Fleet triage
    dedupes harmful reports across executions by this key; benign races
    don't feed triage, so their scenarios carry no key.  The callable
    derives the key from the recording alone, keeping reports
    byte-identical whichever classifier produced the verdicts.
    """
    reason = categorize(result, program)
    flagged = [
        entry
        for entry in result.instances
        if entry.outcome is not InstanceOutcome.NO_STATE_CHANGE
    ]
    exemplars = (flagged or result.instances)[:max_scenarios]
    harmful = str(result.classification) == "potentially-harmful"
    scenarios: List[Dict] = []
    for entry in exemplars:
        scenario = {
            "execution": entry.execution_id,
            "access_a": str(entry.instance.access_a),
            "access_b": str(entry.instance.access_b),
            "address": entry.instance.address,
            "original_first": entry.original_first,
            "outcome": str(entry.outcome),
            "failure": str(entry.failure_kind) if entry.failure_kind else None,
            "failure_detail": entry.failure_detail or None,
        }
        if harmful and batch_key_for is not None:
            batch_key = batch_key_for(entry)
            if batch_key is not None:
                scenario["batch_key"] = batch_key
        scenarios.append(scenario)
    return {
        "race": _key_text(result.key),
        "instructions": [
            program.describe_instruction(result.key[0]),
            program.describe_instruction(result.key[1]),
        ],
        "classification": str(result.classification),
        "group": str(result.group),
        "suppressed": suppressed,
        "suggested_reason": str(reason) if reason else None,
        "instances": {
            "total": result.instance_count,
            "no_state_change": result.outcome_count(InstanceOutcome.NO_STATE_CHANGE),
            "state_change": result.outcome_count(InstanceOutcome.STATE_CHANGE),
            "replay_failure": result.outcome_count(InstanceOutcome.REPLAY_FAILURE),
        },
        "executions": sorted(result.executions),
        "scenarios": scenarios,
    }


def results_to_json(
    results: Dict[StaticRaceKey, StaticRaceResult],
    program: Program,
    log: Optional[ReplayLog] = None,
    suppressions: Optional[SuppressionDB] = None,
    batch_key_for=None,
) -> Dict:
    """A whole analysis round as a JSON-compatible document."""
    suppressions = suppressions or SuppressionDB()
    races: List[Dict] = [
        result_to_json(
            result,
            program,
            suppressed=suppressions.is_suppressed(program.name, key),
            batch_key_for=batch_key_for,
        )
        for key, result in sorted(results.items(), key=lambda item: _key_text(item[0]))
    ]
    harmful = [race for race in races if race["classification"] == "potentially-harmful"]
    return {
        "export_version": EXPORT_VERSION,
        "program": program.name,
        "recording": {
            "seed": log.seed if log else None,
            "scheduler": log.scheduler if log else None,
            "instructions": log.total_instructions if log else None,
        },
        "summary": {
            "unique_races": len(races),
            "potentially_harmful": len(harmful),
            "potentially_benign": len(races) - len(harmful),
            "actionable": sum(1 for race in harmful if not race["suppressed"]),
        },
        "races": races,
    }


def export_results(
    path: Union[str, Path],
    results: Dict[StaticRaceKey, StaticRaceResult],
    program: Program,
    log: Optional[ReplayLog] = None,
    suppressions: Optional[SuppressionDB] = None,
) -> None:
    """Write :func:`results_to_json` output to ``path``."""
    document = results_to_json(results, program, log=log, suppressions=suppressions)
    Path(path).write_text(json.dumps(document, indent=2))
