"""Unit tests for the persistent fleet triage store.

The store's core promise is convergence: any set of instances absorbing
the same jobs — in any order, with duplicates, through crashes and
compactions — ends up with byte-identical compacted snapshots and
byte-identical ranked reports.  These tests pin that promise at every
layer: record merge algebra, suppression matching, ranking order, the
report adapter, and both backends' crash/replay behaviour.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.fleet_adapter import report_deltas
from repro.analysis.perf import PerfStats
from repro.fleet import (
    Contribution,
    FleetRecord,
    FleetStore,
    MemoryBackend,
    SuppressionRule,
    fleet_priority,
    rank_records,
    record_id_for,
)
from repro.fleet.backend import JOURNAL_NAME, SNAPSHOT_NAME

RACE_A = "counter:2|counter:6"
RACE_B = "flag:1|flag:9"
RACE_C = "queue:3|queue:4"


def export_report(program="prog", races=None):
    """A minimal classification export (the full/stream job report)."""
    return {
        "export_version": 1,
        "program": program,
        "races": races if races is not None else [
            harmful_race(RACE_A),
            benign_race(RACE_B),
        ],
    }


def harmful_race(race, state_change=2, executions=("e1",), digest=("aa", "bb")):
    return {
        "race": race,
        "classification": "potentially-harmful",
        "instances": {
            "total": state_change + 1,
            "no_state_change": 1,
            "state_change": state_change,
            "replay_failure": 0,
        },
        "executions": list(executions),
        "scenarios": [{"batch_key": {"region_content": list(digest)}}],
    }


def benign_race(race, no_state_change=3, executions=("e1",)):
    return {
        "race": race,
        "classification": "potentially-benign",
        "instances": {
            "total": no_state_change,
            "no_state_change": no_state_change,
            "state_change": 0,
            "replay_failure": 0,
        },
        "executions": list(executions),
        "scenarios": [],
    }


def detect_report(program="prog", execution="e9", races=((RACE_C, 4),)):
    return {
        "detect_version": 1,
        "program": program,
        "execution": execution,
        "unique_races": [
            {"race": race, "instances": count} for race, count in races
        ],
    }


class TestRecords:
    def test_record_id_is_stable_and_key_sensitive(self):
        first = record_id_for("p", RACE_A, "aa+bb")
        assert first == record_id_for("p", RACE_A, "aa+bb")
        assert first != record_id_for("p", RACE_A, "")
        assert first != record_id_for("q", RACE_A, "aa+bb")
        assert len(first) == 16

    def test_classification_over_fleet_counts(self):
        record = FleetRecord(race=RACE_A, digest="", program="p")
        assert record.classification == "detected"
        record.contributions["j1"] = Contribution(detected=3)
        assert record.classification == "detected"
        record.contributions["j2"] = Contribution(no_state_change=5)
        assert record.classification == "potentially-benign"
        # One state change anywhere in the fleet flips the verdict.
        record.contributions["j3"] = Contribution(state_change=1)
        assert record.classification == "potentially-harmful"
        assert record.counts()["total"] == 9

    def test_merge_is_commutative_and_idempotent(self):
        left = FleetRecord(race=RACE_A, digest="d", program="p")
        left.contributions["j1"] = Contribution(state_change=1, observed_at=1.0)
        left.contributions["j2"] = Contribution(no_state_change=2, observed_at=2.0)
        right = FleetRecord(race=RACE_A, digest="d", program="p")
        right.contributions["j2"] = Contribution(no_state_change=2, observed_at=9.0)
        right.contributions["j3"] = Contribution(detected=1, observed_at=3.0)

        ab = left.merged_with(right).to_json()
        ba = right.merged_with(left).to_json()
        assert ab == ba
        assert left.merged_with(left).to_json() == left.to_json()
        # The conflicting j2 cell resolved the same way on both sides.
        assert ab["contributions"]["j2"]["observed_at"] == 2.0

    def test_first_and_last_seen_span_contributions(self):
        record = FleetRecord(race=RACE_A, digest="", program="p")
        assert record.first_seen is None and record.last_seen is None
        record.contributions["j1"] = Contribution(observed_at=5.0)
        record.contributions["j2"] = Contribution(observed_at=2.0)
        record.contributions["j3"] = Contribution()  # no stamp
        assert record.first_seen == 2.0
        assert record.last_seen == 5.0

    def test_json_round_trip(self):
        record = FleetRecord(race=RACE_A, digest="d", program="p")
        record.contributions["j1"] = Contribution(
            state_change=1, executions=["e2", "e1"], classification="x"
        )
        clone = FleetRecord.from_json(record.to_json())
        assert clone.to_json() == record.to_json()
        assert clone.contributions["j1"].executions == ["e1", "e2"]


class TestSuppressionRules:
    def test_rule_id_excludes_provenance(self):
        first = SuppressionRule(
            scope="race", race=RACE_A, reason="known benign", created_by="me"
        )
        second = SuppressionRule(
            scope="race", race=RACE_A, reason="different note", created_at=7.0
        )
        assert first.rule_id == second.rule_id
        assert first.rule_id != SuppressionRule(scope="exact", race=RACE_A).rule_id

    def test_scope_matching(self):
        race_wide = SuppressionRule(scope="race", race=RACE_A)
        exact = SuppressionRule(scope="exact", race=RACE_A, digest="aa+bb")
        assert race_wide.matches(RACE_A, "anything")
        assert not race_wide.matches(RACE_B, "")
        assert exact.matches(RACE_A, "aa+bb")
        assert not exact.matches(RACE_A, "cc+dd")

    def test_expiry_needs_both_clock_and_deadline(self):
        rule = SuppressionRule(scope="race", race=RACE_A, expires_at=100.0)
        assert rule.matches(RACE_A, "", now=99.0)
        assert not rule.matches(RACE_A, "", now=100.0)
        # No clock (the convergence-critical report path) = never expired.
        assert rule.matches(RACE_A, "", now=None)
        assert SuppressionRule(scope="race", race=RACE_A).matches(
            RACE_A, "", now=1e12
        )


class TestRanking:
    def _record(self, race, digest="", **cell):
        record = FleetRecord(race=race, digest=digest, program="p")
        record.contributions["j"] = Contribution(**cell)
        return record

    def test_groups_order_harmful_detected_benign(self):
        benign = self._record(RACE_A, no_state_change=50)
        detected = self._record(RACE_B, detected=50)
        harmful = self._record(RACE_C, state_change=1)
        ranked = rank_records([benign, detected, harmful])
        assert [r.race for r in ranked] == [RACE_C, RACE_B, RACE_A]

    def test_score_rises_with_state_change_fraction(self):
        weak = self._record(RACE_A, state_change=1, no_state_change=9)
        strong = self._record(RACE_A, state_change=9, no_state_change=1)
        assert fleet_priority(strong).total > fleet_priority(weak).total

    def test_ties_break_deterministically_on_identity(self):
        twins = [
            self._record(RACE_B, digest="zz", state_change=1),
            self._record(RACE_B, digest="aa", state_change=1),
        ]
        ranked = rank_records(twins)
        assert [r.digest for r in ranked] == ["aa", "zz"]


class TestReportAdapter:
    def test_export_report_deltas(self):
        deltas = report_deltas(export_report())
        assert len(deltas) == 2
        harmful = next(d for d in deltas if d["race"] == RACE_A)
        assert harmful["digest"] == "aa+bb"
        assert harmful["state_change"] == 2
        assert harmful["detected"] == 0
        assert harmful["program"] == "prog"
        benign = next(d for d in deltas if d["race"] == RACE_B)
        assert benign["digest"] == ""  # benign scenarios carry no batch key
        assert benign["no_state_change"] == 3

    def test_detect_report_deltas(self):
        deltas = report_deltas(detect_report())
        assert deltas == [
            {
                "race": RACE_C,
                "digest": "",
                "program": "prog",
                "no_state_change": 0,
                "state_change": 0,
                "replay_failure": 0,
                "detected": 4,
                "executions": ["e9"],
                "classification": "detected",
            }
        ]

    def test_non_report_documents_are_rejected(self):
        with pytest.raises(ValueError, match="not an analysis report"):
            report_deltas({"job_id": "nope"})


class TestMemoryStore:
    def test_absorb_then_duplicate_is_skipped(self):
        store = FleetStore()
        perf = PerfStats()
        first = store.absorb_report(export_report(), "job-1", perf=perf)
        assert first.absorbed and first.new_records == 2
        again = store.absorb_report(export_report(), "job-1", perf=perf)
        assert not again.absorbed
        assert perf.fleet_absorbs == 1
        assert perf.fleet_absorb_duplicates == 1
        assert store.counts() == {
            "unique_races": 2,
            "absorbed_jobs": 1,
            "suppression_rules": 0,
        }

    def test_absorb_order_does_not_matter(self):
        reports = [
            (export_report(), "job-1"),
            (detect_report(), "job-2"),
            (export_report(races=[harmful_race(RACE_A, state_change=7,
                                               executions=("e2",))]), "job-3"),
        ]
        forward, backward = FleetStore(), FleetStore()
        for report, key in reports:
            forward.absorb_report(report, key, observed_at=1.0)
        for report, key in reversed(reports):
            backward.absorb_report(report, key, observed_at=1.0)
            backward.absorb_report(report, key, observed_at=9.0)  # dup, ignored
        forward.compact()
        backward.compact()
        assert forward.backend.read_snapshot() == backward.backend.read_snapshot()
        assert forward.report_bytes() == backward.report_bytes()

    def test_report_document_shape_and_ordering(self):
        store = FleetStore()
        store.absorb_report(export_report(), "job-1", observed_at=10.0)
        store.absorb_report(detect_report(), "job-2", observed_at=11.0)
        document = store.report_document()
        assert document["fleet_report_version"] == 1
        assert document["summary"] == {
            "listed": 3, "harmful": 1, "benign": 1, "detected": 1,
            "suppressed": 0,
        }
        races = document["races"]
        assert [r["classification"] for r in races] == [
            "potentially-harmful", "detected", "potentially-benign",
        ]
        top = races[0]
        assert top["race"] == RACE_A and top["digest"] == "aa+bb"
        assert top["id"] == record_id_for("prog", RACE_A, "aa+bb")
        assert top["instances"]["state_change"] == 2
        assert top["first_seen"] == 10.0 and top["last_seen"] == 10.0
        assert top["contributors"] == ["job-1"]

    def test_suppression_hides_and_include_suppressed_reveals(self):
        store = FleetStore()
        store.absorb_report(export_report(), "job-1")
        rule_id = store.suppress(SuppressionRule(scope="race", race=RACE_A))
        document = store.report_document()
        assert document["summary"]["suppressed"] == 1
        assert all(r["race"] != RACE_A for r in document["races"])
        revealed = store.report_document(include_suppressed=True)
        entry = next(r for r in revealed["races"] if r["race"] == RACE_A)
        assert entry["suppressed"] and entry["suppressed_by"] == rule_id

    def test_expired_rules_stop_suppressing(self):
        store = FleetStore()
        store.absorb_report(export_report(), "job-1")
        store.suppress(
            SuppressionRule(scope="race", race=RACE_A, expires_at=100.0)
        )
        assert store.report_document(now=50.0)["summary"]["suppressed"] == 1
        assert store.report_document(now=200.0)["summary"]["suppressed"] == 0

    def test_unsuppress_round_trip(self):
        store = FleetStore()
        rule_id = store.suppress(SuppressionRule(scope="race", race=RACE_A))
        assert store.unsuppress(rule_id)
        assert not store.unsuppress(rule_id)
        assert store.suppression_rules() == []

    def test_limit_truncates_after_ranking(self):
        store = FleetStore()
        store.absorb_report(export_report(), "job-1")
        store.absorb_report(detect_report(), "job-2")
        document = store.report_document(limit=1)
        assert document["summary"]["listed"] == 1
        assert document["races"][0]["classification"] == "potentially-harmful"
        assert document["store"]["unique_races"] == 3  # store totals unclipped

    def test_record_document_carries_contribution_detail(self):
        store = FleetStore()
        store.absorb_report(export_report(), "job-1", observed_at=4.0)
        record_id = record_id_for("prog", RACE_A, "aa+bb")
        detail = store.record_document(record_id)
        assert detail["id"] == record_id
        assert detail["contributions"]["job-1"]["state_change"] == 2
        assert store.record_document("0" * 16) is None

    def test_export_import_merge_is_idempotent_and_commutative(self):
        left, right = FleetStore(), FleetStore()
        left.absorb_report(export_report(), "job-1", observed_at=1.0)
        right.absorb_report(detect_report(), "job-2", observed_at=2.0)
        right.suppress(SuppressionRule(scope="race", race=RACE_B))

        left.import_document(right.export_document())
        right.import_document(left.export_document())
        left.import_document(right.export_document())  # idempotent re-import
        assert left.report_bytes() == right.report_bytes()
        assert left.counts() == right.counts() == {
            "unique_races": 3, "absorbed_jobs": 2, "suppression_rules": 1,
        }

    def test_import_rejects_unknown_versions(self):
        with pytest.raises(ValueError, match="fleet export version"):
            FleetStore().import_document({"fleet_version": 99})


class TestFileStore:
    def test_journal_replays_across_reopen_without_compaction(self, tmp_path):
        store = FleetStore.open(tmp_path / "fleet")
        store.absorb_report(export_report(), "job-1", observed_at=1.0)
        store.suppress(SuppressionRule(scope="race", race=RACE_B))
        before = store.report_bytes()
        store.close()

        reopened = FleetStore.open(tmp_path / "fleet")
        assert reopened.report_bytes() == before
        assert (tmp_path / "fleet" / JOURNAL_NAME).stat().st_size > 0
        assert not (tmp_path / "fleet" / SNAPSHOT_NAME).exists()

    def test_compaction_preserves_the_report_and_empties_the_journal(
        self, tmp_path
    ):
        store = FleetStore.open(tmp_path / "fleet")
        store.absorb_report(export_report(), "job-1", observed_at=1.0)
        before = store.report_bytes()
        size = store.compact()
        assert size == len((tmp_path / "fleet" / SNAPSHOT_NAME).read_bytes())
        assert (tmp_path / "fleet" / JOURNAL_NAME).stat().st_size == 0
        assert store.report_bytes() == before
        assert FleetStore.open(tmp_path / "fleet").report_bytes() == before

    def test_torn_journal_tail_is_sealed_not_fatal(self, tmp_path):
        store = FleetStore.open(tmp_path / "fleet")
        store.absorb_report(export_report(), "job-1", observed_at=1.0)
        before = store.report_bytes()
        journal = tmp_path / "fleet" / JOURNAL_NAME
        with open(journal, "ab") as handle:
            handle.write(b'{"event": "absorb", "job_')  # writer died here

        reopened = FleetStore.open(tmp_path / "fleet")
        assert reopened.report_bytes() == before
        # The next append seals the torn fragment onto its own line.
        reopened.absorb_report(detect_report(), "job-2", observed_at=2.0)
        assert reopened.counts()["absorbed_jobs"] == 2

    def test_crash_between_snapshot_and_truncate_replays_idempotently(
        self, tmp_path
    ):
        store = FleetStore.open(tmp_path / "fleet")
        store.absorb_report(export_report(), "job-1", observed_at=1.0)
        journal_bytes = (tmp_path / "fleet" / JOURNAL_NAME).read_bytes()
        store.compact()
        # Simulate the crash window: snapshot written, truncate lost.
        (tmp_path / "fleet" / JOURNAL_NAME).write_bytes(journal_bytes)

        reopened = FleetStore.open(tmp_path / "fleet")
        counts = reopened.counts()
        assert counts["absorbed_jobs"] == 1  # replay gated on absorbed-set
        assert counts["unique_races"] == 2
        record = reopened.record_document(record_id_for("prog", RACE_A, "aa+bb"))
        assert record["instances"]["state_change"] == 2  # not doubled

    def test_two_instances_sharing_a_directory_converge(self, tmp_path):
        first = FleetStore.open(tmp_path / "fleet")
        second = FleetStore.open(tmp_path / "fleet")
        first.absorb_report(export_report(), "job-1", observed_at=1.0)
        second.absorb_report(detect_report(), "job-2", observed_at=2.0)
        # Overlap: both instances try the same execution; one wins.
        assert second.absorb_report(export_report(), "job-1").absorbed is False
        assert first.report_bytes() == second.report_bytes()

        first.compact()
        second.absorb_report(
            export_report(races=[benign_race(RACE_C)]), "job-3", observed_at=3.0
        )
        assert first.report_bytes() == second.report_bytes()
        assert first.counts()["absorbed_jobs"] == 3

    def test_suppressions_propagate_between_instances(self, tmp_path):
        first = FleetStore.open(tmp_path / "fleet")
        second = FleetStore.open(tmp_path / "fleet")
        first.absorb_report(export_report(), "job-1")
        rule_id = first.suppress(SuppressionRule(scope="race", race=RACE_A))
        assert second.report_document()["summary"]["suppressed"] == 1
        assert second.unsuppress(rule_id)
        assert first.report_document()["summary"]["suppressed"] == 0

    def test_snapshot_is_canonical_json(self, tmp_path):
        store = FleetStore.open(tmp_path / "fleet")
        store.absorb_report(export_report(), "job-1", observed_at=1.0)
        store.compact()
        raw = (tmp_path / "fleet" / SNAPSHOT_NAME).read_bytes()
        document = json.loads(raw)
        canonical = (
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        assert raw == canonical
        assert document["fleet_version"] == 1
