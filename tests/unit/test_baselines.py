"""Unit tests for the lockset and vector-clock baseline detectors."""

from repro.isa import assemble
from repro.race.happens_before import find_races
from repro.race.linearize import linearize
from repro.race.lockset import LocksetDetector, LocationState, lockset_warnings
from repro.race.vector_clock import VectorClockDetector, VectorClock, vector_clock_races
from repro.record import record_run
from repro.replay import OrderedReplay
from repro.vm import ExplicitScheduler, RandomScheduler


def replayed(source, seed=3, scheduler=None, name="bl"):
    program = assemble(source, name=name)
    _, log = record_run(
        program,
        scheduler=scheduler or RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    return program, OrderedReplay(log, program)


RACY = (
    ".data\nx: .word 0\n.thread a b\n    load r1, [x]\n"
    "    addi r1, r1, 1\n    store r1, [x]\n    halt\n"
)

LOCKED = (
    ".data\nx: .word 0\nm: .word 0\n.thread a b\n    lock [m]\n"
    "    load r1, [x]\n    addi r1, r1, 1\n    store r1, [x]\n"
    "    unlock [m]\n    halt\n"
)

ATOMIC_HANDOFF = (
    ".data\nd: .word 0\nf: .word 0\n"
    ".thread w\n    li r1, 9\n    store r1, [d]\n    li r2, 1\n"
    "    atom_xchg r3, [f], r2\n    halt\n"
    ".thread r\n    li r2, 0\nspin:\n    atom_add r1, [f], r2\n"
    "    beqz r1, spin\n    load r3, [d]\n    li r4, 0\n    store r4, [d]\n"
    "    halt\n"
)


class TestLinearize:
    def test_per_thread_order_preserved(self):
        program, ordered = replayed(LOCKED)
        events = linearize(ordered)
        for name in ("a", "b"):
            steps = [e.thread_step for e in events if e.thread_name == name]
            assert steps == sorted(steps)

    def test_sync_events_typed(self):
        program, ordered = replayed(LOCKED)
        kinds = {e.kind for e in linearize(ordered)}
        assert {"lock", "unlock", "access"} <= kinds

    def test_atomic_events_carry_address(self):
        program, ordered = replayed(ATOMIC_HANDOFF, seed=1)
        atomics = [e for e in linearize(ordered) if e.kind == "atomic"]
        assert atomics
        assert all(e.address == program.data_address("f") for e in atomics)


class TestLockset:
    def test_unprotected_shared_write_warns(self):
        program, ordered = replayed(RACY)
        warnings = lockset_warnings(ordered)
        assert len(warnings) == 1
        assert warnings[0].address == program.data_address("x")
        assert warnings[0].state is LocationState.SHARED_MODIFIED

    def test_locked_access_is_silent(self):
        _, ordered = replayed(LOCKED)
        assert lockset_warnings(ordered) == []

    def test_false_positive_on_hb_ordered_handoff(self):
        """The paper's lockset criticism: no lock ever guards d, yet the
        atomics order all accesses — lockset warns, happens-before does
        not."""
        program, ordered = replayed(
            ATOMIC_HANDOFF, scheduler=ExplicitScheduler([0] * 12 + [1] * 20)
        )
        assert find_races(ordered) == []  # truly race-free
        warnings = lockset_warnings(ordered)
        assert any(w.address == program.data_address("d") for w in warnings)

    def test_one_warning_per_location(self):
        source = (
            ".data\nx: .word 0\n.thread a b\n    li r9, 3\nl:\n    load r1, [x]\n"
            "    addi r1, r1, 1\n    store r1, [x]\n    subi r9, r9, 1\n"
            "    bnez r9, l\n    halt\n"
        )
        _, ordered = replayed(source)
        assert len(lockset_warnings(ordered)) == 1

    def test_exclusive_single_thread_silent(self):
        _, ordered = replayed(
            ".data\nx: .word 0\n.thread t\n    li r1, 1\n    store r1, [x]\n"
            "    load r2, [x]\n    halt\n"
        )
        assert lockset_warnings(ordered) == []


class TestVectorClock:
    def test_detects_racy_rmw(self):
        program, ordered = replayed(RACY)
        races = vector_clock_races(ordered)
        assert races
        assert all(r.address == program.data_address("x") for r in races)

    def test_silent_on_locked(self):
        _, ordered = replayed(LOCKED)
        assert vector_clock_races(ordered) == []

    def test_silent_on_atomic_handoff(self):
        _, ordered = replayed(
            ATOMIC_HANDOFF, scheduler=ExplicitScheduler([0] * 12 + [1] * 20)
        )
        assert vector_clock_races(ordered) == []

    def test_finds_races_conservative_hb_misses(self):
        """Unrelated syncs order regions conservatively: two threads that
        sync on *different* locks are serialized by the sequencer total
        order when their critical sections happen not to overlap — the
        region detector goes quiet, but precise vector clocks still see
        the race on x."""
        source = (
            ".data\nx: .word 0\nm1: .word 0\nm2: .word 0\n"
            ".thread a\n    load r1, [x]\n    addi r1, r1, 1\n    store r1, [x]\n"
            "    lock [m1]\n    unlock [m1]\n    halt\n"
            ".thread b\n    lock [m2]\n    unlock [m2]\n    load r1, [x]\n"
            "    addi r1, r1, 1\n    store r1, [x]\n    halt\n"
        )
        program, ordered = replayed(
            source, scheduler=ExplicitScheduler([0] * 10 + [1] * 10)
        )
        region_races = find_races(ordered)
        vc = VectorClockDetector(ordered)
        vc.detect()
        assert region_races == []  # conservative sequencers hide it
        assert vc.unique_static_races()  # precise analysis reports it

    def test_unique_static_races_keying(self):
        _, ordered = replayed(RACY)
        detector = VectorClockDetector(ordered)
        detector.detect()
        keys = detector.unique_static_races()
        assert keys
        for first, second in keys:
            assert first.sort_key() <= second.sort_key()


class TestVectorClockPrimitive:
    def test_join_and_tick(self):
        clock = VectorClock({0: 1})
        other = VectorClock({1: 5})
        clock.join(other)
        assert clock.get(1) == 5
        clock.tick(0)
        assert clock.get(0) == 2

    def test_dominates(self):
        clock = VectorClock({0: 3})
        assert clock.dominates(0, 3)
        assert not clock.dominates(0, 4)
        assert clock.dominates(1, 0)

    def test_copy_is_independent(self):
        clock = VectorClock({0: 1})
        copy = clock.copy()
        clock.tick(0)
        assert copy.get(0) == 1
