"""Classify-stage cost: batched fan-out vs the per-instance memoized engine.

Classification replays each race instance twice in a virtual processor.
PR 1's memoization already collapses structurally identical instances to
one replay plus cache hits — but the *per-instance* overhead remains: a
full pair-image reconstruction per racing pair and a fresh dict copy per
instance, even the ones served from the cache.  The batching planner
(:mod:`repro.analysis.batching`) removes both: instances are grouped by
``(static race id, region-content hash)`` up front, pair live-in state
is resolved lazily (one address per probe — no reconstruction, no copy),
one leader replays per batch and the verdict fans out to every member.

The workload here is built so region contents genuinely repeat — the
racing loop keeps its iteration state in a memory counter and normalizes
every register it touches before each sequencer call, so all racing
regions of a thread are byte-identical — and carries a wide initialized
data section, the shape where per-pair image reconstruction and
per-instance snapshot copies dominate.  Real racy loops share the
pattern: hot racing code touches few addresses, while the surrounding
heap is large.

Per size the benchmark times the classify stage of a fresh per-instance
memoized engine (``batching=False`` — the PR 1 configuration) against a
fresh batching engine, asserts the two rendered reports are
byte-identical, and then measures the incremental path: a warm engine
seeded with the cold run's verdict index re-analyses a *different seed*
of the same program (the service's dedup-near-miss resubmission) and
must replay almost nothing.

Runs both under pytest (``pytest benchmarks/bench_classify_batched.py``)
and as a script::

    PYTHONPATH=src python benchmarks/bench_classify_batched.py --quick

Either way the measured numbers land in
``benchmarks/results/BENCH_classify_batched.json``.  ``--quick`` (used
by CI) keeps the equivalence assertions but runs single repeats on the
smaller sizes — the byte-identity gate, not the timing gate.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.analysis.engine import ClassificationEngine, EngineConfig
from repro.analysis.perf import PerfStats
from repro.analysis.pipeline import execution_report, render_report
from repro.isa import assemble
from repro.record import record_run
from repro.record.binary_format import encode_log
from repro.record.serialization import load_log_bytes
from repro.vm import RandomScheduler

RESULTS_DIR = Path(__file__).parent / "results"

#: Initialized data words beyond the racing variable: they widen the
#: memory image every racing pair's live-in is drawn from, which is
#: exactly the cost the per-instance path pays per pair (full image
#: reconstruction) and again per instance (dict copy), while the batched
#: path resolves only the few addresses actually probed.
FILLER_WORDS = 1024

#: Racing stores per region; K stores per side gives K*K instances per
#: overlapping region pair, all sharing that pair's live-in state.
RACING_STORES = 3

#: The racing loop keeps its trip count in ``cnt_{t}`` (memory, not a
#: register) and re-normalizes every register it touched before each
#: sequencer call, so every racing region of a thread records identical
#: content — the planner batches them all.  The register kernel between
#: the stores models the non-racing compute of a real critical section.
THREAD_TEMPLATE = """
.thread {t}
{t}h:
    load r1, [cnt_{t}]
    subi r1, r1, 1
    store r1, [cnt_{t}]
    beqz r1, {t}done
    li r1, 0
    sys_rand r9, 1
    li r2, {value}
{stores}
    li r4, 3
{t}k:
    addi r5, r5, 3
    subi r4, r4, 1
    bnez r4, {t}k
    li r2, 0
    li r4, 0
    li r5, 0
    sys_rand r9, 1
    jmp {t}h
{t}done:
    halt
"""

#: ``iters`` is the racing-region count per thread.
SIZES = (16, 48, 128)
QUICK_SIZES = (10, 24)
SEED = 21
WARM_SEED = 22


def _thread_source(t: str, value: int) -> str:
    stores = "\n".join("    store r2, [x]" for _ in range(RACING_STORES))
    return THREAD_TEMPLATE.format(t=t, value=value, stores=stores)


def _source(iters: int) -> str:
    data = [".data", "x: .word 0"]
    for t in ("a", "b"):
        data.append("cnt_%s: .word %d" % (t, iters + 1))
    data.extend("f%d: .word %d" % (i, i % 97) for i in range(FILLER_WORDS))
    return (
        "\n".join(data)
        + _thread_source("a", 5)
        + _thread_source("b", 7)
    )


def _container_bytes(iters: int, seed: int) -> bytes:
    program = assemble(_source(iters), name="batched%d" % iters)
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.3),
        seed=seed,
        max_steps=800_000,
    )
    return encode_log(log)


def _analyze(data: bytes, batching: bool, prior=None):
    """One cold analysis on a fresh engine; returns (analysis, stats)."""
    engine = ClassificationEngine(
        EngineConfig(jobs=1, memoize=True, batching=batching)
    )
    stats = PerfStats()
    analysis = engine.analyze_log(load_log_bytes(data), perf=stats, prior=prior)
    return analysis, stats


def _time_classify(data: bytes, batching: bool, repeats: int):
    """Min classify-stage seconds over ``repeats`` fresh engines.

    Each repeat decodes the container and analyses it on a brand-new
    engine (empty verdict cache), so both configurations are measured
    cold; only the classify stage is compared — record/replay/detect are
    identical between them.
    """
    best = None
    analysis = None
    stats = None
    for _ in range(repeats):
        analysis, stats = _analyze(data, batching)
        elapsed = stats.stage_seconds.get("classify", 0.0)
        best = elapsed if best is None else min(best, elapsed)
    return best, analysis, stats


def _measure_warm(data: bytes, prior_index: dict):
    """Incremental re-analysis of ``data`` spliced from ``prior_index``."""
    started = time.perf_counter()
    analysis, stats = _analyze(data, batching=True, prior=prior_index)
    elapsed = time.perf_counter() - started
    instances = len(analysis.instances)
    replayed = stats.cache_misses
    return {
        "instances": instances,
        "replayed": replayed,
        "replayed_fraction": round(replayed / instances, 4) if instances else 0.0,
        "spliced": stats.incremental_spliced,
        "elapsed_s": round(elapsed, 4),
    }


def run_benchmark(sizes=SIZES, repeats: int = 3) -> dict:
    """Time per-instance vs batched classification; assert identical reports."""
    rows = []
    for iters in sizes:
        data = _container_bytes(iters, SEED)
        plain_s, plain_analysis, _ = _time_classify(data, False, repeats)
        batched_s, batched_analysis, batched_stats = _time_classify(
            data, True, repeats
        )
        plain_report = render_report(execution_report(plain_analysis))
        batched_report = render_report(execution_report(batched_analysis))
        if plain_report != batched_report:
            raise AssertionError(
                "batched report diverges from the per-instance engine at "
                "iters=%d" % iters
            )
        rows.append(
            {
                "iters": iters,
                "instances": len(batched_analysis.instances),
                "batches": batched_stats.classify_batches,
                "largest_batch": max(batched_stats.batch_sizes, default=0),
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(batched_stats.batch_sizes.items())
                },
                "fanout": batched_stats.batch_fanout,
                "fallbacks": batched_stats.batch_fallbacks,
                "unbatched_classify_s": round(plain_s, 4),
                "batched_classify_s": round(batched_s, 4),
                "speedup": round(plain_s / batched_s, 2) if batched_s else 0.0,
                "reports_identical": True,
            }
        )
    largest = rows[-1]
    # Warm incremental: re-analyse a *different seed* of the largest
    # program, spliced from the cold run's verdict index — the service's
    # resubmission near-miss.  Content-identical regions splice; only
    # genuinely new (live-in variant) instances replay.
    cold_analysis, _ = _analyze(_container_bytes(largest["iters"], SEED), True)
    warm = _measure_warm(
        _container_bytes(largest["iters"], WARM_SEED),
        cold_analysis.verdict_index,
    )
    return {
        "workloads": rows,
        "seed": SEED,
        "warm_seed": WARM_SEED,
        "filler_words": FILLER_WORDS,
        "racing_stores": RACING_STORES,
        "largest_iters": largest["iters"],
        "instances": largest["instances"],
        "speedup": largest["speedup"],
        "batch_size_histogram": largest["batch_size_histogram"],
        "warm_incremental": warm,
        "reports_identical": all(row["reports_identical"] for row in rows),
    }


def write_result(result: dict, output: Path) -> None:
    output.parent.mkdir(exist_ok=True)
    output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_batched_classification(results_dir):
    result = run_benchmark(sizes=SIZES, repeats=3)
    write_result(result, results_dir / "BENCH_classify_batched.json")
    assert result["reports_identical"]
    assert result["speedup"] >= 2.0, (
        "batched classification must be >=2x over the per-instance memoized "
        "engine on the largest workload (got %.2fx)" % result["speedup"]
    )
    warm = result["warm_incremental"]
    assert warm["replayed_fraction"] < 0.10, (
        "a warm incremental re-submit must replay <10%% of instances "
        "(replayed %d of %d)" % (warm["replayed"], warm["instances"])
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes, single repeat: equivalence check, not a timing gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_classify_batched.json",
        help="where to write the JSON result",
    )
    args = parser.parse_args()
    result = run_benchmark(
        sizes=QUICK_SIZES if args.quick else SIZES,
        repeats=1 if args.quick else 3,
    )
    if args.quick:
        result["quick"] = True  # mark CI-noise numbers as non-authoritative
    write_result(result, args.output)
    print(json.dumps(result, indent=2, sort_keys=True))
    warm = result["warm_incremental"]
    print(
        "reports identical across %d workloads; largest speedup %.2fx; "
        "warm re-submit replayed %d/%d instances (%.1f%%)"
        % (
            len(result["workloads"]),
            result["speedup"],
            warm["replayed"],
            warm["instances"],
            warm["replayed_fraction"] * 100,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
