"""Disassembler: render a :class:`~repro.isa.program.Program` back to text.

Used by race reports ("show me the two racing instructions in context") and
as a round-trip aid in tests.  The output re-assembles to an equivalent
program (same instruction stream, labels regenerated as ``L<index>``).
"""

from __future__ import annotations

from typing import Dict, List, Set

from .instructions import Instruction, L
from .operands import Imm
from .program import CodeBlock, Program


def _branch_targets(block: CodeBlock) -> Dict[int, str]:
    """Collect branch-target indices and assign stable generated labels."""
    targets: Set[int] = set()
    for instruction in block.instructions:
        spec = instruction.spec
        for atom, operand in zip(spec.signature, instruction.operands):
            if atom == L and isinstance(operand, Imm):
                targets.add(operand.value)
    return {index: "L%d" % index for index in sorted(targets)}


def disassemble_instruction(instruction: Instruction, labels: Dict[int, str]) -> str:
    """Render one instruction, mapping branch-target immediates to labels."""
    spec = instruction.spec
    parts: List[str] = []
    for atom, operand in zip(spec.signature, instruction.operands):
        if atom == L and isinstance(operand, Imm) and operand.value in labels:
            parts.append(labels[operand.value])
        else:
            parts.append(str(operand))
    if not parts:
        return instruction.opcode
    return "%s %s" % (instruction.opcode, ", ".join(parts))


def disassemble_block(block: CodeBlock, thread_names: List[str]) -> str:
    """Render one code block with its ``.thread`` header."""
    labels = _branch_targets(block)
    lines = [".thread %s" % " ".join(thread_names)]
    for index, instruction in enumerate(block.instructions):
        if index in labels:
            lines.append("%s:" % labels[index])
        lines.append("    %s" % disassemble_instruction(instruction, labels))
    return "\n".join(lines)


def disassemble(program: Program) -> str:
    """Render a whole program (data segment plus every code block)."""
    lines: List[str] = []
    if program.data:
        lines.append(".data")
        for item in sorted(program.data.values(), key=lambda entry: entry.address):
            values = ", ".join(str(value) for value in item.values)
            if set(item.values) == {0} and item.size > 1:
                lines.append("%s: .space %d" % (item.name, item.size))
            else:
                lines.append("%s: .word %s" % (item.name, values))
    threads_by_block: Dict[str, List[str]] = {}
    for thread_name, block_name in program.threads.items():
        threads_by_block.setdefault(block_name, []).append(thread_name)
    for block_name, block in program.blocks.items():
        lines.append("")
        lines.append(disassemble_block(block, threads_by_block.get(block_name, [block_name])))
    return "\n".join(lines) + "\n"
