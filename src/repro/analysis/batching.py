"""Batch planning for classification: group instances by shared content.

Classification replays every race instance twice in a virtual processor.
When hundreds of instances share the same static race and byte-identical
region recordings — a tight racing loop produces exactly that — the
replays are redundant: a verdict is a deterministic function of the two
regions' recorded content, the racing offsets, the recorded order and the
live-in values the replay probes (the memoization argument in
:mod:`repro.analysis.engine`).  The planner here makes that redundancy
explicit: it groups canonicalized :class:`RaceInstance`\\ s by their full
structural key — ``(static race id via the offset/trajectory pair,
region-content ids, recorded order)`` — so the classifier can replay one
*leader* per batch and fan the verdict out to every member whose live-in
agrees on the probed addresses.  Members whose live-in diverges fall back
to a per-instance replay (reusing the leader's thread specs and seeded
prefix image), so batching never changes a verdict — only where the work
happens.

The module also owns the *content* functions shared by the verdict
cache, the incremental re-analysis index and the report exporter:
:func:`region_content` builds the canonical region-content tuple,
:func:`content_digest` its stable cross-process hash, and
:func:`instance_batch_key` the triage-facing ``(static race id,
region-content hashes)`` key exported with harmful verdicts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..race.model import RaceInstance
from ..replay.regions import SequencingRegion

#: Bump when the content-tuple layout changes: digests of old layouts
#: must never match digests of new ones.
CONTENT_SCHEMA_VERSION = 1

#: Schema version of the portable verdict index (the JSON document
#: :meth:`VerdictCache.export_portable` emits and ``absorb_portable``
#: accepts); unknown versions are ignored wholesale on absorb.
VERDICT_INDEX_VERSION = 1


def region_content(
    ordered, thread_name: str, region: SequencingRegion, footprint=None
) -> tuple:
    """The canonical content tuple of one recorded region.

    Every input the replay draws from one side — start pc, live-in
    registers, the executed static-id trajectory, every recorded access
    (loads seed values, stores and their values, sync ops) and the
    region-end state — is a function of this tuple, so two regions with
    equal content are interchangeable for classification.  This is the
    single definition the verdict cache interns, the incremental index
    digests and the exporter's batch keys hash.
    """
    replay = ordered.thread_replays[thread_name]
    log = ordered.log
    start, end = region.start_step, region.end_step
    if region.end_kind == "thread_end":
        thread_end = log.threads[thread_name].end
        end_state = (
            "thread_end",
            None if thread_end is None else thread_end.reason,
            replay.final_registers,
            replay.final_pc,
        )
    else:
        end_state = (
            region.end_kind,
            replay.region_end_registers.get(end),
            replay.region_end_pcs.get(end),
        )
    if footprint is None:
        footprint = tuple(sorted(set(log.threads[thread_name].pc_footprint)))
    return (
        thread_name,
        # The whole-thread pc footprint gates which control flow an
        # alternative replay may visit (§4.2.1), so it is part of what
        # determines the verdict.
        footprint,
        ordered.region_start_pc(region),
        ordered.live_in_registers(region),
        tuple(replay.static_ids[start:end]),
        tuple(
            (
                access.thread_step - start,
                access.address,
                access.value,
                access.is_write,
                access.is_sync,
            )
            for access in replay.accesses_in_steps(start, end)
        ),
        end_state,
    )


def content_digest(content: tuple) -> str:
    """A stable cross-process hash of one region-content tuple.

    ``repr`` of the tuple is deterministic (ints, strings, bools, None,
    nested tuples and ``StaticInstructionId`` dataclasses), so equal
    contents digest equally in every process — which is what lets the
    incremental index splice verdicts across engine lifetimes.
    """
    material = repr(("repro-region-content", CONTENT_SCHEMA_VERSION, content))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def content_shape(content: tuple) -> Tuple[int, int, int]:
    """A compact structural fingerprint of a content tuple.

    ``(start pc, executed steps, recorded accesses)`` — checked alongside
    the digest when splicing verdicts from an imported index, so even a
    (cryptographically impossible, but cheap to guard against) digest
    collision between different contents cannot serve a wrong verdict:
    colliding contents with different shapes are rejected and recomputed.
    """
    return (content[2], len(content[4]), len(content[5]))


def instance_batch_key(ordered, instance: RaceInstance) -> Dict:
    """The triage-facing batch key of one race instance.

    ``race`` is the static race id; ``region_content`` the two enclosing
    regions' content digests (truncated — the full digests live in the
    verdict index), in canonical side order (earlier-opening region
    first, matching the classifier's canonicalization).  Fleet triage
    dedupes harmful scenarios by this key: two reports with equal batch
    keys describe content-identical racing situations.
    """
    if (instance.region_b.start_ts, instance.region_b.tid) < (
        instance.region_a.start_ts,
        instance.region_a.tid,
    ):
        instance = RaceInstance(
            access_a=instance.access_b,
            access_b=instance.access_a,
            region_a=instance.region_b,
            region_b=instance.region_a,
        )
    key = instance.static_key
    digests = [
        content_digest(
            region_content(ordered, access.thread_name, region)
        )[:16]
        for access, region in (
            (instance.access_a, instance.region_a),
            (instance.access_b, instance.region_b),
        )
    ]
    return {"race": "%s|%s" % (key[0], key[1]), "region_content": digests}


@dataclass
class PlannedBatch:
    """One group of instances that share a full structural key."""

    #: The structural key every member shares (see MemoizingClassifier).
    key: tuple
    #: ``(input position, canonicalized instance)`` in input order; the
    #: first member is the batch leader (it replays, the rest fan out).
    members: List[Tuple[int, RaceInstance]] = field(default_factory=list)
    #: The leader's virtual processor, built lazily on the first member
    #: that actually replays and rebound (shared specs + seeded prefix
    #: image) for any probe-divergence fallback members.
    processor: object = None

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class BatchPlan:
    """The planner's output: batches in first-encounter order."""

    batches: List[PlannedBatch]
    total_instances: int

    @property
    def batch_count(self) -> int:
        return len(self.batches)

    @property
    def max_size(self) -> int:
        return max((batch.size for batch in self.batches), default=0)

    def size_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for batch in self.batches:
            histogram[batch.size] = histogram.get(batch.size, 0) + 1
        return histogram


def plan_batches(classifier, instances: Sequence[RaceInstance]) -> BatchPlan:
    """Group instances by structural key, preserving input order.

    ``classifier`` is a :class:`~repro.analysis.engine.MemoizingClassifier`
    (or subclass): its canonicalization and key construction are reused so
    the plan interns region contents in exactly the order the per-instance
    memoized path would — the resulting keys, cache entries and verdicts
    are therefore identical between the two paths.
    """
    batches: Dict[tuple, PlannedBatch] = {}
    for position, instance in enumerate(instances):
        canonical = classifier._canonicalize(instance)
        key = classifier._structural_key(canonical)
        batch = batches.get(key)
        if batch is None:
            batch = PlannedBatch(key=key)
            batches[key] = batch
        batch.members.append((position, canonical))
    return BatchPlan(
        batches=list(batches.values()), total_instances=len(instances)
    )
