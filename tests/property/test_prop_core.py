"""Property-based tests: ALU semantics, varints, assembler round trips."""

from hypothesis import given, settings, strategies as st

from repro.isa import assemble, disassemble
from repro.isa.operands import WORD_MASK, to_signed, to_unsigned
from repro.record.compression import decode_varint, encode_varint
from repro.vm.alu import binary_op, branch_taken

from strategies import programs

words = st.integers(min_value=0, max_value=WORD_MASK)
small = st.integers(min_value=0, max_value=2**20)


class TestAluProperties:
    @given(a=words, b=words)
    def test_commutative_ops(self, a, b):
        for op in ("add", "mul", "and", "or", "xor"):
            assert binary_op(op, a, b) == binary_op(op, b, a)

    @given(a=words, b=words)
    def test_results_fit_in_64_bits(self, a, b):
        for op in ("add", "sub", "mul", "divu", "remu", "shl", "shr"):
            assert 0 <= binary_op(op, a, b) <= WORD_MASK

    @given(a=words)
    def test_additive_identity_and_inverse(self, a):
        assert binary_op("add", a, 0) == a
        assert binary_op("sub", a, a) == 0
        assert binary_op("xor", a, a) == 0

    @given(a=words, b=st.integers(min_value=1, max_value=WORD_MASK))
    def test_division_euclidean(self, a, b):
        quotient = binary_op("divu", a, b)
        remainder = binary_op("remu", a, b)
        assert to_unsigned(quotient * b + remainder) == a
        assert remainder < b

    @given(a=words, b=words)
    def test_slt_trichotomy(self, a, b):
        if a == b:
            assert binary_op("slt", a, b) == 0
            assert binary_op("slt", b, a) == 0
        else:
            assert binary_op("slt", a, b) ^ binary_op("slt", b, a) == 1

    @given(a=words, b=words)
    def test_branch_consistency_with_alu(self, a, b):
        assert branch_taken("beq", a, b) == (a == b)
        assert branch_taken("bne", a, b) == (a != b)
        assert branch_taken("blt", a, b) == (to_signed(a) < to_signed(b))
        assert branch_taken("bge", a, b) == (to_signed(a) >= to_signed(b))

    @given(value=st.integers(min_value=-(2**70), max_value=2**70))
    def test_signed_unsigned_round_trip(self, value):
        assert to_unsigned(to_signed(to_unsigned(value))) == to_unsigned(value)


class TestVarintProperties:
    @given(value=st.integers(min_value=0, max_value=2**80))
    def test_round_trip(self, value):
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value

    @given(values=st.lists(small, min_size=1, max_size=20))
    def test_stream_round_trip(self, values):
        blob = b"".join(encode_varint(v) for v in values)
        decoded, offset = [], 0
        while offset < len(blob):
            value, offset = decode_varint(blob, offset)
            decoded.append(value)
        assert decoded == values

    @given(value=small)
    def test_encoding_is_minimal_for_small_values(self, value):
        encoded = encode_varint(value)
        if value < 128:
            assert len(encoded) == 1


class TestAssemblerRoundTrip:
    @given(source=programs())
    @settings(max_examples=30, deadline=None)
    def test_disassemble_reassembles_equivalently(self, source):
        program = assemble(source, name="rt")
        text = disassemble(program)
        again = assemble(text, name="rt")
        assert set(again.blocks) == set(program.blocks)
        for name, block in program.blocks.items():
            other = again.blocks[name]
            assert [i.opcode for i in block.instructions] == [
                i.opcode for i in other.instructions
            ]
            assert [i.operands for i in block.instructions] == [
                i.operands for i in other.instructions
            ]
        assert again.initial_memory() == program.initial_memory()
        assert again.threads == program.threads
