"""Detect-stage fanout: the parallel segment sweep vs the serial path.

``detect_only(mode="parallel", jobs=N)`` fans a v4 container's segments
across a process pool: the parent maps the file and decodes only the
header and the footer index, each worker decompresses exactly the
segments it owns (plus the boundary-overlap window), and the merged
race-instance list is byte-identical to the serial sweep's — order and
truncation counters included.  This benchmark scales a row-heavy,
race-sparse workload (four threads of private loop traffic with an
occasional racy touch of one shared word, so decode dominates and the
racy pairs stay bounded), times the serial from-log path against the
fanout, and gates on the fanout's *critical path* being >=2x faster on
the largest workload.

The critical path is the honest parallel number on a loaded or
core-limited box: when four forked workers time-share one CPU they all
finish together at roughly the serial wall time, which says nothing
about the fanout itself.  Per-worker ``process_time()`` CPU seconds are
contention-independent, so

    critical_path_s = fanout_overhead + max(worker_cpu) + merge_s
    fanout_overhead = max(0, fanout_wall - sum(worker_cpu))

is what the same fanout costs with a free core per worker, and

    effective_parallel_s = min(parallel_wall_s, critical_path_s)

collapses to the measured wall time on an unloaded multicore machine.
Both raw wall times and every term of the model land in the JSON.

The parent-memory guarantee is asserted alongside the timing: a spy on
the container decompressor shows the parent inflates only the header
and footer frames (never a segment payload), and the parent's traced
peak on the parallel path stays below the serial decode's peak.

Runs both under pytest (``pytest benchmarks/bench_detect_parallel.py``)
and as a script::

    PYTHONPATH=src python benchmarks/bench_detect_parallel.py --quick

Either way the measured numbers land in
``benchmarks/results/BENCH_detect_parallel.json``.  ``--quick`` (used by
CI) keeps the equality and parent-memory assertions but runs single
repeats on the smaller sizes — the equivalence gate, not the timing
gate.
"""

from __future__ import annotations

import os
import tempfile
import time
import tracemalloc
import types

from conftest import SCALING_SEED, min_wall, scaling_main, write_result
from repro.analysis.perf import PerfStats
from repro.analysis.pipeline import detect_only, detection_report, render_report
from repro.isa import assemble
from repro.race.happens_before import parallel_detect_races
from repro.record import binary_format, record_run
from repro.record.binary_format import encode_log_segmented, read_segment_index
from repro.vm import RandomScheduler

#: Four threads, each hammering a *private* word in an inner loop, with
#: one syscall sequencer per outer iteration; threads ``a`` (a store)
#: and ``b`` (a load) additionally touch the one *shared* word once per
#: outer iteration.  Private traffic never races and only the a/b pair
#: shares an address, so the instance count — and with it the sweep,
#: materialization and result-pickling cost every path pays — stays a
#: sliver of the access-row decode volume the fanout parallelizes; the
#: sparse sequencer rows likewise keep every worker's prefix scan
#: (which is O(container), unlike its owned decode) negligible.
SOURCE_TEMPLATE = """
.data
shared: .word 0
pa: .word 0
pb: .word 0
pc: .word 0
pd: .word 0
{threads}
"""

THREAD_TEMPLATE = """.thread {name}
    li r5, {outer}
{name}o:
    li r1, {inner}
{name}i:
    load r2, [{private}]
    addi r2, r2, 1
    store r2, [{private}]
    subi r1, r1, 1
    bnez r1, {name}i
{touch}    sys_rand r4, 3
    subi r5, r5, 1
    bnez r5, {name}o
    halt
"""

#: Once per outer iteration: ``a`` publishes, ``b`` observes, the rest
#: stay private.  One store/load pair per overlapping a/b region pair
#: is the entire race surface.
SHARED_TOUCH = {
    "a": "    store r5, [shared]\n",
    "b": "    load r3, [shared]\n",
}

#: Sizes are outer-loop iteration counts per thread.
SIZES = (60, 240, 720)
QUICK_SIZES = (30, 90)
SEED = SCALING_SEED
INNER = 48
JOBS = 4
SEGMENT_BYTES = 16384
MAX_STEPS = 4_000_000


def _source(outer: int) -> str:
    threads = "\n".join(
        THREAD_TEMPLATE.format(
            name=name,
            private="p" + name,
            outer=outer,
            inner=INNER,
            touch=SHARED_TOUCH.get(name, ""),
        )
        for name in "abcd"
    )
    return SOURCE_TEMPLATE.format(threads=threads)


def _segmented(outer: int) -> bytes:
    program = assemble(_source(outer), name="parscale%d" % outer)
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=SEED, switch_probability=0.3),
        seed=SEED,
        max_steps=MAX_STEPS,
    )
    return encode_log_segmented(log, segment_bytes=SEGMENT_BYTES)


def _report_bytes(analysis) -> bytes:
    return render_report(detection_report(analysis))


def _time_parallel(path: str, repeats: int):
    """Min effective parallel time over ``repeats`` fanouts.

    Each repeat runs the whole fanout (fork, decode, sweep, merge) with
    a fresh :class:`PerfStats`; the repeat with the smallest effective
    time contributes every reported term so the row is self-consistent.
    """
    best = None
    for _ in range(repeats):
        perf = PerfStats()
        start = time.perf_counter()
        outcome = parallel_detect_races(path, JOBS, perf=perf)
        wall_s = time.perf_counter() - start
        worker_cpu = outcome.worker_cpu_seconds
        overhead_s = max(0.0, wall_s - sum(worker_cpu))
        critical_path_s = overhead_s + max(worker_cpu) + perf.parallel_merge_s
        effective_s = min(wall_s, critical_path_s)
        row = {
            "parallel_wall_s": round(wall_s, 4),
            "worker_cpu_s": [round(cpu, 4) for cpu in worker_cpu],
            "max_worker_cpu_s": round(max(worker_cpu), 4),
            "fanout_overhead_s": round(overhead_s, 4),
            "merge_s": round(perf.parallel_merge_s, 4),
            "critical_path_s": round(critical_path_s, 4),
            "effective_parallel_s": round(effective_s, 4),
            "segments": outcome.segments,
            "workers": outcome.workers,
            "boundary_stitches": outcome.boundary_stitches,
        }
        if best is None or effective_s < best["effective_parallel_s"]:
            best = row
    return best


def _parent_memory_profile(path: str, container_bytes: int) -> dict:
    """How much container data the parent itself touches.

    A spy on the decompressor records every frame the *parent* inflates
    (the forked workers inherit the spy, but their appends land in their
    own address space and never reach this list): on the parallel path
    that must be the header and footer frames only, a sliver of the
    container.  The traced allocation peak then pins down the merge-side
    footprint against the serial path's full-log materialization.
    """
    inflated = []
    real = binary_format.zlib

    def spying_decompress(payload, *args, **kwargs):
        inflated.append(len(payload))
        return real.decompress(payload, *args, **kwargs)

    binary_format.zlib = types.SimpleNamespace(
        decompress=spying_decompress, compress=real.compress
    )
    try:
        parallel_detect_races(path, JOBS)
    finally:
        binary_format.zlib = real
    parent_frame_bytes = sum(inflated)

    tracemalloc.start()
    parallel_detect_races(path, JOBS)
    _, parallel_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    detect_only(path, mode="from-log")
    _, serial_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "container_bytes": container_bytes,
        "parent_inflated_frames": len(inflated),
        "parent_inflated_bytes": parent_frame_bytes,
        "parent_inflated_fraction": round(parent_frame_bytes / container_bytes, 4),
        "parallel_parent_peak_bytes": parallel_peak,
        "serial_peak_bytes": serial_peak,
    }


def run_benchmark(sizes=SIZES, repeats: int = 3) -> dict:
    """Time serial vs fanned detect per size; assert identical reports."""
    rows = []
    memory = None
    for outer in sizes:
        data = _segmented(outer)
        index = read_segment_index(data)
        with tempfile.NamedTemporaryFile(
            prefix="bench-detect-parallel-", suffix=".rprb", delete=False
        ) as handle:
            handle.write(data)
            path = handle.name
        try:
            serial_s, serial = min_wall(
                repeats, lambda: detect_only(path, mode="from-log")
            )
            parallel = _time_parallel(path, repeats)
            fanned = detect_only(path, mode="parallel", jobs=JOBS)
            if _report_bytes(fanned) != _report_bytes(serial):
                raise AssertionError(
                    "parallel report bytes diverge from serial at outer=%d" % outer
                )
            if fanned.instances != serial.instances:
                raise AssertionError(
                    "parallel race set (order included) diverges at outer=%d" % outer
                )
            effective = parallel["effective_parallel_s"]
            rows.append(
                dict(
                    parallel,
                    outer=outer,
                    container_bytes=len(data),
                    instances=len(fanned.instances),
                    serial_s=round(serial_s, 4),
                    speedup=round(serial_s / effective, 2) if effective else 0.0,
                    reports_identical=True,
                )
            )
            if outer == sizes[-1]:
                memory = _parent_memory_profile(path, len(data))
        finally:
            os.unlink(path)
        assert len(index) >= JOBS, (
            "workload too small to fan out: %d segments" % len(index)
        )
    largest = rows[-1]
    return {
        "workloads": rows,
        "seed": SEED,
        "jobs": JOBS,
        "segment_bytes": SEGMENT_BYTES,
        "cores": len(os.sched_getaffinity(0)),
        "largest_outer": largest["outer"],
        "speedup": largest["speedup"],
        "parallel_wall_s": largest["parallel_wall_s"],
        "effective_parallel_s": largest["effective_parallel_s"],
        "serial_s": largest["serial_s"],
        "memory": memory,
        "reports_identical": all(row["reports_identical"] for row in rows),
    }


def test_fanout_beats_serial_sweep(results_dir):
    result = run_benchmark(sizes=SIZES, repeats=3)
    write_result(result, results_dir / "BENCH_detect_parallel.json")
    assert result["reports_identical"]
    assert result["speedup"] >= 2.0, (
        "fanned detect must be >=2x over the serial sweep on the largest "
        "workload (critical path; got %.2fx)" % result["speedup"]
    )
    memory = result["memory"]
    assert memory["parent_inflated_fraction"] < 0.1, (
        "parent inflated %.1f%% of the container — it must only touch the "
        "header and footer frames" % (100 * memory["parent_inflated_fraction"])
    )
    assert memory["parallel_parent_peak_bytes"] < memory["serial_peak_bytes"]


def main() -> int:
    return scaling_main(
        "detect_parallel",
        run_benchmark,
        sizes=SIZES,
        quick_sizes=QUICK_SIZES,
        repeats=3,
        description=__doc__.split("\n")[0],
        summary=lambda result: (
            "reports identical across %d workloads; largest speedup %.2fx "
            "(critical path, %d jobs on %d core%s; parent inflated %.2f%% "
            "of the container)"
            % (
                len(result["workloads"]),
                result["speedup"],
                result["jobs"],
                result["cores"],
                "" if result["cores"] == 1 else "s",
                100 * result["memory"]["parent_inflated_fraction"],
            )
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
