"""Hypothesis strategies generating random (always-terminating) programs.

Programs are built from a structured action language and rendered to
assembly, so every generated program assembles and halts:

* shared symbols ``x``/``y``/``z`` plus one mutex ``m``,
* actions: load, store, arithmetic, a locked block, an atomic add, a
  bounded counted loop, a syscall,
* every loop is counted (down-counting register, bounded iterations).

``fully_locked`` mode wraps *every* shared access in the mutex, producing
correctly synchronized programs for the zero-false-positive property.
"""

from __future__ import annotations

from hypothesis import strategies as st

SYMBOLS = ("x", "y", "z")

#: registers reserved: r14 loop counter, r15 atomic operand
_WORK_REGISTERS = tuple(range(0, 8))


def _action(draw, depth, fully_locked, lines, label_counter):
    # In fully_locked mode atomics are excluded: an atomic RMW and a
    # lock-protected plain store to the same word are mutually unordered
    # (the lock does not order against the atomic), so programs mixing
    # them are not actually interleaving-insensitive.
    top_level = ["load", "store", "arith", "locked", "loop", "syscall",
                 "heap_load", "heap_store"]
    nested = ["load", "store", "arith", "syscall", "heap_load", "heap_store"]
    if not fully_locked:
        top_level = top_level + ["atomic"]
        nested = nested + ["atomic"]
    kind = draw(st.sampled_from(top_level if depth == 0 else nested))
    symbol = draw(st.sampled_from(SYMBOLS))
    register = draw(st.sampled_from(_WORK_REGISTERS))
    if kind == "load":
        if fully_locked:
            lines.append("    lock [m]")
        lines.append("    load r%d, [%s]" % (register, symbol))
        if fully_locked:
            lines.append("    unlock [m]")
    elif kind == "store":
        if fully_locked:
            lines.append("    lock [m]")
        lines.append("    store r%d, [%s]" % (register, symbol))
        if fully_locked:
            lines.append("    unlock [m]")
    elif kind == "arith":
        op = draw(st.sampled_from(["addi", "subi", "xori", "ori", "andi", "muli"]))
        imm = draw(st.integers(min_value=0, max_value=255))
        other = draw(st.sampled_from(_WORK_REGISTERS))
        lines.append("    %s r%d, r%d, %d" % (op, register, other, imm))
    elif kind == "locked":
        lines.append("    lock [m]")
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            _action(draw, depth + 1, False, lines, label_counter)
        lines.append("    unlock [m]")
    elif kind == "atomic":
        lines.append("    li r15, 1")
        lines.append("    atom_add r%d, [%s], r15" % (register, symbol))
    elif kind == "loop":
        iterations = draw(st.integers(min_value=1, max_value=4))
        label = "L%d" % label_counter[0]
        label_counter[0] += 1
        lines.append("    li r14, %d" % iterations)
        lines.append("%s:" % label)
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            _action(draw, depth + 1, fully_locked, lines, label_counter)
        lines.append("    subi r14, r14, 1")
        lines.append("    bnez r14, %s" % label)
    elif kind == "syscall":
        call = draw(st.sampled_from(["sys_rand r%d, 16", "sys_time r%d", "sys_yield"]))
        lines.append("    " + (call % register if "%d" in call else call))
    elif kind == "heap_load":
        # r12 holds this thread's private heap buffer (see prologue).
        offset = draw(st.integers(min_value=0, max_value=3))
        lines.append("    load r%d, [r12+%d]" % (register, offset))
    elif kind == "heap_store":
        offset = draw(st.integers(min_value=0, max_value=3))
        lines.append("    store r%d, [r12+%d]" % (register, offset))


@st.composite
def programs(draw, fully_locked: bool = False, max_threads: int = 3):
    """Generate random assembly source (always assembles, always halts)."""
    thread_count = draw(st.integers(min_value=2, max_value=max_threads))
    lines = [".data"]
    for symbol in SYMBOLS:
        lines.append("%s: .word %d" % (symbol, draw(st.integers(0, 9))))
    lines.append("m: .word 0")
    label_counter = [0]
    def emit_body(action_count: int) -> None:
        # Prologue: every thread owns a private 4-word heap buffer in r12,
        # so heap actions are always in-bounds and race-free by design
        # (the interesting nondeterminism is the schedule-dependent base).
        lines.append("    li r13, 4")
        lines.append("    sys_alloc r12, r13")
        for _ in range(action_count):
            _action(draw, 0, fully_locked, lines, label_counter)
        lines.append("    sys_free r12")
        lines.append("    halt")

    shared_block = draw(st.booleans())
    if shared_block:
        names = " ".join("t%d" % i for i in range(thread_count))
        lines.append(".thread %s" % names)
        emit_body(draw(st.integers(min_value=2, max_value=8)))
    else:
        for thread in range(thread_count):
            lines.append(".thread t%d" % thread)
            emit_body(draw(st.integers(min_value=2, max_value=6)))
    return "\n".join(lines) + "\n"


seeds = st.integers(min_value=0, max_value=2**31 - 1)
