"""Unit tests for the operand model."""

import pytest

from repro.isa.operands import (
    Imm,
    Mem,
    NUM_REGISTERS,
    Reg,
    WORD_MASK,
    to_signed,
    to_unsigned,
)


class TestReg:
    def test_valid_range(self):
        assert Reg(0).index == 0
        assert Reg(NUM_REGISTERS - 1).index == NUM_REGISTERS - 1

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Reg(NUM_REGISTERS)
        with pytest.raises(ValueError):
            Reg(-1)

    def test_str(self):
        assert str(Reg(5)) == "r5"

    def test_equality_and_hash(self):
        assert Reg(3) == Reg(3)
        assert Reg(3) != Reg(4)
        assert len({Reg(3), Reg(3), Reg(4)}) == 2


class TestImm:
    def test_str(self):
        assert str(Imm(42)) == "42"
        assert str(Imm(-7)) == "-7"

    def test_frozen(self):
        with pytest.raises(Exception):
            Imm(1).value = 2


class TestMem:
    def test_register_base(self):
        assert str(Mem(base=2, offset=0)) == "[r2]"
        assert str(Mem(base=2, offset=8)) == "[r2+8]"
        assert str(Mem(base=2, offset=-8)) == "[r2-8]"

    def test_absolute(self):
        assert str(Mem(base=None, offset=4096)) == "[4096]"

    def test_symbolic(self):
        assert str(Mem(base=None, offset=4096, symbol="counter")) == "[counter]"


class TestConversions:
    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1) == WORD_MASK
        assert to_unsigned(1 << 64) == 0
        assert to_unsigned(5) == 5

    def test_to_signed(self):
        assert to_signed(WORD_MASK) == -1
        assert to_signed(1 << 63) == -(1 << 63)
        assert to_signed(5) == 5

    def test_round_trip(self):
        for value in (-5, 0, 5, (1 << 63) - 1, -(1 << 63)):
            assert to_signed(to_unsigned(value)) == value
