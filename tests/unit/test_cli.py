"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main

DEMO_SOURCE = """
.data
jobs:  .word 0
mutex: .word 0
stats: .word 0
.thread w1 w2
    li r1, 3
loop:
    lock [mutex]
    load r2, [jobs]
    addi r2, r2, 1
    store r2, [jobs]
    unlock [mutex]
    load r4, [stats]
    addi r4, r4, 1
    store r4, [stats]
    subi r1, r1, 1
    bnez r1, loop
    halt
"""

CLEAN_SOURCE = """
.data
jobs:  .word 0
mutex: .word 0
.thread w1 w2
    lock [mutex]
    load r2, [jobs]
    addi r2, r2, 1
    store r2, [jobs]
    unlock [mutex]
    halt
"""


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def recorded(tmp_path):
    program = tmp_path / "demo.asm"
    program.write_text(DEMO_SOURCE)
    log = tmp_path / "demo.replay.json"
    code, text = run_cli(
        ["record", str(program), "-o", str(log), "--seed", "7"]
    )
    assert code == 0
    return program, log, text


class TestRecord:
    def test_record_writes_log(self, recorded):
        program, log, text = recorded
        assert log.exists()
        assert "recorded" in text
        assert "bits/instr" in text

    def test_default_output_path_is_binary(self, tmp_path):
        program = tmp_path / "p.asm"
        program.write_text(CLEAN_SOURCE)
        code, _ = run_cli(["record", str(program), "--seed", "1"])
        assert code == 0
        log = tmp_path / "p.replay.bin"
        assert log.exists()
        assert log.read_bytes()[:4] == b"RPRB"
        # Binary logs feed every downstream subcommand transparently.
        code, text = run_cli(["replay", str(log)])
        assert code == 0 and "steps replayed" in text

    def test_json_destination_keeps_json(self, recorded):
        _, log, _ = recorded
        assert log.suffix == ".json"
        assert log.read_text().startswith("{")

    def test_round_robin_scheduler(self, tmp_path):
        program = tmp_path / "p.asm"
        program.write_text(CLEAN_SOURCE)
        code, _ = run_cli(
            ["record", str(program), "--scheduler", "round-robin"]
        )
        assert code == 0


class TestReplay:
    def test_replay_reports_threads(self, recorded):
        _, log, _ = recorded
        code, text = run_cli(["replay", str(log)])
        assert code == 0
        assert "w1" in text and "w2" in text
        assert "steps replayed" in text


class TestDetect:
    def test_detect_lists_unique_races(self, recorded):
        _, log, _ = recorded
        code, text = run_cli(["detect", str(log)])
        assert code == 0
        assert "unique static race(s)" in text
        assert "stats" in text

    def test_detect_clean_program(self, tmp_path):
        program = tmp_path / "clean.asm"
        program.write_text(CLEAN_SOURCE)
        log = tmp_path / "clean.replay.json"
        run_cli(["record", str(program), "-o", str(log)])
        code, text = run_cli(["detect", str(log)])
        assert code == 0
        assert "0 race instance(s), 0 unique" in text

    def test_detect_perf_breakdown(self, recorded):
        _, log, _ = recorded
        code, text = run_cli(["detect", str(log), "--perf"])
        assert code == 0
        assert "access index:" in text
        assert "detect sweep:" in text
        assert "detect.sweep" in text

    def test_detect_naive_reference_agrees(self, recorded):
        _, log, _ = recorded
        code_sweep, text_sweep = run_cli(["detect", str(log)])
        code_naive, text_naive = run_cli(["detect", str(log), "--naive"])
        assert code_sweep == code_naive == 0
        assert text_sweep == text_naive


class TestClassify:
    def test_classify_prints_triage(self, recorded):
        _, log, _ = recorded
        code, text = run_cli(["classify", str(log)])
        assert code == 0
        assert "potentially harmful (triage these)" in text
        assert "DATA RACE" in text

    def test_mark_benign_then_suppressed(self, recorded, tmp_path):
        _, log, _ = recorded
        suppressions = tmp_path / "triage.json"
        code, text = run_cli(
            [
                "mark-benign",
                str(log),
                "--race",
                "w1:6|w1:8",
                "--reason",
                "approximate stats",
                "--by",
                "alice",
                "--suppressions",
                str(suppressions),
            ]
        )
        assert code == 0 and suppressions.exists()
        code, text = run_cli(
            ["classify", str(log), "--suppressions", str(suppressions)]
        )
        assert code == 0
        assert "1 suppressed" in text

    def test_continue_extension_flag(self, recorded):
        _, log, _ = recorded
        code, text = run_cli(
            ["classify", str(log), "--continue-through-control-flow"]
        )
        assert code == 0


class TestValidate:
    def test_valid_log_reports_ok(self, recorded):
        _, log, _ = recorded
        code, text = run_cli(["validate", str(log)])
        assert code == 0
        assert "OK" in text

    def test_corrupt_log_lists_issues(self, recorded, tmp_path):
        import json

        _, log, _ = recorded
        payload = json.loads(log.read_text())
        payload["threads"]["w1"]["end"] = None
        bad = tmp_path / "bad.replay.json"
        bad.write_text(json.dumps(payload))
        code, text = run_cli(["validate", str(bad)])
        assert code == 0 and "issue(s)" in text
        code, _ = run_cli(["validate", str(bad), "--strict"])
        assert code == 1


class TestInspect:
    def test_inspect_shows_step_views(self, recorded):
        _, log, _ = recorded
        code, text = run_cli(
            ["inspect", str(log), "--thread", "w1", "--step", "0", "--count", "4"]
        )
        assert code == 0
        assert "w1 step 0" in text
        assert "->" in text  # register change rendering

    def test_inspect_unknown_thread(self, recorded):
        _, log, _ = recorded
        code, text = run_cli(["inspect", str(log), "--thread", "ghost"])
        assert code == 1
        assert "no thread" in text


class TestDatabaseAccumulation:
    def test_classify_with_database(self, recorded, tmp_path):
        _, log, _ = recorded
        database = tmp_path / "races.json"
        code, text = run_cli(["classify", str(log), "--database", str(database)])
        assert code == 0
        assert database.exists()
        assert "race database updated" in text
        # Second run accumulates without error.
        code, _ = run_cli(["classify", str(log), "--database", str(database)])
        assert code == 0


class TestCompare:
    def test_compare_and_gate(self, recorded, tmp_path):
        import json

        _, log, _ = recorded
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        run_cli(["classify", str(log), "--json", str(baseline)])
        run_cli(["classify", str(log), "--json", str(current)])
        code, text = run_cli(["compare", str(baseline), str(current)])
        assert code == 0
        assert "stable" in text

        # Inject a new harmful race into 'current' and gate.
        payload = json.loads(current.read_text())
        payload["races"].append(
            {"race": "w1:0|w1:1", "classification": "potentially-harmful"}
        )
        current.write_text(json.dumps(payload))
        code, text = run_cli(["compare", str(baseline), str(current), "--gate"])
        assert code == 1
        assert "gate this change" in text


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["frobnicate"])

    def test_experiment_requires_valid_id(self):
        with pytest.raises(SystemExit):
            run_cli(["experiment", "table99"])
