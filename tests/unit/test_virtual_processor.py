"""Unit tests for the both-orders virtual processor."""

import pytest

from repro.isa import assemble
from repro.record import record_run
from repro.replay import (
    OrderedReplay,
    ReplayFailure,
    ReplayFailureKind,
    VPConfig,
    VPThreadSpec,
    VirtualProcessor,
    same_state,
)
from repro.race.happens_before import find_races
from repro.vm import RandomScheduler


def setup_vp(source, seed=3, config=None, instance_index=0, name="vp"):
    """Record a program, find its first race, and build the VP for it."""
    program = assemble(source, name=name)
    _, log = record_run(
        program, scheduler=RandomScheduler(seed=seed, switch_probability=0.4), seed=seed
    )
    ordered = OrderedReplay(log, program)
    instances = find_races(ordered)
    assert instances, "expected at least one race instance"
    instance = instances[instance_index]
    live_in, freed = ordered.pair_snapshot(instance.region_a, instance.region_b)

    def spec(access, region):
        thread_log = log.threads[access.thread_name]
        return VPThreadSpec(
            thread_name=access.thread_name,
            block=program.blocks[thread_log.block],
            start_pc=ordered.region_start_pc(region),
            registers=ordered.live_in_registers(region),
            racing_step_offset=access.thread_step - region.start_step,
            racing_static_id=access.static_id,
            pc_footprint=set(thread_log.pc_footprint),
        )

    processor = VirtualProcessor(
        program,
        live_in,
        freed,
        spec(instance.access_a, instance.region_a),
        spec(instance.access_b, instance.region_b),
        config,
    )
    return program, instance, live_in, processor


RACY_RMW = """
.data
x: .word 10
.thread a b
    load r1, [x]
    addi r1, r1, 1
    store r1, [x]
    halt
"""

SAME_VALUE = """
.data
x: .word 7
.thread a b
    li r1, 7
    store r1, [x]
    load r2, [x]
    halt
"""


class TestBothOrders:
    def test_rmw_orders_differ(self):
        program, instance, live_in, processor = setup_vp(RACY_RMW)
        first = processor.run(first=instance.access_a.thread_name)
        second = processor.run(first=instance.access_b.thread_name)
        assert not same_state(first, second, live_in)

    def test_redundant_write_orders_agree(self):
        program, instance, live_in, processor = setup_vp(SAME_VALUE)
        first = processor.run(first=instance.access_a.thread_name)
        second = processor.run(first=instance.access_b.thread_name)
        assert same_state(first, second, live_in)

    def test_run_is_deterministic(self):
        program, instance, live_in, processor = setup_vp(RACY_RMW)
        name = instance.access_a.thread_name
        assert processor.run(first=name).registers == processor.run(first=name).registers

    def test_outcome_contains_both_threads(self):
        program, instance, live_in, processor = setup_vp(RACY_RMW)
        outcome = processor.run(first=instance.access_a.thread_name)
        assert set(outcome.registers) == {
            instance.access_a.thread_name,
            instance.access_b.thread_name,
        }
        assert all(steps > 0 for steps in outcome.steps.values())

    def test_executed_trace_recorded(self):
        program, instance, live_in, processor = setup_vp(RACY_RMW)
        outcome = processor.run(first=instance.access_a.thread_name)
        for thread_name, executed in outcome.executed.items():
            assert executed, "thread %s executed nothing" % thread_name

    def test_unknown_first_thread_rejected(self):
        program, instance, live_in, processor = setup_vp(RACY_RMW)
        with pytest.raises(ValueError):
            processor.run(first="ghost")


class TestSameState:
    def test_redundant_store_vs_no_store_is_equal(self):
        """A dirty write of the live-in value equals not writing at all."""
        from repro.replay.virtual_processor import VPOutcome

        base = dict(registers={"a": (0,) * 16}, end_pcs={"a": 5}, steps={"a": 1}, executed={"a": []})
        one = VPOutcome(dirty_memory={100: 7}, **base)
        other = VPOutcome(dirty_memory={}, **base)
        assert same_state(one, other, {100: 7})
        assert not same_state(one, other, {100: 6})

    def test_register_difference_detected(self):
        from repro.replay.virtual_processor import VPOutcome

        one = VPOutcome(
            registers={"a": (1,) + (0,) * 15},
            dirty_memory={},
            end_pcs={"a": 5},
            steps={"a": 1},
            executed={"a": []},
        )
        other = VPOutcome(
            registers={"a": (2,) + (0,) * 15},
            dirty_memory={},
            end_pcs={"a": 5},
            steps={"a": 1},
            executed={"a": []},
        )
        assert not same_state(one, other, {})

    def test_end_pc_difference_detected(self):
        from repro.replay.virtual_processor import VPOutcome

        one = VPOutcome(
            registers={"a": (0,) * 16},
            dirty_memory={},
            end_pcs={"a": 5},
            steps={"a": 1},
            executed={"a": []},
        )
        other = VPOutcome(
            registers={"a": (0,) * 16},
            dirty_memory={},
            end_pcs={"a": 6},
            steps={"a": 1},
            executed={"a": []},
        )
        assert not same_state(one, other, {})


class TestReplayFailures:
    def test_unknown_address_fails(self):
        source = """
.data
p: .word 0
.thread w
    li r1, 0x9999
    store r1, [p]
    halt
.thread r
    load r1, [p]
    load r2, [r1]
    halt
"""
        # Race on p: in the alternative order the reader dereferences
        # 0x9999, an address absent from the recorded live-in image —
        # OR the original reader read 0 and faulted.  Either way some
        # order must fail.
        program, instance, live_in, processor = setup_vp(source, seed=1)
        failures = []
        for first in (instance.access_a.thread_name, instance.access_b.thread_name):
            try:
                processor.run(first=first)
            except ReplayFailure as failure:
                failures.append(failure.kind)
        assert failures, "expected at least one replay failure"
        assert all(
            kind in (ReplayFailureKind.UNKNOWN_ADDRESS, ReplayFailureKind.MEMORY_FAULT)
            for kind in failures
        )

    def test_step_limit_fails(self):
        # The reader consumes the data, then spins on a completion flag the
        # writer only raises in its *suffix* (after its racing store).  The
        # reader is declared first, so its suffix replays before the
        # writer's: the alternative-order replay wedges in the spin and
        # hits the step limit.
        source = """
.data
flag: .word 0
data: .word 0
.thread r
    load r2, [data]
wait:
    load r1, [flag]
    beqz r1, wait
    halt
.thread w
    li r1, 1
    store r1, [data]
    store r1, [flag]
    halt
"""
        program = assemble(source, name="spin")
        _, log = record_run(program, scheduler=RandomScheduler(seed=3), seed=3)
        ordered = OrderedReplay(log, program)
        instances = [
            i
            for i in find_races(ordered)
            if i.address == program.data_address("data")
        ]
        assert instances
        from repro.race.classifier import ClassifierConfig, RaceClassifier

        classifier = RaceClassifier(ordered, config=ClassifierConfig(step_limit=500))
        outcomes = [classifier.classify_instance(i) for i in instances]
        assert any(
            c.failure_kind is ReplayFailureKind.STEP_LIMIT for c in outcomes
        ), [c.describe() for c in outcomes]

    def test_unknown_address_extension_reads_zero(self):
        source = """
.data
p: .word 0x8888
sink: .word 0
.thread w
    li r1, 0x9999
    store r1, [p]
    halt
.thread r
    li r9, 30
d:
    subi r9, r9, 1
    bnez r9, d
    load r1, [p]
    load r2, [r1+0]
    store r2, [sink]
    halt
"""
        # In the alternative order the reader dereferences the stale
        # 0x8888 pointer — an address absent from the live-in image.
        # Baseline: UNKNOWN_ADDRESS failure.  With
        # the §4.2.1 extension the read returns zero-filled memory and the
        # replay completes (classifying by state comparison instead).
        program = assemble(source, name="unk")
        from repro.vm import ExplicitScheduler

        _, log = record_run(program, scheduler=ExplicitScheduler([0] * 8 + [1] * 80))
        ordered = OrderedReplay(log, program)
        instances = [
            i for i in find_races(ordered) if i.address == program.data_address("p")
        ]
        assert instances
        from repro.race.classifier import ClassifierConfig, RaceClassifier

        baseline = RaceClassifier(ordered).classify_instance(instances[0])
        assert baseline.failure_kind is ReplayFailureKind.UNKNOWN_ADDRESS

        extended = RaceClassifier(
            ordered, config=ClassifierConfig(allow_unknown_addresses=True)
        ).classify_instance(instances[0])
        assert extended.failure_kind is not ReplayFailureKind.UNKNOWN_ADDRESS

    def test_unrecorded_control_flow_fails_without_extension(self):
        source = """
.data
guard: .word 0
.thread w
    li r1, 1
    store r1, [guard]
    halt
.thread r
    li r9, 25
d:
    subi r9, r9, 1
    bnez r9, d
    load r1, [guard]
    beqz r1, skip
    li r2, 111
skip:
    halt
"""
        # Reader originally sees guard=1 (delay) and takes the r2 path; the
        # alternative order reads 0 and goes down the skip edge... both pcs
        # are in the footprint (skip: halt is executed either way), so pick
        # the reverse: record with reader running FIRST so it sees 0 and
        # never records the r2 path.
        program = assemble(source, name="ucf")
        from repro.vm import ExplicitScheduler

        _, log = record_run(
            program, scheduler=ExplicitScheduler([1] * 60 + [0] * 10)
        )
        ordered = OrderedReplay(log, program)
        instances = find_races(ordered)
        assert instances
        from repro.race.classifier import RaceClassifier, ClassifierConfig

        outcome = RaceClassifier(ordered).classify_instance(instances[0])
        assert outcome.failure_kind is ReplayFailureKind.UNRECORDED_CONTROL_FLOW

        # The paper's §4.2.1 extension continues through the fresh path.
        extended = RaceClassifier(
            ordered, config=ClassifierConfig(allow_unrecorded_control_flow=True)
        ).classify_instance(instances[0])
        assert extended.failure_kind is None
