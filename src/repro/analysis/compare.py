"""Classification-drift comparison between two analysis rounds.

The paper's tool lives in a development loop: code changes, nightly
recordings re-run, and what matters is the *delta* — did a race disappear
(fixed), appear (regression), or change verdict (new evidence)?  This
module diffs two exported results documents (see
:mod:`repro.race.exporter`) into a typed drift report, suitable for CI
gates ("fail the build if a new potentially-harmful race appears").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union


@dataclass(frozen=True)
class Drift:
    """One race whose status changed between two rounds."""

    race: str
    kind: str  # "appeared" | "disappeared" | "reclassified" | "outcome-shift"
    before: str
    after: str

    def render(self) -> str:
        return "%-14s %-44s %s -> %s" % (self.kind, self.race, self.before, self.after)


@dataclass
class DriftReport:
    """All classification drift between a baseline and a new round."""

    program: str
    appeared: List[Drift] = field(default_factory=list)
    disappeared: List[Drift] = field(default_factory=list)
    reclassified: List[Drift] = field(default_factory=list)
    stable: int = 0

    @property
    def has_drift(self) -> bool:
        return bool(self.appeared or self.disappeared or self.reclassified)

    @property
    def new_harmful(self) -> List[Drift]:
        """Newly appeared or newly harmful races — what a CI gate blocks on."""
        return [
            drift
            for drift in self.appeared + self.reclassified
            if drift.after == "potentially-harmful"
        ]

    def render(self) -> str:
        lines = [
            "Classification drift for %s: %d appeared, %d disappeared, "
            "%d reclassified, %d stable"
            % (
                self.program,
                len(self.appeared),
                len(self.disappeared),
                len(self.reclassified),
                self.stable,
            )
        ]
        for group in (self.appeared, self.disappeared, self.reclassified):
            for drift in group:
                lines.append("  " + drift.render())
        if self.new_harmful:
            lines.append(
                "  !! %d new potentially-harmful race(s) — gate this change"
                % len(self.new_harmful)
            )
        return "\n".join(lines)


def _races_by_key(document: Dict) -> Dict[str, Dict]:
    return {race["race"]: race for race in document["races"]}


def compare_documents(baseline: Dict, current: Dict) -> DriftReport:
    """Diff two :func:`repro.race.exporter.results_to_json` documents."""
    report = DriftReport(program=current.get("program", "?"))
    old = _races_by_key(baseline)
    new = _races_by_key(current)

    for race, entry in new.items():
        if race not in old:
            report.appeared.append(
                Drift(
                    race=race,
                    kind="appeared",
                    before="(absent)",
                    after=entry["classification"],
                )
            )
        elif entry["classification"] != old[race]["classification"]:
            report.reclassified.append(
                Drift(
                    race=race,
                    kind="reclassified",
                    before=old[race]["classification"],
                    after=entry["classification"],
                )
            )
        else:
            report.stable += 1

    for race, entry in old.items():
        if race not in new:
            report.disappeared.append(
                Drift(
                    race=race,
                    kind="disappeared",
                    before=entry["classification"],
                    after="(absent)",
                )
            )
    return report


def compare_files(
    baseline_path: Union[str, Path], current_path: Union[str, Path]
) -> DriftReport:
    """Diff two exported results files."""
    baseline = json.loads(Path(baseline_path).read_text())
    current = json.loads(Path(current_path).read_text())
    return compare_documents(baseline, current)
