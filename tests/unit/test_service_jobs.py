"""Unit tests for the service job store: idempotency, transitions, recovery."""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis.cache import execution_cache_key
from repro.service.jobs import (
    JobSpec,
    JobState,
    JobStore,
    content_key_for,
)
from repro.workloads.suite import all_workloads


def _key(spec, workload=None):
    return content_key_for(spec, workload, 200_000, True, 256)


def _log_spec(data=b"not-a-real-log"):
    return JobSpec.for_log(data)


class TestContentKey:
    def test_workload_key_reuses_suite_cache_hash(self):
        workload = all_workloads()["lost_update_lu0"]
        spec = JobSpec.for_workload("lost_update_lu0", seed=3)
        cache_key = execution_cache_key(spec.execution(workload), 200_000, True)
        key = _key(spec, workload)
        other = content_key_for(spec, workload, 200_000, True, 128)
        # Same recording, different analysis parameter -> different job.
        assert key != other
        # Same everything -> same job key, and it derives from the
        # suite-cache content hash (changing the seed changes both).
        respec = JobSpec.for_workload("lost_update_lu0", seed=4)
        assert execution_cache_key(respec.execution(workload), 200_000, True) != cache_key
        assert _key(respec, workload) != key

    def test_log_key_is_content_addressed(self):
        assert _key(_log_spec(b"aa")) == _key(_log_spec(b"aa"))
        assert _key(_log_spec(b"aa")) != _key(_log_spec(b"ab"))

    def test_kind_disambiguates(self):
        workload = all_workloads()["lost_update_lu0"]
        workload_key = _key(JobSpec.for_workload("lost_update_lu0"), workload)
        assert workload_key != _key(_log_spec())


class TestDetectMode:
    def test_mode_disambiguates_content_key(self):
        """A detect-only job is different work than full analysis of the
        same bytes — the two must never deduplicate onto one job."""
        assert _key(_log_spec()) != _key(JobSpec.for_log(b"not-a-real-log", mode="detect"))
        workload = all_workloads()["lost_update_lu0"]
        full = JobSpec.for_workload("lost_update_lu0", seed=3)
        detect = JobSpec.for_workload("lost_update_lu0", seed=3, mode="detect")
        assert _key(full, workload) != _key(detect, workload)

    def test_full_mode_keys_unchanged_by_mode_field(self):
        # Pre-mode journals carry no "mode"; the default spec must hash
        # identically so recovered jobs keep deduplicating.
        spec = _log_spec()
        assert spec.mode == "full"
        assert "mode" not in spec.to_json()

    def test_detect_mode_round_trips_through_json(self):
        spec = JobSpec.for_log(b"xy", mode="detect")
        payload = spec.to_json()
        assert payload["mode"] == "detect"
        assert JobSpec.from_json(payload).mode == "detect"
        # Absent field decodes as full — old journal lines replay as-is.
        del payload["mode"]
        assert JobSpec.from_json(payload).mode == "full"

    def test_status_json_reports_mode(self):
        store = JobStore()
        spec = JobSpec.for_log(b"xy", mode="detect")
        job, _ = store.submit(spec, _key(spec))
        assert job.status_json()["mode"] == "detect"


class TestSubmission:
    def test_submit_is_idempotent(self):
        store = JobStore()
        spec = _log_spec()
        job, created = store.submit(spec, _key(spec))
        again, recreated = store.submit(spec, _key(spec))
        assert created and not recreated
        assert again is job
        assert len(store) == 1

    def test_done_job_still_deduplicates(self):
        store = JobStore()
        spec = _log_spec()
        job, _ = store.submit(spec, _key(spec))
        store.mark_running(job.job_id)
        store.mark_done(job.job_id, {"races": []})
        again, created = store.submit(spec, _key(spec))
        assert not created
        assert again.state is JobState.DONE
        assert again.report == {"races": []}

    def test_failed_job_is_revived(self):
        store = JobStore()
        spec = _log_spec()
        job, _ = store.submit(spec, _key(spec))
        store.mark_running(job.job_id)
        store.mark_failed(job.job_id, "boom")
        revived, created = store.submit(spec, _key(spec))
        assert created
        assert revived.job_id == job.job_id
        assert revived.state is JobState.QUEUED
        assert revived.attempts == 0
        assert revived.error is None

    def test_transitions_and_counts(self):
        store = JobStore()
        spec = _log_spec()
        job, _ = store.submit(spec, _key(spec))
        assert store.counts()["queued"] == 1
        store.mark_running(job.job_id)
        assert job.attempts == 1
        store.mark_requeued(job.job_id, error="transient")
        assert job.state is JobState.QUEUED
        assert job.error == "transient"
        store.mark_running(job.job_id)
        assert job.attempts == 2
        store.mark_done(job.job_id, {"ok": True}, elapsed_s=0.5)
        counts = store.counts()
        assert counts["done"] == 1 and counts["queued"] == 0
        assert job.error is None and job.elapsed_s == 0.5

    def test_done_state_never_visible_before_report(self):
        # HTTP handlers read job.state/job.report without the store
        # lock: DONE must imply the report is already assigned.
        store = JobStore()
        specs = [_log_spec(b"ordering-%d" % index) for index in range(50)]
        jobs = [store.submit(spec, _key(spec))[0] for spec in specs]
        torn = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                for job in jobs:
                    if job.state is JobState.DONE and job.report is None:
                        torn.append(job.job_id)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        for job in jobs:
            store.mark_running(job.job_id)
            store.mark_done(job.job_id, {"races": []})
        stop.set()
        thread.join(5.0)
        assert torn == []


class TestRollback:
    def test_rollback_new_job_discards_it(self):
        store = JobStore()
        spec = _log_spec()
        job, created = store.submit(spec, _key(spec))
        assert created
        store.rollback_submit(job.job_id)
        assert store.get(job.job_id) is None
        assert store.by_content_key(_key(spec)) is None
        assert len(store) == 0
        # The key is free again: the next submission is a fresh admit.
        again, recreated = store.submit(spec, _key(spec))
        assert recreated and again.state is JobState.QUEUED

    def test_rollback_revived_job_restores_prior_state(self):
        store = JobStore()
        spec = _log_spec()
        job, _ = store.submit(spec, _key(spec))
        store.mark_running(job.job_id)
        store.mark_failed(job.job_id, "boom")
        revived, created = store.submit(spec, _key(spec))
        assert created and revived.job_id == job.job_id
        store.rollback_submit(job.job_id, JobState.FAILED, "boom")
        assert job.state is JobState.FAILED
        assert job.error == "boom"

    def test_rollback_is_journaled(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        store = JobStore(path)
        kept, _ = store.submit(_log_spec(b"kept"), _key(_log_spec(b"kept")))
        rejected, _ = store.submit(
            _log_spec(b"rejected"), _key(_log_spec(b"rejected"))
        )
        store.rollback_submit(rejected.job_id)
        store.close()

        recovered = JobStore.open(path)
        assert recovered.get(rejected.job_id) is None
        assert [job.job_id for job in recovered.pending()] == [kept.job_id]


class TestJournalRecovery:
    def _journaled(self, tmp_path):
        return tmp_path / "journal.jsonl"

    def test_queued_and_running_jobs_recover(self, tmp_path):
        path = self._journaled(tmp_path)
        store = JobStore(path)
        queued, _ = store.submit(_log_spec(b"q"), _key(_log_spec(b"q")))
        running, _ = store.submit(_log_spec(b"r"), _key(_log_spec(b"r")))
        store.mark_running(running.job_id)
        store.close()  # crash: no drain, no final states

        recovered = JobStore.open(path)
        q = recovered.get(queued.job_id)
        r = recovered.get(running.job_id)
        assert q.state is JobState.QUEUED and q.recovered
        assert r.state is JobState.QUEUED and r.recovered
        # The interrupted attempt stays on the counter.
        assert r.attempts == 1
        assert [job.job_id for job in recovered.pending()] == [
            queued.job_id,
            running.job_id,
        ]

    def test_done_jobs_recover_with_reports(self, tmp_path):
        path = self._journaled(tmp_path)
        store = JobStore(path)
        job, _ = store.submit(_log_spec(), _key(_log_spec()))
        store.mark_running(job.job_id)
        store.mark_done(job.job_id, {"races": [1, 2]}, perf={"jobs": 1}, elapsed_s=1.5)
        store.close()

        recovered = JobStore.open(path)
        back = recovered.get(job.job_id)
        assert back.state is JobState.DONE and not back.recovered
        assert back.report == {"races": [1, 2]}
        assert back.perf == {"jobs": 1}
        assert back.elapsed_s == 1.5
        assert recovered.pending() == []
        # Idempotency map survives: resubmitting finds the done job.
        again, created = recovered.submit(_log_spec(), _key(_log_spec()))
        assert not created and again.job_id == job.job_id

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = self._journaled(tmp_path)
        store = JobStore(path)
        job, _ = store.submit(_log_spec(), _key(_log_spec()))
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "state", "job_id": "%s", "sta' % job.job_id)

        recovered = JobStore.open(path)
        assert recovered.get(job.job_id).state is JobState.QUEUED

    def test_double_crash_still_recovers(self, tmp_path):
        path = self._journaled(tmp_path)
        store = JobStore(path)
        job, _ = store.submit(_log_spec(), _key(_log_spec()))
        store.mark_running(job.job_id)
        store.close()
        # First recovery re-journals running -> queued, then crashes too.
        JobStore.open(path).close()
        recovered = JobStore.open(path)
        assert recovered.get(job.job_id).state is JobState.QUEUED
        assert recovered.get(job.job_id).attempts == 1

    def test_journal_lines_are_json(self, tmp_path):
        path = self._journaled(tmp_path)
        store = JobStore(path)
        job, _ = store.submit(_log_spec(), _key(_log_spec()))
        store.mark_running(job.job_id)
        store.close()
        for line in path.read_text().splitlines():
            assert json.loads(line)["event"] in ("submit", "state", "done")


class TestStatusJson:
    def test_status_document_fields(self):
        store = JobStore()
        workload = all_workloads()["lost_update_lu0"]
        spec = JobSpec.for_workload("lost_update_lu0", seed=2)
        job, _ = store.submit(spec, _key(spec, workload))
        status = job.status_json()
        assert status["kind"] == "workload"
        assert status["workload"] == "lost_update_lu0"
        assert status["seed"] == 2
        assert status["state"] == "queued"
        assert status["has_report"] is False
        assert job.job_id.startswith("j-")
