"""Harmful-first ordering of fleet records.

Reuses the evidence weights from :mod:`repro.race.ranking` so a race
scores the same whether ranked from one session's in-memory results or
from fleet aggregates.  Fleet records lose per-instance failure kinds
(only counts survive aggregation), so the failure component here scores
the replay-failure *fraction* rather than the strongest observed kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..race.ranking import (
    BREADTH_SATURATION,
    FAILURE_WEIGHT_SCALE,
    STATE_CHANGE_WEIGHT,
    VOLUME_SATURATION,
)
from .records import BENIGN, DETECTED, HARMFUL, FleetRecord

#: Report ordering: harmful races first, then detected-but-unreplayed
#: (unknown is riskier than known-benign), then benign.
GROUP_ORDER = {HARMFUL: 0, DETECTED: 1, BENIGN: 2}


@dataclass(frozen=True)
class FleetPriority:
    """A fleet record's triage score, decomposed like a session score."""

    total: float
    state_change_strength: float
    failure_strength: float
    breadth: float
    volume: float

    def to_json(self) -> Dict:
        return {
            "total": round(self.total, 4),
            "state_change_strength": round(self.state_change_strength, 4),
            "failure_strength": round(self.failure_strength, 4),
            "breadth": round(self.breadth, 4),
            "volume": round(self.volume, 4),
        }


def fleet_priority(record: FleetRecord) -> FleetPriority:
    """Score one fleet record's evidence of harm (higher = triage sooner)."""
    counts = record.counts()
    replayed = (
        counts["no_state_change"] + counts["state_change"] + counts["replay_failure"]
    )
    state_fraction = counts["state_change"] / replayed if replayed else 0.0
    failure_fraction = counts["replay_failure"] / replayed if replayed else 0.0
    executions = len(record.executions()) or 1
    breadth = min(executions, BREADTH_SATURATION) / float(BREADTH_SATURATION)
    volume = min(counts["total"], VOLUME_SATURATION) / float(VOLUME_SATURATION)

    state_component = STATE_CHANGE_WEIGHT * state_fraction
    failure_component = FAILURE_WEIGHT_SCALE * failure_fraction
    return FleetPriority(
        total=state_component + failure_component + breadth + volume,
        state_change_strength=state_component,
        failure_strength=failure_component,
        breadth=breadth,
        volume=volume,
    )


def rank_records(records: Iterable[FleetRecord]) -> List[FleetRecord]:
    """Harmful first, then by descending score, stable on identity."""
    return sorted(
        records,
        key=lambda record: (
            GROUP_ORDER.get(record.classification, len(GROUP_ORDER)),
            -fleet_priority(record).total,
            record.program,
            record.race,
            record.digest,
        ),
    )
