"""User-constructed synchronization workloads (Table 2 category 1).

The paper: "Programmers may construct their own synchronization primitives
without using fences or the atomic operations ... the happens-before
algorithm will incorrectly classify a race between two user constructed
synchronization operations, which is essentially correct synchronization,
as a data race."

``flag_publish`` is the classic motif: a publisher writes a payload and
then raises a plain-store flag; a subscriber spins on the flag and then
reads the payload.  Both races are really benign:

* the **flag race** replays to No-State-Change (the subscriber converges
  to the same exit state whichever side of the store its read lands on);
* the **payload race** cannot be replayed in the alternative order at all
  — the subscriber's prefix spins forever waiting for a flag the virtual
  processor hasn't set — so it surfaces as a Replay-Failure and lands in
  the paper's "misclassified due to replayer limitation" bucket (§5.2.4).
"""

from __future__ import annotations

from ..race.heuristics import BenignCategory
from .base import GroundTruth, RaceExpectation, Workload, render_template

_FLAG_PUBLISH_TEMPLATE = """
.data
data_{v}: .word 0
flag_{v}: .word 0
sink_{v}: .word 0
.thread pub_{v}
    li r1, 42
    store r1, [data_{v}]        ; payload write (user-sync protected)
    li r2, 1
    store r2, [flag_{v}]        ; flag raise (plain store, no fence)
    halt
.thread sub_{v}
spin:
    load r1, [flag_{v}]         ; spin read of the hand-rolled flag
    beqz r1, spin
    load r2, [data_{v}]         ; payload read, ordered only by the flag
    store r2, [sink_{v}]
    halt
"""


def flag_publish(variant: int = 0) -> Workload:
    """Hand-rolled flag synchronization between a publisher and subscriber."""
    v = "fp%d" % variant
    return Workload(
        name="flag_publish_%s" % v,
        source=render_template(_FLAG_PUBLISH_TEMPLATE, v=v),
        description=(
            "Publisher writes a payload then raises a plain-store flag; "
            "subscriber spins on the flag then consumes the payload."
        ),
        expectations=(
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="flag_%s" % v,
                category=BenignCategory.USER_CONSTRUCTED_SYNC,
                note="spin-wait flag is a user-constructed synchronization primitive",
            ),
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="data_%s" % v,
                category=BenignCategory.USER_CONSTRUCTED_SYNC,
                note="payload is ordered by the flag protocol; replay cannot see that",
            ),
        ),
        recommended_seeds=(3, 11, 27),
    )


_BARRIER_TEMPLATE = """
.data
arrived_{v}: .word 0
bdata_{v}:   .space 2
bsum_{v}:    .word 0
.thread bar1_{v} bar2_{v}
    sys_getpid r6               ; any per-thread setup work
    li r1, 1
    atom_add r2, [arrived_{v}], r1   ; announce arrival (atomic)
bspin:
    load r3, [arrived_{v}]      ; racing read: spin until everyone arrived
    slti r4, r3, 2
    bnez r4, bspin
    load r5, [bsum_{v}]         ; past the barrier: read the shared sum
    halt
"""


def barrier(variant: int = 0) -> Workload:
    """A counter barrier: atomic arrivals, plain-load spin on the count.

    This workload documents a *scope decision* of the paper's detector:
    races are only reported between plain memory operations inside
    sequencing regions.  The spin's plain loads conflict with the other
    thread's **atomic** arrival increment, but the atomic is a sequencer
    point — a region boundary — so the pair is never examined and the
    detector stays silent.  That is the correct reading of Section 3.4
    (and harmless here: the polled counter is monotone), but it means
    sync-vs-plain conflicts are invisible by construction — worth knowing
    when writing workloads.
    """
    v = "br%d" % variant
    return Workload(
        name="barrier_%s" % v,
        source=render_template(_BARRIER_TEMPLATE, v=v),
        description=(
            "Two threads meet at a counter barrier; arrivals are atomic "
            "but the wait loop polls with plain loads."
        ),
        expect_race_free=True,  # by the detector's (paper's) definition
        recommended_seeds=(22, 35),
    )


_HANDSHAKE_TEMPLATE = """
.data
req_{v}: .word 0
ack_{v}: .word 0
.thread cli_{v}
    li r1, 1
    store r1, [req_{v}]         ; raise request (plain store)
cwait:
    load r2, [ack_{v}]          ; spin on acknowledgement
    beqz r2, cwait
    halt
.thread srv_{v}
swait:
    load r1, [req_{v}]          ; spin on request
    beqz r1, swait
    li r2, 1
    store r2, [ack_{v}]         ; acknowledge (plain store)
    halt
"""


_CONSUME_THEN_WAIT_TEMPLATE = """
.data
cwdata_{v}: .word 7
cwdone_{v}: .word 0
.thread cwr_{v}
    load r2, [cwdata_{v}]       ; racing read of a redundantly-written cell
cwwait:
    load r1, [cwdone_{v}]       ; spin for the writer's completion signal
    beqz r1, cwwait
    halt
.thread cww_{v}
    li r2, 7
    store r2, [cwdata_{v}]      ; redundant write: the value is already 7
    li r1, 1
    store r1, [cwdone_{v}]      ; raise completion (plain store)
    halt
"""


def consume_then_wait(variant: int = 0) -> Workload:
    """Consume-then-wait: redundant data write plus completion-flag spin.

    Both races are really benign (the data write is redundant; the flag is
    hand-rolled sync), but the data race cannot be replayed in the
    alternative order: the reader's suffix spins for a completion flag the
    writer only raises later, so the replay wedges on its step limit — the
    paper's "replayer limitation" misclassification, by construction.
    """
    v = "cw%d" % variant
    return Workload(
        name="consume_then_wait_%s" % v,
        source=render_template(_CONSUME_THEN_WAIT_TEMPLATE, v=v),
        description=(
            "Reader consumes a (redundantly re-written) cell then spins on "
            "a completion flag the writer raises afterwards."
        ),
        expectations=(
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="cwdata_%s" % v,
                category=BenignCategory.REDUNDANT_WRITE,
                note="the write re-stores the value already present",
            ),
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="cwdone_%s" % v,
                category=BenignCategory.USER_CONSTRUCTED_SYNC,
                note="completion flag of a hand-rolled wait",
            ),
        ),
        recommended_seeds=(13, 29),
    )


def handshake(variant: int = 0) -> Workload:
    """Two-sided busy-wait handshake built from plain loads and stores."""
    v = "hs%d" % variant
    return Workload(
        name="handshake_%s" % v,
        source=render_template(_HANDSHAKE_TEMPLATE, v=v),
        description="Request/acknowledge handshake using spin loops on plain flags.",
        expectations=(
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="req_%s" % v,
                category=BenignCategory.USER_CONSTRUCTED_SYNC,
                note="request flag of a hand-rolled handshake",
            ),
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="ack_%s" % v,
                category=BenignCategory.USER_CONSTRUCTED_SYNC,
                note="acknowledge flag of a hand-rolled handshake",
            ),
        ),
        recommended_seeds=(5, 19),
    )
