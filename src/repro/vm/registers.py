"""Per-thread register file."""

from __future__ import annotations

from typing import List, Tuple

from ..isa.operands import NUM_REGISTERS, to_unsigned


class RegisterFile:
    """Sixteen 64-bit general-purpose registers, zero-initialised."""

    __slots__ = ("_values",)

    def __init__(self, values: Tuple[int, ...] = ()):
        if values:
            if len(values) != NUM_REGISTERS:
                raise ValueError(
                    "expected %d register values, got %d" % (NUM_REGISTERS, len(values))
                )
            self._values: List[int] = [to_unsigned(value) for value in values]
        else:
            self._values = [0] * NUM_REGISTERS

    def read(self, index: int) -> int:
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        self._values[index] = to_unsigned(value)

    def snapshot(self) -> Tuple[int, ...]:
        """Immutable copy of the whole file (live-in/live-out comparisons)."""
        return tuple(self._values)

    def restore(self, snapshot: Tuple[int, ...]) -> None:
        if len(snapshot) != NUM_REGISTERS:
            raise ValueError("bad register snapshot length %d" % len(snapshot))
        self._values = [to_unsigned(value) for value in snapshot]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        nonzero = {
            "r%d" % index: value
            for index, value in enumerate(self._values)
            if value
        }
        return "RegisterFile(%r)" % nonzero
