"""(De)serialization of replay logs: binary container first, JSON fallback.

A serialized log is self-contained: it embeds the program source, so a log
file plus this library is sufficient to replay, detect, and classify — the
paper's model of shipping a replay log to the developer alongside the race
report.

Two on-disk representations exist:

* the **binary container** (:mod:`.binary_format`) — versioned magic
  bytes, varint/zigzag packing, zlib compression.  The default for every
  new log: suite runs stop paying JSON text encode/decode and the files
  are several times smaller;
* the legacy **JSON document** — kept for old fixtures, hand inspection
  and tooling interop.  ``save_log`` picks it automatically for ``.json``
  paths (or on request), and ``load_log`` detects the format from the
  file's leading bytes, so callers never need to know which one they
  have.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..isa.program import StaticInstructionId
from .log import (
    LoadRecord,
    ReplayLog,
    SequencerRecord,
    SyscallRecord,
    ThreadEnd,
    ThreadLog,
)

FORMAT_VERSION = 1


def _static_id_to_json(static_id: Optional[StaticInstructionId]):
    if static_id is None:
        return None
    return [static_id.block, static_id.index]


def _static_id_from_json(data) -> Optional[StaticInstructionId]:
    if data is None:
        return None
    return StaticInstructionId(block=data[0], index=data[1])


def thread_log_to_json(log: ThreadLog) -> Dict[str, Any]:
    return {
        "name": log.name,
        "tid": log.tid,
        "block": log.block,
        "initial_registers": list(log.initial_registers),
        "loads": [
            [record.thread_step, record.address, record.value]
            for record in (log.loads[step] for step in sorted(log.loads))
        ],
        "syscalls": [
            [record.thread_step, record.name, record.result]
            for record in (log.syscalls[step] for step in sorted(log.syscalls))
        ],
        "sequencers": [
            [
                sequencer.thread_step,
                sequencer.timestamp,
                sequencer.kind,
                _static_id_to_json(sequencer.static_id),
            ]
            for sequencer in log.sequencers
        ],
        "pc_footprint": sorted(log.pc_footprint),
        "steps": log.steps,
        "end": (
            [log.end.thread_step, log.end.reason, log.end.fault_kind]
            if log.end
            else None
        ),
    }


def thread_log_from_json(data: Dict[str, Any]) -> ThreadLog:
    log = ThreadLog(
        name=data["name"],
        tid=data["tid"],
        block=data["block"],
        initial_registers=tuple(data["initial_registers"]),
        steps=data["steps"],
    )
    for step, address, value in data["loads"]:
        log.loads[step] = LoadRecord(thread_step=step, address=address, value=value)
    for step, name, result in data["syscalls"]:
        log.syscalls[step] = SyscallRecord(thread_step=step, name=name, result=result)
    for step, timestamp, kind, static_id in data["sequencers"]:
        log.sequencers.append(
            SequencerRecord(
                thread_step=step,
                timestamp=timestamp,
                kind=kind,
                static_id=_static_id_from_json(static_id),
            )
        )
    log.pc_footprint = set(data["pc_footprint"])
    if data["end"] is not None:
        step, reason, fault_kind = data["end"]
        log.end = ThreadEnd(thread_step=step, reason=reason, fault_kind=fault_kind)
    return log


def log_to_json(log: ReplayLog) -> Dict[str, Any]:
    """Convert a :class:`ReplayLog` to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "program_name": log.program_name,
        "program_source": log.program_source,
        "seed": log.seed,
        "scheduler": log.scheduler,
        "threads": {
            name: thread_log_to_json(thread) for name, thread in log.threads.items()
        },
        "global_order": (
            [[tid, step] for tid, step in log.global_order]
            if log.global_order is not None
            else None
        ),
    }


def log_from_json(data: Dict[str, Any]) -> ReplayLog:
    """Rebuild a :class:`ReplayLog` from :func:`log_to_json` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError("unsupported replay-log format version: %r" % version)
    return ReplayLog(
        program_name=data["program_name"],
        program_source=data["program_source"],
        threads={
            name: thread_log_from_json(thread)
            for name, thread in data["threads"].items()
        },
        seed=data["seed"],
        scheduler=data["scheduler"],
        global_order=(
            [(tid, step) for tid, step in data["global_order"]]
            if data["global_order"] is not None
            else None
        ),
    )


def save_log(
    log: ReplayLog,
    path: Union[str, Path],
    format: str = "auto",
    segment_bytes: Optional[int] = None,
) -> None:
    """Write a replay log to ``path``.

    ``format`` is ``"binary"`` (the versioned container), ``"json"`` (the
    legacy document) or ``"auto"`` — binary-first, falling back to JSON
    only when the destination carries a ``.json`` suffix (matched
    case-insensitively: a ``.JSON`` path must not silently get a binary
    log) so existing fixtures and text-based tooling keep working.  The
    v2 predicted-load elision is a binary-container feature; JSON output
    always spells every load value out.

    ``segment_bytes`` selects the **v4 segmented container** with that
    window size — the format streaming consumers (``detect --stream``,
    ``analyze --stream``) iterate segment by segment.  It is a
    binary-only knob; combining it with JSON output is an error rather
    than a silent downgrade.
    """
    from .binary_format import encode_log, encode_log_segmented

    path = Path(path)
    if format == "auto":
        format = "json" if path.suffix.lower() == ".json" else "binary"
    if format == "binary":
        if segment_bytes is not None:
            path.write_bytes(encode_log_segmented(log, segment_bytes=segment_bytes))
        else:
            path.write_bytes(encode_log(log))
    elif format == "json":
        if segment_bytes is not None:
            raise ValueError(
                "segment_bytes is a binary-container feature; "
                "JSON logs cannot be segmented"
            )
        path.write_text(json.dumps(log_to_json(log)))
    else:
        raise ValueError("unknown replay-log format: %r" % format)


def load_log(path: Union[str, Path]) -> ReplayLog:
    """Read a replay log, auto-detecting binary container vs JSON."""
    return load_log_bytes(Path(path).read_bytes())


def load_log_bytes(data: bytes) -> ReplayLog:
    """Decode replay-log bytes, auto-detecting binary container vs JSON.

    The in-memory sibling of :func:`load_log`, for logs that never touch
    the filesystem — e.g. uploads to the analysis service.
    """
    from .binary_format import decode_log, is_binary_log

    if is_binary_log(data):
        return decode_log(data)
    return log_from_json(json.loads(data.decode("utf-8")))


def load_log_sections(path: Union[str, Path]):
    """Read only the detection-facing sections of a log at ``path``.

    Returns :class:`~repro.record.binary_format.LogSections` (identity,
    sequencers, captured columns) via the seeking sectioned reader —
    registers, loads, syscalls and footprints are skipped, not decoded —
    or ``None`` when the file is a JSON document (which has no sectioned
    representation; callers fall back to :func:`load_log`).  This is what
    detect-only consumers should call instead of a full decode.
    """
    return load_log_sections_bytes(Path(path).read_bytes())


def load_log_sections_bytes(data: bytes):
    """In-memory sibling of :func:`load_log_sections` (service uploads)."""
    from .binary_format import decode_log_sections, is_binary_log

    if is_binary_log(data):
        return decode_log_sections(data)
    return None
