"""Data model for races: dynamic instances and unique static races.

The paper's accounting distinguishes:

* a **data race instance** — one concrete pair of conflicting, unordered
  dynamic memory operations (16,642 of these in the paper's corpus);
* a **unique (static) data race** — the pair of static instructions
  involved (68 of these).  Many instances map to one static race, within
  one execution and across executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..isa.program import Program, StaticInstructionId
from ..replay.regions import SequencingRegion

#: A unique static race: the two static instructions, canonically ordered.
StaticRaceKey = Tuple[StaticInstructionId, StaticInstructionId]


def static_race_key(
    first: StaticInstructionId, second: StaticInstructionId
) -> StaticRaceKey:
    """Canonical (sorted) static-race key for an instruction pair."""
    if first.sort_key() <= second.sort_key():
        return (first, second)
    return (second, first)


def static_key_to_text(key: StaticRaceKey) -> str:
    """The canonical ``"block:i|block:j"`` text form of a static race key.

    This is the identity every persistence surface shares — the race
    database, suppression lists, exported reports and the fleet store
    all spell a unique race exactly this way, so records written by one
    tool resolve in another.
    """
    return "%s|%s" % (key[0], key[1])


def static_key_from_text(text: str) -> StaticRaceKey:
    """Parse :func:`static_key_to_text` output back into a key."""
    parts = text.split("|")
    if len(parts) != 2:
        raise ValueError(
            "expected a static race key like 'block:3|block:5', got %r" % text
        )

    def parse(one: str) -> StaticInstructionId:
        block, _, index = one.rpartition(":")
        return StaticInstructionId(block=block, index=int(index))

    return (parse(parts[0]), parse(parts[1]))


def describe_static_race(key: StaticRaceKey, program: Program) -> str:
    """Human-readable description of a static race for reports."""
    return "%s  <->  %s" % (
        program.describe_instruction(key[0]),
        program.describe_instruction(key[1]),
    )


@dataclass(frozen=True)
class RaceAccess:
    """One side of a race instance: a dynamic memory operation."""

    thread_name: str
    tid: int
    thread_step: int
    static_id: StaticInstructionId
    address: int
    value: int
    is_write: bool

    def __str__(self) -> str:
        kind = "W" if self.is_write else "R"
        return "%s@%s step %d %s[%#x]=%d" % (
            self.thread_name,
            self.static_id,
            self.thread_step,
            kind,
            self.address,
            self.value,
        )


@dataclass(frozen=True)
class RaceInstance:
    """One dynamic data race: two conflicting accesses in overlapping regions.

    ``access_a`` belongs to the region whose opening sequencer is earlier
    (ties broken by tid) — the canonical "originally first" side when no
    finer-grained order information is available.
    """

    access_a: RaceAccess
    access_b: RaceAccess
    region_a: SequencingRegion
    region_b: SequencingRegion

    @property
    def address(self) -> int:
        return self.access_a.address

    @property
    def static_key(self) -> StaticRaceKey:
        return static_race_key(self.access_a.static_id, self.access_b.static_id)

    @property
    def involves_write(self) -> bool:
        return self.access_a.is_write or self.access_b.is_write

    def __str__(self) -> str:
        return "race on %#x: %s || %s" % (self.address, self.access_a, self.access_b)
