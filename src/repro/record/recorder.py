"""The iDNA-analog recorder: an observer implementing load-based checkpointing.

Attach a :class:`Recorder` to a machine run and call :meth:`finish` for the
:class:`ReplayLog`.  The policy is the paper's Section 3.1, transliterated:

* maintain, per thread, a *prediction cache* — the memory image the thread
  could reconstruct from its own past loads and stores;
* on a load, log the value only when the cache mispredicts (first access,
  or another thread / the system modified the location in between);
* log every syscall result;
* log a sequencer (global monotone timestamp) at every synchronization
  instruction and syscall, plus thread start/end.

The recorder never reads machine internals — it sees only observer events,
so it records exactly the information a binary instrumentation engine could.

Capture is *columnar*: each observer hook appends scalars to parallel
per-thread arrays instead of constructing a record object per event, and
:meth:`finish` assembles the dataclass-shaped :class:`ReplayLog` once at the
end.  The same columns double as the full access trace
(:class:`CapturedAccessColumns` on the returned log), which lets the
analysis pipeline build its :class:`~repro.analysis.access_index.AccessIndex`
straight from the recording instead of re-deriving every access by replay.

**Segment streaming.**  Attached to a
:class:`~repro.record.binary_format.SegmentedLogWriter` ``sink``, the
recorder flushes the big access columns to disk *while the machine is
still running*: every sequencer hook ships the rows it claims (thread
step ≤ the sequencer's) into the writer — which seals a v4 segment
whenever its cost window fills — and deletes them from the in-memory
arrays, so resident capture state is bounded by the inter-sequencer gap
instead of the whole trace.  The VM emits a sync instruction's sequencer
*before* that instruction's own access hooks, so same-step sync rows ride
one sequencer later; per-thread step order (all the decoder relies on) is
preserved, and those rows are sync-flagged and thus outside every
sequencing region anyway.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional

from ..isa.program import Program
from ..vm.observers import Observer
from .log import (
    CapturedAccessColumns,
    LoadRecord,
    ReplayLog,
    SequencerRecord,
    SyscallRecord,
    ThreadAccessColumns,
    ThreadEnd,
    ThreadLog,
)


class _ThreadCapture:
    """Columnar accumulation for one thread (parallel arrays, one row per
    event).  Split from :class:`ThreadLog` so the hot observer hooks touch
    only list appends and one dict probe."""

    __slots__ = (
        "name",
        "tid",
        "block",
        "cache",
        "load_steps",
        "load_addresses",
        "load_values",
        "syscall_steps",
        "syscall_names",
        "syscall_results",
        "seq_steps",
        "seq_timestamps",
        "seq_kinds",
        "seq_static_ids",
        "access_steps",
        "access_addresses",
        "access_values",
        "access_flags",
        "access_static_ids",
        "heap_steps",
        "heap_kinds",
        "heap_bases",
        "heap_sizes",
        "pc_footprint",
        "steps",
        "end",
        "predicted_loads",
    )

    def __init__(self, tid: int, name: str, block: str):
        self.tid = tid
        self.name = name
        self.block = block
        self.cache: Dict[int, int] = {}
        self.load_steps: List[int] = []
        self.load_addresses: List[int] = []
        self.load_values: List[int] = []
        self.syscall_steps: List[int] = []
        self.syscall_names: List[str] = []
        self.syscall_results: List[int] = []
        self.seq_steps: List[int] = []
        self.seq_timestamps: List[int] = []
        self.seq_kinds: List[str] = []
        self.seq_static_ids: List[Optional[object]] = []
        self.access_steps: List[int] = []
        self.access_addresses: List[int] = []
        self.access_values: List[int] = []
        self.access_flags: List[int] = []
        self.access_static_ids: List[object] = []
        self.heap_steps: List[int] = []
        self.heap_kinds: List[str] = []
        self.heap_bases: List[int] = []
        self.heap_sizes: List[int] = []
        self.pc_footprint = set()
        self.steps = 0
        self.end: Optional[ThreadEnd] = None
        self.predicted_loads = 0

    def to_thread_log(self) -> ThreadLog:
        loads = {
            step: LoadRecord(thread_step=step, address=address, value=value)
            for step, address, value in zip(
                self.load_steps, self.load_addresses, self.load_values
            )
        }
        syscalls = {
            step: SyscallRecord(thread_step=step, name=name, result=result)
            for step, name, result in zip(
                self.syscall_steps, self.syscall_names, self.syscall_results
            )
        }
        sequencers = [
            SequencerRecord(
                thread_step=step, timestamp=timestamp, kind=kind, static_id=static_id
            )
            for step, timestamp, kind, static_id in zip(
                self.seq_steps, self.seq_timestamps, self.seq_kinds, self.seq_static_ids
            )
        ]
        return ThreadLog(
            name=self.name,
            tid=self.tid,
            block=self.block,
            initial_registers=(0,) * 16,
            loads=loads,
            syscalls=syscalls,
            sequencers=sequencers,
            pc_footprint=self.pc_footprint,
            steps=self.steps,
            end=self.end,
        )

    def to_access_columns(self) -> ThreadAccessColumns:
        return ThreadAccessColumns(
            steps=self.access_steps,
            addresses=self.access_addresses,
            values=self.access_values,
            flags=self.access_flags,
            static_ids=self.access_static_ids,
            heap_steps=self.heap_steps,
            heap_kinds=self.heap_kinds,
            heap_bases=self.heap_bases,
            heap_sizes=self.heap_sizes,
        )


class Recorder(Observer):
    """Records one machine run into a :class:`ReplayLog`."""

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        scheduler: str = "",
        capture_global_order: bool = True,
        sink=None,
    ):
        self.program = program
        self.seed = seed
        self.scheduler_description = scheduler
        self._captures: Dict[int, _ThreadCapture] = {}
        self._order_tids: Optional[List[int]] = [] if capture_global_order else None
        self._order_steps: Optional[List[int]] = [] if capture_global_order else None
        self._finished = False
        #: Optional :class:`SegmentedLogWriter` receiving rows as they land.
        self._sink = sink

    # ------------------------------------------------------------------
    # Observer hooks.
    # ------------------------------------------------------------------

    def on_thread_start(self, tid: int, thread_name: str, block_name: str) -> None:
        self._captures[tid] = _ThreadCapture(tid, thread_name, block_name)

    def on_sequencer(self, tid, thread_step, timestamp, kind, static_id) -> None:
        capture = self._captures[tid]
        capture.seq_steps.append(thread_step)
        capture.seq_timestamps.append(timestamp)
        capture.seq_kinds.append(kind)
        capture.seq_static_ids.append(static_id)
        if self._sink is not None:
            self._ship(
                capture,
                SequencerRecord(
                    thread_step=thread_step,
                    timestamp=timestamp,
                    kind=kind,
                    static_id=static_id,
                ),
            )

    def _ship(self, capture: _ThreadCapture, sequencer: SequencerRecord) -> None:
        """Flush the rows this sequencer claims into the segment sink.

        Rows are step-monotone per thread, so the claim is a prefix; the
        prefix delete keeps resident capture bounded by the gap between a
        thread's consecutive sequencers, not the trace length.
        """
        step = sequencer.thread_step
        cut = bisect_right(capture.access_steps, step)
        rows = [
            (
                capture.access_steps[i],
                capture.access_flags[i],
                capture.access_addresses[i],
                capture.access_values[i],
                capture.access_static_ids[i],
            )
            for i in range(cut)
        ]
        if cut:
            del capture.access_steps[:cut]
            del capture.access_flags[:cut]
            del capture.access_addresses[:cut]
            del capture.access_values[:cut]
            del capture.access_static_ids[:cut]
        heap_cut = bisect_right(capture.heap_steps, step)
        heap_rows = [
            (
                capture.heap_steps[i],
                0 if capture.heap_kinds[i] == "alloc" else 1,
                capture.heap_bases[i],
                capture.heap_sizes[i],
            )
            for i in range(heap_cut)
        ]
        if heap_cut:
            del capture.heap_steps[:heap_cut]
            del capture.heap_kinds[:heap_cut]
            del capture.heap_bases[:heap_cut]
            del capture.heap_sizes[:heap_cut]
        self._sink.add_sequencer(
            capture.name, capture.tid, capture.block, sequencer, rows, heap_rows
        )

    def on_load(self, tid, thread_step, static_id, address, value, is_sync) -> None:
        capture = self._captures[tid]
        # Load-based checkpointing: log only mispredicted values.  (Values
        # are non-negative words, so the None of a cold cache never aliases.)
        if capture.cache.get(address) != value:
            capture.load_steps.append(thread_step)
            capture.load_addresses.append(address)
            capture.load_values.append(value)
        else:
            capture.predicted_loads += 1
        capture.cache[address] = value
        capture.access_steps.append(thread_step)
        capture.access_addresses.append(address)
        capture.access_values.append(value)
        capture.access_flags.append(2 if is_sync else 0)
        capture.access_static_ids.append(static_id)

    def on_store(
        self, tid, thread_step, static_id, address, old_value, new_value, is_sync
    ) -> None:
        capture = self._captures[tid]
        capture.cache[address] = new_value
        capture.access_steps.append(thread_step)
        capture.access_addresses.append(address)
        capture.access_values.append(new_value)
        capture.access_flags.append(3 if is_sync else 1)
        capture.access_static_ids.append(static_id)

    def on_syscall(self, tid, thread_step, static_id, name, result, arg=None) -> None:
        capture = self._captures[tid]
        capture.syscall_steps.append(thread_step)
        capture.syscall_names.append(name)
        capture.syscall_results.append(result)
        # Heap lifecycle mirrors the HeapEvent stream replay would derive:
        # alloc rows carry (base=result, size=arg), free rows (base=arg, 0).
        if name == "sys_alloc":
            capture.heap_steps.append(thread_step)
            capture.heap_kinds.append("alloc")
            capture.heap_bases.append(result)
            capture.heap_sizes.append(arg if arg is not None else 0)
        elif name == "sys_free":
            capture.heap_steps.append(thread_step)
            capture.heap_kinds.append("free")
            capture.heap_bases.append(arg if arg is not None else 0)
            capture.heap_sizes.append(0)

    def on_step(self, global_step, tid, thread_step, static_id) -> None:
        capture = self._captures[tid]
        capture.pc_footprint.add(static_id.index)
        capture.steps = thread_step + 1
        if self._order_tids is not None:
            self._order_tids.append(tid)
            self._order_steps.append(thread_step)

    def on_thread_end(self, tid, thread_step, reason, fault) -> None:
        self._captures[tid].end = ThreadEnd(
            thread_step=thread_step,
            reason=reason,
            fault_kind=str(fault) if fault is not None else None,
        )

    # ------------------------------------------------------------------
    # Result.
    # ------------------------------------------------------------------

    @property
    def predicted_loads(self) -> int:
        """Loads elided by the prediction cache so far."""
        return sum(capture.predicted_loads for capture in self._captures.values())

    def finish(self) -> ReplayLog:
        """Assemble the final :class:`ReplayLog` (idempotent).

        With a segment sink attached, this also seals the pending segment
        and writes the trailer + footer, and the returned log carries
        ``captured=None`` — the access columns already live in the v4
        segments on disk (that is the bounded-memory point), so callers
        on the streaming path read them back via
        :func:`~repro.record.binary_format.iter_segments` rather than
        from this object.
        """
        if self._sink is not None:
            return self._finish_streaming()
        self._finished = True
        captured = CapturedAccessColumns(
            threads={
                capture.name: capture.to_access_columns()
                for capture in self._captures.values()
            },
            predicted_loads=self.predicted_loads,
        )
        return ReplayLog(
            program_name=self.program.name,
            program_source=self.program.source,
            threads={
                capture.name: capture.to_thread_log()
                for capture in self._captures.values()
            },
            seed=self.seed,
            scheduler=self.scheduler_description,
            global_order=list(zip(self._order_tids, self._order_steps))
            if self._order_tids is not None
            else None,
            captured=captured,
        )

    def _finish_streaming(self) -> ReplayLog:
        """Seal the sink (trailer + footer) and return a captureless log."""
        threads = {
            capture.name: capture.to_thread_log()
            for capture in self._captures.values()
        }
        global_order = (
            list(zip(self._order_tids, self._order_steps))
            if self._order_tids is not None
            else None
        )
        if not self._finished:
            # Anything no sequencer claimed (a thread aborted before its
            # thread-end sequencer, e.g. on max_steps) lands in the
            # trailer's residual rows, so the file is still lossless.
            residuals = {}
            for capture in self._captures.values():
                if capture.access_steps or capture.heap_steps:
                    residuals[capture.name] = (
                        [
                            (
                                capture.access_steps[i],
                                capture.access_flags[i],
                                capture.access_addresses[i],
                                capture.access_values[i],
                                capture.access_static_ids[i],
                            )
                            for i in range(len(capture.access_steps))
                        ],
                        [
                            (
                                capture.heap_steps[i],
                                0 if capture.heap_kinds[i] == "alloc" else 1,
                                capture.heap_bases[i],
                                capture.heap_sizes[i],
                            )
                            for i in range(len(capture.heap_steps))
                        ],
                    )
            self._sink.finish(
                threads=threads,
                global_order=global_order,
                predicted_loads=self.predicted_loads,
                residuals=residuals,
            )
            self._finished = True
        return ReplayLog(
            program_name=self.program.name,
            program_source=self.program.source,
            threads=threads,
            seed=self.seed,
            scheduler=self.scheduler_description,
            global_order=global_order,
            captured=None,
        )


def record_run(
    program: Program,
    scheduler=None,
    seed: int = 0,
    max_steps: int = 200_000,
    capture_global_order: bool = True,
    extra_observers=(),
    fast_path: bool = True,
    sink=None,
):
    """Run ``program`` under recording; returns ``(MachineResult, ReplayLog)``.

    The convenience entry point used throughout the examples and the
    analysis pipeline: one call replaces "deploy iDNA and run the test
    scenario" from the paper's usage model.  ``fast_path=False`` forces the
    generic reference interpreter (the logs are identical either way).
    ``sink`` streams the recording into a
    :class:`~repro.record.binary_format.SegmentedLogWriter` as segments
    fill (see :func:`record_run_segmented` for the file-path wrapper);
    the returned log then has ``captured=None``.
    """
    from ..vm.machine import Machine

    scheduler_description = type(scheduler).__name__ if scheduler else "RoundRobinScheduler"
    recorder = Recorder(
        program,
        seed=seed,
        scheduler=scheduler_description,
        capture_global_order=capture_global_order,
        sink=sink,
    )
    machine = Machine(
        program,
        scheduler=scheduler,
        seed=seed,
        max_steps=max_steps,
        observers=[recorder, *extra_observers],
        fast_path=fast_path,
    )
    result = machine.run()
    return result, recorder.finish()


def record_run_segmented(
    program: Program,
    path,
    scheduler=None,
    seed: int = 0,
    max_steps: int = 200_000,
    capture_global_order: bool = True,
    extra_observers=(),
    fast_path: bool = True,
    segment_bytes: Optional[int] = None,
):
    """Record straight into a v4 segmented container at ``path``.

    The streaming twin of :func:`record_run` + ``save_log``: segments hit
    the file while the machine runs, peak recorder memory is bounded by
    the segment window, and a streaming consumer can start detecting on
    sealed segments before the run ends.  Returns
    ``(MachineResult, ReplayLog)`` — the log has ``captured=None``; the
    captured columns live in the file.
    """
    from .binary_format import DEFAULT_SEGMENT_BYTES, SegmentedLogWriter

    scheduler_description = (
        type(scheduler).__name__ if scheduler else "RoundRobinScheduler"
    )
    with open(path, "wb") as handle:
        sink = SegmentedLogWriter(
            handle,
            program_name=program.name,
            program_source=program.source,
            seed=seed,
            scheduler=scheduler_description,
            has_captured=True,
            segment_bytes=segment_bytes or DEFAULT_SEGMENT_BYTES,
        )
        return record_run(
            program,
            scheduler=scheduler,
            seed=seed,
            max_steps=max_steps,
            capture_global_order=capture_global_order,
            extra_observers=extra_observers,
            fast_path=fast_path,
            sink=sink,
        )
