#!/usr/bin/env python
"""Time-travel debugging a race, the way the paper's developer would.

The race report names two dynamic memory operations.  iDNA's party trick —
"reverse execution (also called time travel debugging)" — lets the
developer walk the recorded execution around those operations without
re-running anything.  This example records a lost-update bug, takes the
first potentially-harmful race from the report, and uses the
:class:`TimeTravelInspector` to show:

* the exact instruction window around each racing operation,
* the register state before/after every step,
* the full recorded history of the contended address.

Run:  python examples/time_travel.py
"""

from repro import (
    Classification,
    OrderedReplay,
    RaceClassifier,
    RandomScheduler,
    aggregate_instances,
    assemble,
    find_races,
    record_run,
)
from repro.replay.inspector import TimeTravelInspector

SOURCE = """
.data
balance: .word 100
.thread teller1 teller2
    li r1, 3
loop:
    load r2, [balance]       ; read
    addi r2, r2, 50          ; deposit 50
    store r2, [balance]      ; write back (racy!)
    subi r1, r1, 1
    bnez r1, loop
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="bank")
    result, log = record_run(
        program, scheduler=RandomScheduler(seed=9, switch_probability=0.5), seed=9
    )
    address = program.data_address("balance")
    final = result.memory[address]
    expected = 100 + 6 * 50
    print(
        "recorded run: balance ends at %d (should be %d — %d lost)"
        % (final, expected, expected - final)
    )

    ordered = OrderedReplay(log, program)
    instances = find_races(ordered)
    classified = RaceClassifier(ordered).classify_all(instances)
    results = aggregate_instances(classified)
    harmful = next(
        result
        for result in results.values()
        if result.classification is Classification.POTENTIALLY_HARMFUL
    )
    instance = harmful.instances[0].instance
    print("\ninvestigating:", instance)

    inspector = TimeTravelInspector(ordered)
    for access in (instance.access_a, instance.access_b):
        print("\n--- %s around step %d ---" % (access.thread_name, access.thread_step))
        start = max(0, access.thread_step - 2)
        for view in inspector.walk(access.thread_name, start=start, count=5):
            marker = ">>" if view.thread_step == access.thread_step else "  "
            print("%s %s" % (marker, view.describe()))

    print("\nfull recorded history of [balance] (%#x):" % address)
    for thread, step, kind, value in inspector.history_of_address(address):
        print("  %-10s step %3d  %-5s %d" % (thread, step, kind, value))

    print(
        "\nThe interleaved read-modify-write sequences above are the lost"
        "\nupdates; the classifier flags every racing pair as state-changing."
    )


if __name__ == "__main__":
    main()
