"""Benchmark + reproduction of Figure 5: misclassified benign races.

The paper's Figure 5 shows the Potentially-Harmful races that manual
triage found Real-Benign — dominated by approximate computation, where
most instances genuinely change state (that is what the developers chose
to tolerate).
"""

from repro.analysis import build_figure5
from repro.race.heuristics import BenignCategory
from repro.workloads import GroundTruth

from conftest import write_artifact


def test_figure5_series(suite_analysis, results_dir, benchmark):
    figure = benchmark(build_figure5, suite_analysis)
    assert figure.points
    # Every plotted race was flagged at least once (that is why it is here).
    assert all(point.flagged_instances >= 1 for point in figure.points)
    write_artifact(
        results_dir,
        "figure5.txt",
        "\n".join(
            [
                "FIGURE 5 (paper: 29 misclassified Real-Benign races)",
                figure.render(),
            ]
        ),
    )


def test_figure5_ground_truth_is_benign(suite_analysis):
    figure = build_figure5(suite_analysis)
    by_race = {"%s|%s" % key: key for key in suite_analysis.results}
    for point in figure.points:
        key = by_race[point.race]
        assert suite_analysis.truths[key] is GroundTruth.BENIGN


def test_approximate_races_flag_most_instances(suite_analysis):
    """Approximate-computation races change state in most instances —
    unlike harmful races, which flag rarely (Fig 4 vs Fig 5 contrast)."""
    figure = build_figure5(suite_analysis)
    by_race = {"%s|%s" % key: key for key in suite_analysis.results}
    approx_points = [
        point
        for point in figure.points
        if suite_analysis.categories[by_race[point.race]]
        is BenignCategory.APPROXIMATE
        and point.total_instances >= 4
    ]
    assert approx_points
    assert any(point.flagged_fraction >= 0.5 for point in approx_points)
