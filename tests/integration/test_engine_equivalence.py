"""The engine's optimized paths must not change a single verdict.

Every shortcut the classification engine stacks on top of the plain
pipeline — recorded-original synthesis, prefix fast-forward, spin-cycle
cutoff, verdict memoization, process-pool fan-out — is sound only if a
suite analysed through it is *byte-identical* to the naive serial
analysis.  These tests enforce that across the full paper suite and a set
of re-seeded recordings the suite does not contain.
"""

import pytest

from repro.analysis.engine import ClassificationEngine, EngineConfig
from repro.analysis.perf import PerfStats
from repro.analysis.pipeline import analyze_suite
from repro.race.classifier import ClassifierConfig
from repro.workloads.harmful_lost_update import lost_update
from repro.workloads.harmful_refcount import refcount_free
from repro.workloads.benign_sync import flag_publish
from repro.workloads.suite import Execution, paper_suite

#: The classifier exactly as the seed revision ran it: every replay
#: shortcut off, no memoization, no pool.
NAIVE = ClassifierConfig(
    reuse_recorded_original=False,
    fast_forward_prefix=False,
    detect_spin_cycles=False,
)


def reseeded_executions():
    """Recordings at seeds the paper suite does not use."""
    return [
        Execution("equiv:%s#s%d" % (workload.name, seed), workload, seed)
        for workload, seed in [
            (lost_update(90), 901),
            (lost_update(90), 902),
            (refcount_free(91), 911),
            (flag_publish(92), 921),
        ]
    ]


def verdicts(suite):
    return [
        (
            entry.instance.static_key,
            entry.execution_id,
            entry.outcome,
            entry.original_first,
            entry.pre_value,
            entry.failure_kind,
            entry.failure_detail,
        )
        for analysis in suite.executions
        for entry in analysis.classified
    ]


def aggregates(suite):
    return {
        key: result.classification for key, result in suite.results.items()
    }


@pytest.fixture(scope="module")
def reference():
    return analyze_suite(paper_suite(), classifier_config=NAIVE)


class TestPaperSuiteEquivalence:
    def test_fast_serial_path_is_byte_identical(self, reference):
        fast = analyze_suite(paper_suite())
        assert verdicts(fast) == verdicts(reference)
        assert aggregates(fast) == aggregates(reference)

    def test_memoized_path_is_byte_identical(self, reference):
        perf = PerfStats()
        memoized = analyze_suite(paper_suite(), memoize=True, perf=perf)
        assert verdicts(memoized) == verdicts(reference)
        assert aggregates(memoized) == aggregates(reference)
        assert perf.cache_hits + perf.cache_misses == perf.instances

    def test_pooled_path_is_byte_identical(self, reference):
        perf = PerfStats()
        pooled = analyze_suite(paper_suite(), jobs=2, memoize=True, perf=perf)
        assert verdicts(pooled) == verdicts(reference)
        assert aggregates(pooled) == aggregates(reference)
        assert perf.pool_tasks == len(paper_suite())
        assert perf.pool_workers


class TestBatchingEquivalence:
    """The batched planner and incremental splicing change no verdict."""

    def test_unbatched_memoized_path_is_byte_identical(self, reference):
        unbatched = analyze_suite(paper_suite(), memoize=True, batching=False)
        assert verdicts(unbatched) == verdicts(reference)
        assert aggregates(unbatched) == aggregates(reference)

    def test_batched_path_is_byte_identical(self, reference):
        perf = PerfStats()
        batched = analyze_suite(
            paper_suite(), memoize=True, batching=True, perf=perf
        )
        assert verdicts(batched) == verdicts(reference)
        assert aggregates(batched) == aggregates(reference)
        assert perf.classify_batches > 0
        assert sum(
            size * count for size, count in perf.batch_sizes.items()
        ) == perf.instances

    def test_incremental_prior_replays_nothing(self):
        execution = Execution("incr:lost_update#s931", lost_update(90), 931)
        cold_stats = PerfStats()
        cold = ClassificationEngine(EngineConfig(jobs=1)).analyze_execution(
            execution, perf=cold_stats
        )
        warm_stats = PerfStats()
        warm = ClassificationEngine(EngineConfig(jobs=1)).analyze_execution(
            execution, perf=warm_stats, prior=cold
        )

        def entry_tuples(analysis):
            return [
                (
                    entry.instance.static_key,
                    entry.outcome,
                    entry.original_first,
                    entry.pre_value,
                    entry.failure_kind,
                    entry.failure_detail,
                )
                for entry in analysis.classified
            ]

        assert entry_tuples(warm) == entry_tuples(cold)
        assert cold_stats.cache_misses > 0
        assert warm_stats.cache_misses == 0
        assert warm_stats.incremental_spliced > 0
        assert warm.verdict_index == cold.verdict_index


class TestReseededEquivalence:
    def test_engine_matches_naive_on_unseen_seeds(self):
        executions = reseeded_executions()
        reference = analyze_suite(executions, classifier_config=NAIVE)
        engine = analyze_suite(executions, jobs=2, memoize=True)
        assert verdicts(reference)  # the workloads do race
        assert verdicts(engine) == verdicts(reference)

    def test_duplicate_recordings_hit_the_cache_without_drift(self):
        # The same recording twice: the second pass must be served from
        # the verdict cache and still reproduce every verdict verbatim.
        twice = [
            Execution("dup%d:lost_update#s905" % n, lost_update(90), 905)
            for n in range(2)
        ]
        perf = PerfStats()
        suite = analyze_suite(twice, memoize=True, perf=perf)
        reference = analyze_suite(twice, classifier_config=NAIVE)
        assert verdicts(suite) == verdicts(reference)
        assert perf.cache_hits > 0
