"""Unit tests for the columnar access index shared by detect and classify."""

import pytest

from repro.analysis.access_index import AccessIndex, build_access_index
from repro.isa import assemble
from repro.record import record_run
from repro.record.binary_format import decode_log, encode_log
from repro.replay import LogView, OrderedReplay
from repro.vm import RandomScheduler

SOURCE = """
.data
x: .word 0
y: .word 0
m: .word 0
.thread a b
    li r1, 3
loop:
    lock [m]
    load r2, [x]
    addi r2, r2, 1
    store r2, [x]
    unlock [m]
    load r4, [y]
    addi r4, r4, 1
    store r4, [y]
    subi r1, r1, 1
    bnez r1, loop
    halt
"""


@pytest.fixture(scope="module")
def ordered():
    program = assemble(SOURCE, name="aidx")
    _, log = record_run(
        program, scheduler=RandomScheduler(seed=5, switch_probability=0.4), seed=5
    )
    return OrderedReplay(log, program)


@pytest.fixture(scope="module")
def index(ordered):
    return ordered.access_index()


class TestConstruction:
    def test_regions_follow_opening_timestamp_order(self, index):
        timestamps = [region.start_ts for region in index.regions]
        assert timestamps == sorted(timestamps)
        assert all(not region.is_empty for region in index.regions)

    def test_slices_partition_the_columns(self, index):
        position = 0
        for ordinal in range(index.region_count):
            start, end = index.region_slice(ordinal)
            assert start == position and end >= start
            position = end
        assert position == index.access_count

    def test_columns_are_parallel(self, index):
        assert (
            len(index.steps)
            == len(index.addresses)
            == len(index.values)
            == len(index.write_flags)
            == len(index.region_of)
            == index.access_count
        )

    def test_region_of_matches_slices(self, index):
        for ordinal in range(index.region_count):
            start, end = index.region_slice(ordinal)
            assert all(
                index.region_of[position] == ordinal
                for position in range(start, end)
            )

    def test_sync_accesses_excluded(self, ordered, index):
        for region in index.regions:
            for access in index.region_accesses(region):
                assert not access.is_sync

    def test_build_helper(self, ordered):
        built = build_access_index(ordered)
        assert built.access_count == ordered.access_index().access_count


class TestQueries:
    def test_region_accesses_matches_direct_extraction(self, ordered, index):
        """The O(1) slice equals the seed's bisect-and-filter extraction."""
        for region in index.regions:
            replay = ordered.thread_replays[region.thread_name]
            expected = [
                access
                for access in replay.accesses_in_steps(
                    region.start_step, region.end_step
                )
                if not access.is_sync
            ]
            assert index.region_accesses(region) == expected

    def test_empty_region_yields_no_accesses(self):
        # lock at step 0 and unlock right after it create step-empty regions.
        program = assemble(
            ".data\nm: .word 0\n.thread a b\n    lock [m]\n    unlock [m]\n"
            "    halt\n",
            name="aidx-empty",
        )
        _, log = record_run(program, scheduler=RandomScheduler(seed=1), seed=1)
        ordered = OrderedReplay(log, program)
        index = ordered.access_index()
        empties = [
            region for region in ordered.all_regions() if region.is_empty
        ]
        assert empties, "workload should produce at least one empty region"
        for region in empties:
            assert index.ordinal_of(region) is None
            assert index.region_accesses(region) == []

    def test_postings_are_ascending_and_complete(self, index):
        for address, ordinals in index.postings.items():
            assert ordinals == sorted(set(ordinals))
            for ordinal in ordinals:
                assert address in index.addresses_of(ordinal)

    def test_addresses_of_covers_every_access(self, index):
        for ordinal, region in enumerate(index.regions):
            touched = {
                access.address for access in index.region_accesses(region)
            }
            assert set(index.addresses_of(ordinal)) == touched

    def test_by_address_groups_in_step_order(self, index):
        for ordinal in range(index.region_count):
            grouped = index.by_address(ordinal)
            flattened = [
                access for accesses in grouped.values() for access in accesses
            ]
            assert len(flattened) == len(
                index.region_accesses(index.regions[ordinal])
            )
            for address, accesses in grouped.items():
                steps = [access.thread_step for access in accesses]
                assert steps == sorted(steps)
                assert all(access.address == address for access in accesses)

    def test_regions_touching(self, ordered, index):
        x = ordered.program.data_address("x")
        assert index.regions_touching(x) == index.postings[x]
        assert index.regions_touching(0xDEAD_BEEF) == []

    def test_stats_counters(self, index):
        stats = index.stats()
        assert stats["regions"] == index.region_count
        assert stats["accesses"] == index.access_count == len(index.steps)
        assert stats["addresses"] == len(index.postings)
        assert stats["writes"] == sum(index.write_flags)
        assert 0 < stats["writes"] < stats["accesses"]


#: Edge-case workload: a step-empty region (lock, then unlock on the
#: very next step), a region with steps but no memory accesses (the
#: register-only stretch between the unlock and the next lock), and an
#: address (``z``) touched by exactly one region of one thread.
EDGE_SOURCE = """
.data
x: .word 0
z: .word 0
m: .word 0
.thread a b
    lock [m]
    unlock [m]
    addi r1, r1, 0
    lock [m]
    load r2, [x]
    addi r2, r2, 1
    store r2, [x]
    unlock [m]
    halt
.thread w
    li r2, 7
    store r2, [z]
    halt
"""


def _edge_recording(seed=3):
    program = assemble(EDGE_SOURCE, name="aidx-edge")
    _, log = record_run(
        program,
        scheduler=RandomScheduler(seed=seed, switch_probability=0.4),
        seed=seed,
    )
    return program, log


class TestFromCaptured:
    """`AccessIndex.from_captured` (the zero-replay build) edge cases."""

    def _both_indexes(self, log, program):
        replay_built = OrderedReplay(log, program).access_index()
        captured_built = LogView.from_bytes(encode_log(log)).access_index()
        return replay_built, captured_built

    def test_matches_replay_built_index(self):
        """Column-for-column identical to the replay-derived index —
        including sync-row exclusion (the lock/unlock accesses)."""
        program = assemble(SOURCE, name="aidx-cap")
        _, log = record_run(
            program,
            scheduler=RandomScheduler(seed=5, switch_probability=0.4),
            seed=5,
        )
        replay_built, captured_built = self._both_indexes(log, program)
        assert captured_built.regions == replay_built.regions
        assert list(captured_built.steps) == list(replay_built.steps)
        assert list(captured_built.addresses) == list(replay_built.addresses)
        assert list(captured_built.values) == list(replay_built.values)
        assert list(captured_built.write_flags) == list(replay_built.write_flags)
        assert list(captured_built.region_of) == list(replay_built.region_of)
        assert captured_built.postings == replay_built.postings

    def test_step_empty_regions_excluded(self):
        program, log = _edge_recording()
        view = LogView.from_bytes(encode_log(log))
        index = view.access_index()
        empties = [region for region in view.all_regions() if region.is_empty]
        assert empties, "workload should produce at least one empty region"
        for region in empties:
            assert index.ordinal_of(region) is None
            assert index.region_accesses(region) == []

    def test_access_free_region_has_empty_slice(self):
        """A region with steps but only register traffic gets an ordinal
        whose slice, addresses and grouped accesses are all empty."""
        program, log = _edge_recording()
        index = LogView.from_bytes(encode_log(log)).access_index()
        bare = [
            ordinal
            for ordinal, region in enumerate(index.regions)
            if not index.addresses_of(ordinal)
        ]
        assert bare, "workload should produce an access-free region"
        for ordinal in bare:
            start, end = index.region_slice(ordinal)
            assert start == end
            assert index.by_address(ordinal) == {}
            assert index.region_accesses(index.regions[ordinal]) == []

    def test_single_region_address_postings(self):
        program, log = _edge_recording()
        index = LogView.from_bytes(encode_log(log)).access_index()
        z = program.data_address("z")
        assert len(index.postings[z]) == 1
        (only,) = index.postings[z]
        assert index.regions[only].thread_name == "w"
        assert z in index.addresses_of(only)

    def test_v1_log_falls_back_to_replay_columns(self):
        """A v1 container has no captured section: the index built
        through the replay fallback must still equal the captured-built
        one from the v3 encoding of the same log."""
        program, log = _edge_recording()
        v1_log = decode_log(encode_log(log, version=1))
        assert v1_log.captured is None
        fallback = OrderedReplay(v1_log).access_index()
        captured_built = LogView.from_bytes(encode_log(log)).access_index()
        assert fallback.regions == captured_built.regions
        assert list(fallback.steps) == list(captured_built.steps)
        assert list(fallback.addresses) == list(captured_built.addresses)
        assert list(fallback.values) == list(captured_built.values)
        assert list(fallback.write_flags) == list(captured_built.write_flags)
        assert fallback.postings == captured_built.postings

    def test_write_count_is_cached_and_correct(self):
        program, log = _edge_recording()
        index = LogView.from_bytes(encode_log(log)).access_index()
        expected = sum(index.write_flags)
        assert index.write_count == expected
        assert index.write_count == expected  # second read hits the cache
        assert index.stats()["writes"] == expected


class TestOrderedReplayIntegration:
    def test_index_is_cached(self, ordered):
        assert ordered.access_index() is ordered.access_index()

    def test_invalidate_rebuilds(self, ordered):
        first = ordered.access_index()
        ordered.invalidate_access_index()
        second = ordered.access_index()
        assert second is not first
        assert second.access_count == first.access_count

    def test_region_accesses_delegates_to_index(self, ordered):
        region = next(
            region for region in ordered.all_regions() if not region.is_empty
        )
        assert ordered.region_accesses(region) == ordered.access_index(
        ).region_accesses(region)
