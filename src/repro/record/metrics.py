"""Per-log record-count metrics (complements :mod:`.compression`)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .log import ReplayLog


@dataclass
class LogMetrics:
    """Breakdown of a replay log's contents."""

    total_instructions: int
    load_records: int
    syscall_records: int
    sequencer_records: int
    threads: int
    per_thread_instructions: Dict[str, int]

    @property
    def total_records(self) -> int:
        return self.load_records + self.syscall_records + self.sequencer_records

    @property
    def load_log_fraction(self) -> float:
        """Fraction of executed loads-or-not instructions that produced a
        load record — the recorder's prediction-cache miss rate proxy."""
        if not self.total_instructions:
            return 0.0
        return self.load_records / self.total_instructions

    def describe(self) -> str:
        return (
            "%d instructions across %d threads: %d load records, "
            "%d syscall records, %d sequencers"
            % (
                self.total_instructions,
                self.threads,
                self.load_records,
                self.syscall_records,
                self.sequencer_records,
            )
        )


def log_metrics(log: ReplayLog) -> LogMetrics:
    """Compute :class:`LogMetrics` for one replay log."""
    return LogMetrics(
        total_instructions=log.total_instructions,
        load_records=sum(len(thread.loads) for thread in log.threads.values()),
        syscall_records=sum(len(thread.syscalls) for thread in log.threads.values()),
        sequencer_records=sum(
            len(thread.sequencers) for thread in log.threads.values()
        ),
        threads=len(log.threads),
        per_thread_instructions={
            name: thread.steps for name, thread in log.threads.items()
        },
    )
