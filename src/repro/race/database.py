"""Persistent race database: accumulate analysis results across sessions.

The paper's development-environment model is continuous: every night new
test scenarios are recorded and analysed, and verdicts accumulate — "if we
classify a harmful data race as benign ... later on, when analyzing a
different test case, the analysis may find an instance of the data race
that exposes it as potentially harmful.  The data race will then be
re-classified and reported to the developer."

:class:`RaceDatabase` stores, per (program, unique race), the running
outcome counts, the executions that sighted it, and the *classification
history* — so a re-classification (benign → harmful) is an explicit,
reportable event rather than a silent flip.  Only aggregate counts are
persisted, never instance bodies, keeping the database small.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .aggregate import StaticRaceResult
from .model import (
    StaticRaceKey,
    static_key_from_text as _key_from_text,
    static_key_to_text as _key_to_text,
)
from .outcomes import Classification, InstanceOutcome

FORMAT_VERSION = 1


@dataclass
class RaceRecord:
    """Accumulated knowledge about one unique race of one program."""

    program_name: str
    key_text: str
    no_state_change: int = 0
    state_change: int = 0
    replay_failure: int = 0
    executions: List[str] = field(default_factory=list)
    #: classification after each update, e.g. ["potentially-benign",
    #: "potentially-harmful"] — a length > 1 with differing entries is a
    #: re-classification event.
    history: List[str] = field(default_factory=list)

    @property
    def key(self) -> StaticRaceKey:
        return _key_from_text(self.key_text)

    @property
    def instance_count(self) -> int:
        return self.no_state_change + self.state_change + self.replay_failure

    @property
    def classification(self) -> Classification:
        if self.state_change or self.replay_failure:
            return Classification.POTENTIALLY_HARMFUL
        return Classification.POTENTIALLY_BENIGN

    @property
    def was_reclassified(self) -> bool:
        return len(set(self.history)) > 1

    def describe(self) -> str:
        text = "%s %s: %s (%d instances over %d execution(s))" % (
            self.program_name,
            self.key_text,
            self.classification,
            self.instance_count,
            len(self.executions),
        )
        if self.was_reclassified:
            text += "  [RE-CLASSIFIED: %s]" % " -> ".join(self.history)
        return text


class RaceDatabase:
    """Accumulates per-race verdicts across analysis sessions."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[str, str], RaceRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Updates.
    # ------------------------------------------------------------------

    def update(
        self, program_name: str, results: Iterable[StaticRaceResult]
    ) -> List[RaceRecord]:
        """Fold one analysis session's results in.

        Returns the records whose classification *changed* in this update
        (the re-classification events the paper says must be reported).
        """
        reclassified: List[RaceRecord] = []
        for result in results:
            key_text = _key_to_text(result.key)
            record = self._records.get((program_name, key_text))
            if record is None:
                record = RaceRecord(program_name=program_name, key_text=key_text)
                self._records[(program_name, key_text)] = record
            before = record.classification if record.history else None
            record.no_state_change += result.outcome_count(
                InstanceOutcome.NO_STATE_CHANGE
            )
            record.state_change += result.outcome_count(InstanceOutcome.STATE_CHANGE)
            record.replay_failure += result.outcome_count(
                InstanceOutcome.REPLAY_FAILURE
            )
            for execution_id in sorted(result.executions):
                if execution_id not in record.executions:
                    record.executions.append(execution_id)
            record.history.append(str(record.classification))
            if before is not None and record.classification is not before:
                reclassified.append(record)
        return reclassified

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def record_for(
        self, program_name: str, key: StaticRaceKey
    ) -> Optional[RaceRecord]:
        return self._records.get((program_name, _key_to_text(key)))

    def records(self, program_name: Optional[str] = None) -> List[RaceRecord]:
        return [
            record
            for record in self._records.values()
            if program_name is None or record.program_name == program_name
        ]

    def harmful_records(self, program_name: Optional[str] = None) -> List[RaceRecord]:
        return [
            record
            for record in self.records(program_name)
            if record.classification is Classification.POTENTIALLY_HARMFUL
        ]

    def reclassified_records(self) -> List[RaceRecord]:
        return [record for record in self._records.values() if record.was_reclassified]

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "format_version": FORMAT_VERSION,
            "records": [
                {
                    "program": record.program_name,
                    "key": record.key_text,
                    "no_state_change": record.no_state_change,
                    "state_change": record.state_change,
                    "replay_failure": record.replay_failure,
                    "executions": record.executions,
                    "history": record.history,
                }
                for record in self._records.values()
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RaceDatabase":
        payload = json.loads(Path(path).read_text())
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError("unsupported race-database version: %r" % version)
        database = cls()
        for item in payload["records"]:
            record = RaceRecord(
                program_name=item["program"],
                key_text=item["key"],
                no_state_change=item["no_state_change"],
                state_change=item["state_change"],
                replay_failure=item["replay_failure"],
                executions=list(item["executions"]),
                history=list(item["history"]),
            )
            database._records[(record.program_name, record.key_text)] = record
        return database
