"""End-to-end classification speedup: seed-era serial vs the engine.

The serial baseline runs the classifier with every §4 replay shortcut
disabled (no recorded-original reuse, no prefix fast-forward, no
spin-cycle cutoff) and without memoization -- the algorithm the repo
shipped with.  The engine path is ``analyze_suite(..., jobs=N,
memoize=True)``: the process pool plus verdict cache plus the replay
shortcuts, which are verified here to produce byte-identical verdicts.

Runs both under pytest (``pytest benchmarks/bench_parallel_scaling.py``)
and as a script::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick

Either way the measured numbers land in
``benchmarks/results/BENCH_classify.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.analysis.perf import PerfStats
from repro.analysis.pipeline import analyze_suite
from repro.race.classifier import ClassifierConfig
from repro.workloads import paper_suite

RESULTS_DIR = Path(__file__).parent / "results"

#: The classifier as it behaved before the replay shortcuts existed.
SEED_BASELINE = ClassifierConfig(
    reuse_recorded_original=False,
    fast_forward_prefix=False,
    detect_spin_cycles=False,
)


def _verdicts(suite):
    return [
        (
            entry.instance.static_key,
            entry.execution_id,
            entry.outcome,
            entry.original_first,
            entry.pre_value,
            entry.failure_kind,
            entry.failure_detail,
        )
        for analysis in suite.executions
        for entry in analysis.classified
    ]


def run_benchmark(jobs: int = 4, repeats: int = 3) -> dict:
    """Time baseline vs engine on the paper suite; assert verdict equality.

    ``repeats`` keeps the minimum wall time per configuration, the usual
    way to suppress scheduler noise; ``--quick`` uses a single repeat.
    """
    serial_s = None
    baseline = None
    for _ in range(repeats):
        start = time.perf_counter()
        baseline = analyze_suite(paper_suite(), classifier_config=SEED_BASELINE)
        elapsed = time.perf_counter() - start
        serial_s = elapsed if serial_s is None else min(serial_s, elapsed)

    parallel_s = None
    engine_suite = None
    perf = None
    for _ in range(repeats):
        stats = PerfStats()
        start = time.perf_counter()
        candidate = analyze_suite(paper_suite(), jobs=jobs, memoize=True, perf=stats)
        elapsed = time.perf_counter() - start
        if parallel_s is None or elapsed < parallel_s:
            parallel_s, engine_suite, perf = elapsed, candidate, stats

    reference = _verdicts(baseline)
    candidate = _verdicts(engine_suite)
    if reference != candidate:
        raise AssertionError(
            "engine verdicts diverge from the serial baseline "
            "(%d vs %d instances)" % (len(reference), len(candidate))
        )

    return {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "jobs": jobs,
        "cache_hit_rate": round(perf.cache_hit_rate, 4),
        "speedup": round(serial_s / parallel_s, 2),
        "instances": len(reference),
        "cache_hits": perf.cache_hits,
        "cache_misses": perf.cache_misses,
        "classify_batches": perf.classify_batches,
        "batch_fanout": perf.batch_fanout,
        "batch_fallbacks": perf.batch_fallbacks,
        "batch_size_distribution": {
            str(size): count
            for size, count in sorted(perf.batch_sizes.items())
        },
        "pool_tasks": perf.pool_tasks,
        "pool_workers": len(perf.pool_workers),
        "verdicts_identical": True,
    }


def write_result(result: dict, output: Path) -> None:
    output.parent.mkdir(exist_ok=True)
    output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_engine_beats_serial_baseline(results_dir):
    result = run_benchmark(jobs=4, repeats=2)
    write_result(result, results_dir / "BENCH_classify.json")
    assert result["verdicts_identical"]
    assert result["speedup"] >= 2.0, "engine must be >=2x over the seed baseline"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--jobs", type=int, default=4, help="engine worker count")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single repeat per configuration: equivalence check, not a "
        "timing gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_classify.json",
        help="where to write the JSON result",
    )
    args = parser.parse_args()
    result = run_benchmark(jobs=args.jobs, repeats=1 if args.quick else 3)
    if args.quick:
        result["quick"] = True  # mark CI-noise numbers as non-authoritative
    write_result(result, args.output)
    print(json.dumps(result, indent=2, sort_keys=True))
    print(
        "verdicts identical; %.2fx over the seed baseline; %d batches "
        "(%d fanned out, %d fallbacks)"
        % (
            result["speedup"],
            result["classify_batches"],
            result["batch_fanout"],
            result["batch_fallbacks"],
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
