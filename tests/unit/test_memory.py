"""Unit tests for the VM memory and heap allocator."""

import pytest

from repro.isa.program import HEAP_BASE
from repro.vm.errors import FaultKind, MemoryFault
from repro.vm.memory import Memory


class TestWordAccess:
    def test_unwritten_reads_zero(self):
        assert Memory().read(0x2000) == 0

    def test_write_then_read(self):
        memory = Memory()
        memory.write(0x2000, 42)
        assert memory.read(0x2000) == 42

    def test_write_returns_old_value(self):
        memory = Memory({0x2000: 7})
        assert memory.write(0x2000, 8) == 7

    def test_values_wrap_to_64_bits(self):
        memory = Memory()
        memory.write(0x2000, -1)
        assert memory.read(0x2000) == (1 << 64) - 1

    def test_initial_image(self):
        memory = Memory({1: 10, 2: 20})
        assert memory.read(1) == 10 and memory.read(2) == 20

    def test_null_faults(self):
        with pytest.raises(MemoryFault) as info:
            Memory().read(0)
        assert info.value.kind is FaultKind.NULL_DEREF

    def test_negative_faults(self):
        with pytest.raises(MemoryFault) as info:
            Memory().write(-4, 1)
        assert info.value.kind is FaultKind.BAD_ADDRESS

    def test_peek_skips_checks(self):
        assert Memory().peek(0) == 0


class TestHeap:
    def test_alloc_returns_zeroed_block(self):
        memory = Memory()
        base = memory.alloc(3)
        assert base == HEAP_BASE
        assert all(memory.read(base + i) == 0 for i in range(3))

    def test_allocations_do_not_overlap(self):
        memory = Memory()
        first = memory.alloc(4)
        second = memory.alloc(4)
        assert second >= first + 4

    def test_alloc_zero_faults(self):
        with pytest.raises(MemoryFault):
            Memory().alloc(0)

    def test_free_then_use_faults(self):
        memory = Memory()
        base = memory.alloc(2)
        memory.free(base)
        with pytest.raises(MemoryFault) as info:
            memory.read(base + 1)
        assert info.value.kind is FaultKind.USE_AFTER_FREE

    def test_double_free_faults(self):
        memory = Memory()
        base = memory.alloc(1)
        memory.free(base)
        with pytest.raises(MemoryFault) as info:
            memory.free(base)
        assert info.value.kind is FaultKind.DOUBLE_FREE

    def test_bad_free_faults(self):
        with pytest.raises(MemoryFault) as info:
            Memory().free(0x3000)
        assert info.value.kind is FaultKind.BAD_FREE

    def test_freed_space_never_reused(self):
        memory = Memory()
        first = memory.alloc(2)
        memory.free(first)
        second = memory.alloc(2)
        assert second >= first + 2

    def test_is_freed(self):
        memory = Memory()
        base = memory.alloc(2)
        assert not memory.is_freed(base)
        memory.free(base)
        assert memory.is_freed(base)
        assert memory.is_freed(base + 1)


class TestSnapshots:
    def test_snapshot_is_a_copy(self):
        memory = Memory()
        memory.write(0x2000, 1)
        snap = memory.snapshot()
        memory.write(0x2000, 2)
        assert snap[0x2000] == 1

    def test_heap_state_round_trip(self):
        memory = Memory()
        base = memory.alloc(2)
        state = memory.heap_state()
        memory.free(base)
        memory.restore_heap_state(state)
        assert not memory.is_freed(base)
