"""Bounded, sharded priority queue with backpressure and delayed retries.

The admission queue between the HTTP layer and the worker pool.  Three
properties matter:

* **bounded** — ``put`` never blocks and never buffers beyond
  ``capacity``; an overfull queue raises :class:`QueueFull`, which the
  HTTP layer maps to ``429 Too Many Requests``.  Overload sheds load at
  the edge instead of growing an invisible backlog.
* **sharded** — every entry carries a shard id (derived from the job's
  content hash) and each shard thread pops only its own entries, so
  related work keeps landing on the same worker process and reuses its
  verdict/record caches.  Priority order holds *within* a shard:
  higher ``priority`` first, FIFO among equals.
* **delayed re-entry** — retry-with-backoff re-inserts an entry with a
  ``not_before`` monotonic deadline; it stays invisible to ``get`` until
  the deadline passes.  Delayed entries count against capacity (a
  retrying job still occupies its slot).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import List, Optional, Tuple


class QueueFull(Exception):
    """The bounded queue is at capacity; the submission was rejected."""


class QueueClosed(Exception):
    """The queue was shut down; no further entries will be served."""


#: (negative priority, sequence, job_id) — heapq pops highest priority,
#: FIFO among equals.
_ReadyEntry = Tuple[int, int, str]
#: (not_before, sequence, shard, priority, job_id)
_DelayedEntry = Tuple[float, int, int, int, str]


class BoundedJobQueue:
    """The bounded sharded priority queue described in the module doc."""

    def __init__(self, capacity: int, shards: int = 1):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.capacity = capacity
        self.shards = shards
        self._lock = threading.Lock()
        self._ready_cv = threading.Condition(self._lock)
        self._ready: List[List[_ReadyEntry]] = [[] for _ in range(shards)]
        self._delayed: List[_DelayedEntry] = []
        self._size = 0
        self._seq = itertools.count()
        self._closed = False
        #: Submissions rejected for capacity (exposed via /metrics).
        self.rejections = 0

    # -- producers ------------------------------------------------------

    def put(
        self,
        job_id: str,
        shard: int,
        priority: int = 0,
        not_before: Optional[float] = None,
        force: bool = False,
    ) -> None:
        """Admit one entry or raise :class:`QueueFull` immediately.

        ``force`` bypasses the capacity check — used only when
        re-enqueueing journal-recovered jobs at startup, which were
        admitted (and counted against capacity) before the crash.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed()
            if not force and self._size >= self.capacity:
                self.rejections += 1
                raise QueueFull(
                    "queue full (%d entries, capacity %d)"
                    % (self._size, self.capacity)
                )
            seq = next(self._seq)
            if not_before is not None and not_before > time.monotonic():
                heapq.heappush(
                    self._delayed, (not_before, seq, shard % self.shards, priority, job_id)
                )
            else:
                heapq.heappush(
                    self._ready[shard % self.shards], (-priority, seq, job_id)
                )
            self._size += 1
            self._ready_cv.notify_all()

    # -- consumers ------------------------------------------------------

    def _promote_matured(self) -> None:
        """Move delayed entries whose deadline passed into ready heaps."""
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, seq, shard, priority, job_id = heapq.heappop(self._delayed)
            heapq.heappush(self._ready[shard], (-priority, seq, job_id))

    def get(self, shard: int, timeout: Optional[float] = None) -> Optional[str]:
        """Pop the next ready job id for ``shard``.

        Blocks up to ``timeout`` seconds (None = until available or
        closed).  Returns ``None`` on timeout; raises
        :class:`QueueClosed` once the queue is closed *and* drained for
        this shard.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                self._promote_matured()
                heap = self._ready[shard % self.shards]
                if heap:
                    _, _, job_id = heapq.heappop(heap)
                    self._size -= 1
                    return job_id
                if self._closed and not self._shard_has_delayed(shard):
                    raise QueueClosed()
                wait = None
                if self._delayed:
                    wait = max(self._delayed[0][0] - time.monotonic(), 0.0)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._ready_cv.wait(wait)

    def _shard_has_delayed(self, shard: int) -> bool:
        shard %= self.shards
        return any(entry[2] == shard for entry in self._delayed)

    # -- lifecycle / introspection --------------------------------------

    def close(self) -> None:
        """Stop admissions and wake all waiting consumers."""
        with self._lock:
            self._closed = True
            self._ready_cv.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        """Entries currently queued (ready + delayed)."""
        with self._lock:
            return self._size

    def stats(self) -> dict:
        """Depth, capacity and rejections under one lock acquisition."""
        with self._lock:
            return {
                "depth": self._size,
                "capacity": self.capacity,
                "rejections": self.rejections,
            }

    def is_empty(self) -> bool:
        return self.depth() == 0
