"""Property-based tests: persistence layers round-trip arbitrary content."""

from hypothesis import given, settings, strategies as st

from repro.isa.program import StaticInstructionId
from repro.race.database import RaceDatabase, RaceRecord
from repro.race.model import static_race_key
from repro.race.suppression import SuppressionDB

_SETTINGS = settings(max_examples=40, deadline=None)

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,15}", fullmatch=True)
indices = st.integers(min_value=0, max_value=10_000)


@st.composite
def race_keys(draw):
    first = StaticInstructionId(draw(identifiers), draw(indices))
    second = StaticInstructionId(draw(identifiers), draw(indices))
    return static_race_key(first, second)


# Reasons may contain anything except characters JSON can't round-trip
# losslessly as text (surrogates are excluded by default text()).
free_text = st.text(max_size=60)


class TestSuppressionRoundTrip:
    @given(
        entries=st.lists(
            st.tuples(identifiers, race_keys(), free_text, free_text),
            max_size=10,
        )
    )
    @_SETTINGS
    def test_save_load_preserves_everything(self, entries, tmp_path_factory):
        database = SuppressionDB()
        for program, key, reason, who in entries:
            database.mark_benign(program, key, reason=reason, triaged_by=who)
        path = tmp_path_factory.mktemp("sup") / "db.json"
        database.save(path)
        restored = SuppressionDB.load(path)
        assert len(restored) == len(database)
        for program, key, reason, who in entries:
            assert restored.is_suppressed(program, key)
            # Latest write wins per (program, key); reason must be *a*
            # recorded reason for that pair.
            assert restored.reason_for(program, key) is not None or reason == ""


class TestDatabaseRoundTrip:
    @given(
        records=st.lists(
            st.tuples(
                identifiers,
                race_keys(),
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
                st.lists(identifiers, max_size=4, unique=True),
            ),
            max_size=8,
        )
    )
    @_SETTINGS
    def test_save_load_preserves_counts(self, records, tmp_path_factory):
        database = RaceDatabase()
        for program, key, nsc, sc, rf, executions in records:
            record = RaceRecord(
                program_name=program,
                key_text="%s|%s" % key,
                no_state_change=nsc,
                state_change=sc,
                replay_failure=rf,
                executions=list(executions),
                history=["potentially-benign"],
            )
            database._records[(program, record.key_text)] = record
        path = tmp_path_factory.mktemp("db") / "races.json"
        database.save(path)
        restored = RaceDatabase.load(path)
        assert len(restored) == len(database)
        for (program, key_text), record in database._records.items():
            other = restored._records[(program, key_text)]
            assert other.instance_count == record.instance_count
            assert other.executions == record.executions
            assert other.classification is record.classification
