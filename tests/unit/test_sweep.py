"""Unit tests for the seed-coverage sweep."""

import pytest

from repro.analysis.sweep import seed_coverage
from repro.workloads import lost_update, stats_counter, locked_counter


class TestSeedCoverage:
    def test_coverage_is_monotone(self):
        sweep = seed_coverage(stats_counter(6, iters=3), seeds=range(5))
        uniques = [point.unique_races for point in sweep.points]
        assert uniques == sorted(uniques)
        assert sweep.total_unique >= 1

    def test_new_races_sum_to_total(self):
        sweep = seed_coverage(stats_counter(6, iters=3), seeds=range(5))
        assert sum(point.new_races for point in sweep.points) == sweep.total_unique

    def test_harmful_counts_bounded(self):
        sweep = seed_coverage(lost_update(6, iters=3), seeds=range(4))
        for point in sweep.points:
            assert 0 <= point.harmful_races <= point.unique_races
        assert sweep.points[-1].harmful_races >= 1

    def test_clean_workload_never_discovers(self):
        sweep = seed_coverage(locked_counter(6), seeds=range(4))
        assert sweep.total_unique == 0
        assert all(point.new_races == 0 for point in sweep.points)

    def test_saturation_metric(self):
        sweep = seed_coverage(stats_counter(6, iters=3), seeds=range(5))
        assert 1 <= sweep.seeds_to_saturation <= 5

    def test_render(self):
        sweep = seed_coverage(stats_counter(6, iters=3), seeds=range(3))
        text = sweep.render()
        assert "coverage" in text.lower()
        assert "unique race" in text

    def test_races_by_seed_count_grows(self):
        sweep = seed_coverage(stats_counter(6, iters=3), seeds=range(4))
        previous = set()
        for count in sorted(sweep.races_by_seed_count):
            current = sweep.races_by_seed_count[count]
            assert previous <= current
            previous = current
