"""Double-check locking workloads (Table 2 category 2).

The paper's example::

    if (a) {            // unsynchronized first check — the race
        lock (..) {
            if (a) ...  // re-check under the lock
        }
    }

``double_check_warm`` models the steady state: the guarded value is
already initialised, so the racing unsynchronized read returns the same
value in either order and every instance replays to No-State-Change —
the paper's correctly-classified double checks.

``double_check_cold`` models the initialisation transition: the racing
read can observe the 0→1 flip, the two replay orders take different paths,
and the race is (mis)classified potentially harmful even though the code
is correct — one source of the paper's Real-Benign column under
Potentially-Harmful.
"""

from __future__ import annotations

from ..race.heuristics import BenignCategory
from .base import GroundTruth, RaceExpectation, Workload, render_template

_WARM_TEMPLATE = """
.data
init_{v}:  .word 1              ; already initialised (steady state)
value_{v}: .word 99
dcmx_{v}:  .word 0
.thread dcget_{v}
    li r7, {iters}
gloop:
    load r1, [init_{v}]         ; unsynchronized first check (the race)
    bnez r1, guse
    lock [dcmx_{v}]
    load r1, [init_{v}]         ; second check, under the lock
    bnez r1, gskip
    li r2, 99
    store r2, [value_{v}]
    li r3, 1
    store r3, [init_{v}]
gskip:
    unlock [dcmx_{v}]
guse:
    load r4, [value_{v}]
    subi r7, r7, 1
    bnez r7, gloop
    halt
.thread dcset_{v}
    li r7, {iters}
sloop:
    lock [dcmx_{v}]
    li r1, 1
    store r1, [init_{v}]        ; idempotent re-publish, under the lock
    unlock [dcmx_{v}]
    subi r7, r7, 1
    bnez r7, sloop
    halt
"""

_COLD_TEMPLATE = """
.data
init_{v}:  .word 0              ; NOT yet initialised (cold start)
value_{v}: .word 0
dcmx_{v}:  .word 0
.thread dci1_{v} dci2_{v}
    li r7, {iters}
gloop:
    load r1, [init_{v}]         ; unsynchronized first check (the race)
    bnez r1, guse
    lock [dcmx_{v}]
    load r1, [init_{v}]         ; second check, under the lock
    bnez r1, gskip
    li r2, 99
    store r2, [value_{v}]       ; one-time initialisation
    li r3, 1
    store r3, [init_{v}]        ; publish
gskip:
    unlock [dcmx_{v}]
guse:
    load r4, [value_{v}]
    subi r7, r7, 1
    bnez r7, gloop
    halt
"""


def double_check_warm(variant: int = 0, iters: int = 4) -> Workload:
    """Steady-state double-check: every race instance is No-State-Change."""
    v = "dw%d" % variant
    return Workload(
        name="double_check_warm_%s" % v,
        source=render_template(_WARM_TEMPLATE, v=v, iters=str(iters)),
        description=(
            "Double-checked initialisation in steady state: the guard is "
            "already set, re-publishes are idempotent."
        ),
        expectations=(
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="init_%s" % v,
                category=BenignCategory.DOUBLE_CHECK,
                note="classic double-check guard flag",
            ),
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="value_%s" % v,
                category=BenignCategory.DOUBLE_CHECK,
                note="value guarded by the double-check protocol",
            ),
        ),
        recommended_seeds=(2, 13),
    )


def double_check_cold(variant: int = 0, iters: int = 4) -> Workload:
    """Cold-start double-check: the 0→1 transition makes replays diverge."""
    v = "dc%d" % variant
    return Workload(
        name="double_check_cold_%s" % v,
        source=render_template(_COLD_TEMPLATE, v=v, iters=str(iters)),
        description=(
            "Double-checked one-time initialisation from cold: correct code, "
            "but the initialising transition changes replayed control flow."
        ),
        expectations=(
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="init_%s" % v,
                category=BenignCategory.DOUBLE_CHECK,
                note="double-check guard; transition instances replay differently",
            ),
            RaceExpectation(
                truth=GroundTruth.BENIGN,
                symbol="value_%s" % v,
                category=BenignCategory.DOUBLE_CHECK,
                note="value writes are idempotent (always 99)",
            ),
        ),
        recommended_seeds=(4, 21),
    )
