"""Typed client for the analysis service HTTP API.

Used by the ``repro submit`` CLI verb and by the integration tests; it
speaks exactly the protocol :mod:`repro.service.http` serves, over
stdlib :mod:`urllib` — no third-party HTTP stack.

Errors surface as :class:`ServiceError` (an :class:`OSError` subclass,
so the CLI's existing error handling converts it into a nonzero exit
code) with :class:`QueueFullError` carved out for 429 backpressure so
callers can distinguish "retry later" from "request is wrong".
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from .jobs import JobState


class ServiceError(OSError):
    """The service replied with an error, or could not be reached."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class QueueFullError(ServiceError):
    """429: the bounded queue rejected the submission — retry later."""


class JobFailedError(ServiceError):
    """The awaited job finished in a failed/cancelled state."""


@dataclass(frozen=True)
class JobStatus:
    """One ``GET /jobs/<id>`` document, typed."""

    job_id: str
    state: JobState
    kind: str
    attempts: int
    created: bool = False
    error: Optional[str] = None
    elapsed_s: Optional[float] = None
    recovered: bool = False
    mode: str = "full"

    @property
    def is_final(self) -> bool:
        return self.state.is_final

    @classmethod
    def from_json(cls, document: Dict, created: bool = False) -> "JobStatus":
        return cls(
            job_id=document["job_id"],
            state=JobState(document["state"]),
            kind=document.get("kind", ""),
            attempts=int(document.get("attempts", 0)),
            created=bool(document.get("created", created)),
            error=document.get("error"),
            elapsed_s=document.get("elapsed_s"),
            recovered=bool(document.get("recovered", False)),
            mode=document.get("mode", "full"),
        )


class ServiceClient:
    """Client for one analysis-service base URL."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> tuple:
        """Return ``(status, body_bytes)``; raises :class:`ServiceError`."""
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
                return reply.status, reply.read()
        except urllib.error.HTTPError as error:
            # Non-2xx replies still carry a JSON body we want to surface.
            return error.code, error.read()
        except urllib.error.URLError as error:
            raise ServiceError(
                "cannot reach %s: %s" % (self.base_url, error.reason)
            ) from error

    def _json(self, status: int, body: bytes) -> Dict:
        try:
            document = json.loads(body.decode("utf-8"))
        except ValueError:
            document = {"error": body.decode("utf-8", "replace").strip()}
        if status == 429:
            raise QueueFullError(
                document.get("error", "queue full"), status=status
            )
        if status >= 400:
            raise ServiceError(
                document.get("error", "HTTP %d" % status), status=status
            )
        return document

    # -- submission ------------------------------------------------------

    def submit_workload(
        self,
        workload: str,
        seed: int = 0,
        switch_probability: float = 0.3,
        priority: int = 0,
        mode: str = "full",
    ) -> JobStatus:
        status, body = self._request(
            "POST",
            "/jobs",
            json.dumps(
                {
                    "workload": workload,
                    "seed": seed,
                    "switch_probability": switch_probability,
                    "priority": priority,
                    "mode": mode,
                }
            ).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        return JobStatus.from_json(self._json(status, body))

    def submit_log(
        self, data: bytes, priority: int = 0, mode: str = "full"
    ) -> JobStatus:
        status, body = self._request(
            "POST",
            "/jobs",
            data,
            {
                "Content-Type": "application/octet-stream",
                "X-Repro-Priority": str(priority),
                "X-Repro-Mode": mode,
            },
        )
        return JobStatus.from_json(self._json(status, body))

    def submit_log_file(
        self, path: Union[str, Path], priority: int = 0, mode: str = "full"
    ) -> JobStatus:
        """Upload a log file as multipart/form-data (the curl-like path)."""
        data = Path(path).read_bytes()
        boundary = "repro-boundary-7c4a1f9e2b"
        parts = [
            b"--" + boundary.encode("ascii"),
            b'Content-Disposition: form-data; name="priority"',
            b"",
            str(priority).encode("ascii"),
            b"--" + boundary.encode("ascii"),
            b'Content-Disposition: form-data; name="mode"',
            b"",
            mode.encode("utf-8"),
            b"--" + boundary.encode("ascii"),
            b'Content-Disposition: form-data; name="log"; filename="%s"'
            % Path(path).name.encode("utf-8"),
            b"Content-Type: application/octet-stream",
            b"",
            data,
            b"--" + boundary.encode("ascii") + b"--",
            b"",
        ]
        status, body = self._request(
            "POST",
            "/jobs",
            b"\r\n".join(parts),
            {"Content-Type": "multipart/form-data; boundary=%s" % boundary},
        )
        return JobStatus.from_json(self._json(status, body))

    # -- queries ---------------------------------------------------------

    def job(self, job_id: str) -> JobStatus:
        status, body = self._request("GET", "/jobs/%s" % job_id)
        return JobStatus.from_json(self._json(status, body))

    def report_bytes(self, job_id: str) -> bytes:
        """The canonical report bytes; raises unless the job is done."""
        status, body = self._request("GET", "/jobs/%s/report" % job_id)
        if status == 200:
            return body
        document = self._json(status, body)  # raises for >= 400
        raise ServiceError(
            "job %s not finished (state %s)"
            % (job_id, document.get("state", "?")),
            status=status,
        )

    def report(self, job_id: str) -> Dict:
        return json.loads(self.report_bytes(job_id).decode("utf-8"))

    def wait(
        self,
        job_id: str,
        timeout_s: float = 60.0,
        poll_interval_s: float = 0.05,
    ) -> JobStatus:
        """Poll until the job reaches a final state.

        Raises :class:`JobFailedError` for failed/cancelled jobs and
        :class:`ServiceError` on timeout.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job.state is JobState.DONE:
                return job
            if job.is_final:
                raise JobFailedError(
                    "job %s %s: %s" % (job_id, job.state, job.error or "no detail")
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    "timed out after %.1fs waiting for job %s (state %s)"
                    % (timeout_s, job_id, job.state)
                )
            time.sleep(poll_interval_s)

    def cancel(self, job_id: str) -> JobStatus:
        status, body = self._request("DELETE", "/jobs/%s" % job_id)
        if status == 409:
            # Not cancellable (already running/finished): report the state.
            return JobStatus.from_json(json.loads(body.decode("utf-8")))
        return JobStatus.from_json(self._json(status, body))

    def metrics(self) -> Dict:
        status, body = self._request("GET", "/metrics")
        return self._json(status, body)

    def health(self) -> Dict:
        status, body = self._request("GET", "/healthz")
        return self._json(status, body)

    # -- fleet triage -----------------------------------------------------

    def races_bytes(
        self, include_suppressed: bool = False, limit: Optional[int] = None
    ) -> bytes:
        """Raw ``GET /races`` bytes — the byte-comparable ranked report."""
        query = []
        if include_suppressed:
            query.append("include_suppressed=1")
        if limit is not None:
            query.append("limit=%d" % limit)
        path = "/races" + ("?" + "&".join(query) if query else "")
        status, body = self._request("GET", path)
        if status != 200:
            self._json(status, body)  # raises with the server's error
        return body

    def races(
        self, include_suppressed: bool = False, limit: Optional[int] = None
    ) -> Dict:
        return json.loads(
            self.races_bytes(
                include_suppressed=include_suppressed, limit=limit
            ).decode("utf-8")
        )

    def race(self, record_id: str) -> Dict:
        status, body = self._request("GET", "/races/%s" % record_id)
        return self._json(status, body)

    def suppress(
        self,
        race: str,
        digest: str = "",
        reason: str = "",
        by: str = "",
        ttl_s: Optional[float] = None,
    ) -> str:
        """Add a suppression rule; returns its id."""
        document = {"race": race, "digest": digest, "reason": reason, "by": by}
        if ttl_s is not None:
            document["ttl_s"] = ttl_s
        status, body = self._request(
            "POST",
            "/suppressions",
            json.dumps(document).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        return self._json(status, body)["rule_id"]

    def suppressions(self) -> Dict:
        status, body = self._request("GET", "/suppressions")
        return self._json(status, body)

    def unsuppress(self, rule_id: str) -> Dict:
        status, body = self._request("DELETE", "/suppressions/%s" % rule_id)
        return self._json(status, body)
